"""Circuit IR: gates with Table-I CNOT costs, circuits, decomposition,
OpenQASM 2 I/O, and resource estimation."""

from repro.circuits.circuit import QCircuit
from repro.circuits.decompose import (
    decompose_circuit,
    decompose_gate,
    multiplexed_rotation_gates,
    multiplexor_angles,
    multiplexor_cnot_count,
)
from repro.circuits.gates import (
    CRYGate,
    CRZGate,
    CXGate,
    Gate,
    MCRYGate,
    MCXGate,
    RYGate,
    RZGate,
    XGate,
    normalize_angle,
)
from repro.circuits.qasm import from_qasm, to_qasm
from repro.circuits.resources import ResourceReport, estimate_resources

__all__ = [
    "QCircuit",
    "Gate",
    "XGate",
    "RYGate",
    "RZGate",
    "CXGate",
    "CRYGate",
    "CRZGate",
    "MCRYGate",
    "MCXGate",
    "normalize_angle",
    "decompose_gate",
    "decompose_circuit",
    "multiplexed_rotation_gates",
    "multiplexor_angles",
    "multiplexor_cnot_count",
    "to_qasm",
    "from_qasm",
    "ResourceReport",
    "estimate_resources",
]

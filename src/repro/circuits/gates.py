"""Quantum gate definitions with the paper's CNOT cost model (Table I).

Every gate in this library is a (multi-)controlled single-qubit operation:
a 2x2 base matrix acting on ``target``, activated when each control qubit
matches its control phase.  This uniform shape keeps the simulator, the
decomposer, and the QASM printer simple.

CNOT costs (Table I):

=============  =================  ==========
gate           controls ``k``     CNOT cost
=============  =================  ==========
``Ry``/``Rz``  0                  0
``X``          0                  0
``CX``         1                  1
``CRy``        1                  2
``MCRy``       k >= 2             ``2**k``
=============  =================  ==========

The ``MCRy`` cost is realized exactly by the Gray-code multiplexor in
:mod:`repro.circuits.decompose` (and matches the paper's motivating example,
where boxes with 1 and 2 controls cost ``2**1 + 2**2 = 6`` CNOTs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import CircuitError

__all__ = [
    "Gate",
    "XGate",
    "RYGate",
    "RZGate",
    "CXGate",
    "CRYGate",
    "MCRYGate",
    "MCXGate",
    "CRZGate",
    "normalize_angle",
]

_TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Map an angle into ``(-2*pi, 2*pi)`` (Ry has a 4*pi period, but all
    angles we produce live comfortably inside one turn)."""
    theta = math.fmod(theta, 2.0 * _TWO_PI)
    if theta > _TWO_PI:
        theta -= 2.0 * _TWO_PI
    elif theta < -_TWO_PI:
        theta += 2.0 * _TWO_PI
    return theta


@dataclass(frozen=True)
class Gate:
    """Base class: a controlled single-qubit operation.

    Attributes
    ----------
    target:
        Qubit the 2x2 base matrix acts on.
    controls:
        Tuple of ``(qubit, phase)`` pairs; the gate fires when every control
        qubit equals its phase (``1`` = ordinary control, ``0`` = negated).
    """

    target: int
    controls: tuple[tuple[int, int], ...] = field(default=())

    def __post_init__(self):
        seen = {self.target}
        for q, p in self.controls:
            if q in seen:
                raise CircuitError(
                    f"duplicate qubit {q} in {type(self).__name__}")
            if p not in (0, 1):
                raise CircuitError(f"control phase must be 0/1, got {p}")
            seen.add(q)

    # -- interface ------------------------------------------------------

    @property
    def name(self) -> str:
        """Lower-case mnemonic (e.g. ``'cx'``, ``'mcry'``)."""
        raise NotImplementedError

    def base_matrix(self) -> np.ndarray:
        """The 2x2 matrix applied on ``target`` when controls fire."""
        raise NotImplementedError

    def cnot_cost(self) -> int:
        """CNOT cost after decomposition to ``{CNOT, Ry}`` (Table I)."""
        raise NotImplementedError

    def inverse(self) -> "Gate":
        """The inverse gate (same cost)."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------

    @property
    def num_controls(self) -> int:
        return len(self.controls)

    def qubits(self) -> tuple[int, ...]:
        """All qubits touched, controls first then target."""
        return tuple(q for q, _ in self.controls) + (self.target,)

    def remap(self, mapping: dict[int, int]) -> "Gate":
        """Return the same gate acting on relabeled qubits."""
        kwargs = {
            "target": mapping[self.target],
            "controls": tuple((mapping[q], p) for q, p in self.controls),
        }
        if hasattr(self, "theta"):
            kwargs["theta"] = self.theta  # type: ignore[attr-defined]
        return type(self)(**kwargs)

    def _controls_repr(self) -> str:
        return ", ".join(f"{q}={'+' if p else '-'}" for q, p in self.controls)

    def __str__(self) -> str:
        angle = getattr(self, "theta", None)
        parts = [self.name, f"t={self.target}"]
        if self.controls:
            parts.append(f"c[{self._controls_repr()}]")
        if angle is not None:
            parts.append(f"theta={angle:.6f}")
        return "(" + " ".join(parts) + ")"


# ----------------------------------------------------------------------
# Concrete gates
# ----------------------------------------------------------------------

_X_MATRIX = np.array([[0.0, 1.0], [1.0, 0.0]])


def _ry_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]])


def _rz_matrix(theta: float) -> np.ndarray:
    return np.array([
        [np.exp(-0.5j * theta), 0.0],
        [0.0, np.exp(0.5j * theta)],
    ])


@dataclass(frozen=True)
class XGate(Gate):
    """Pauli-X (bit flip).  Free in the CNOT cost model."""

    def __post_init__(self):
        super().__post_init__()
        if self.controls:
            raise CircuitError("use CXGate/MCXGate for controlled X")

    @property
    def name(self) -> str:
        return "x"

    def base_matrix(self) -> np.ndarray:
        return _X_MATRIX

    def cnot_cost(self) -> int:
        return 0

    def inverse(self) -> "XGate":
        return self


@dataclass(frozen=True)
class RYGate(Gate):
    """Single-qubit Y rotation ``Ry(theta)`` (Eq. 1).  Free."""

    theta: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.controls:
            raise CircuitError("use CRYGate/MCRYGate for controlled Ry")

    @property
    def name(self) -> str:
        return "ry"

    def base_matrix(self) -> np.ndarray:
        return _ry_matrix(self.theta)

    def cnot_cost(self) -> int:
        return 0

    def inverse(self) -> "RYGate":
        return RYGate(target=self.target, theta=-self.theta)


@dataclass(frozen=True)
class RZGate(Gate):
    """Single-qubit Z rotation (used by the complex-amplitude phase oracle
    extension, :mod:`repro.opt.phase`).  Free."""

    theta: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.controls:
            raise CircuitError("use CRZGate for controlled Rz")

    @property
    def name(self) -> str:
        return "rz"

    def base_matrix(self) -> np.ndarray:
        return _rz_matrix(self.theta)

    def cnot_cost(self) -> int:
        return 0

    def inverse(self) -> "RZGate":
        return RZGate(target=self.target, theta=-self.theta)


@dataclass(frozen=True)
class CXGate(Gate):
    """CNOT.  ``phase=0`` controls are free (absorbed X conjugation), so the
    cost is 1 either way."""

    def __post_init__(self):
        super().__post_init__()
        if len(self.controls) != 1:
            raise CircuitError("CXGate takes exactly one control")

    @classmethod
    def make(cls, control: int, target: int, phase: int = 1) -> "CXGate":
        """Convenience constructor: ``CXGate.make(c, t)``."""
        return cls(target=target, controls=((control, phase),))

    @property
    def control(self) -> int:
        return self.controls[0][0]

    @property
    def phase(self) -> int:
        return self.controls[0][1]

    @property
    def name(self) -> str:
        return "cx"

    def base_matrix(self) -> np.ndarray:
        return _X_MATRIX

    def cnot_cost(self) -> int:
        return 1

    def inverse(self) -> "CXGate":
        return self


@dataclass(frozen=True)
class CRYGate(Gate):
    """Singly-controlled Ry.  Cost 2 (Table I)."""

    theta: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if len(self.controls) != 1:
            raise CircuitError("CRYGate takes exactly one control")

    @classmethod
    def make(cls, control: int, target: int, theta: float,
             phase: int = 1) -> "CRYGate":
        return cls(target=target, controls=((control, phase),), theta=theta)

    @property
    def control(self) -> int:
        return self.controls[0][0]

    @property
    def phase(self) -> int:
        return self.controls[0][1]

    @property
    def name(self) -> str:
        return "cry"

    def base_matrix(self) -> np.ndarray:
        return _ry_matrix(self.theta)

    def cnot_cost(self) -> int:
        return 2

    def inverse(self) -> "CRYGate":
        return CRYGate(target=self.target, controls=self.controls,
                       theta=-self.theta)


@dataclass(frozen=True)
class MCRYGate(Gate):
    """Multi-controlled Ry with ``k >= 1`` controls.  Cost ``2**k``."""

    theta: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if not self.controls:
            raise CircuitError("MCRYGate needs at least one control")

    @classmethod
    def make(cls, controls: list[tuple[int, int]], target: int,
             theta: float) -> "MCRYGate":
        return cls(target=target, controls=tuple(controls), theta=theta)

    @property
    def name(self) -> str:
        return "mcry"

    def base_matrix(self) -> np.ndarray:
        return _ry_matrix(self.theta)

    def cnot_cost(self) -> int:
        return 1 << len(self.controls)

    def inverse(self) -> "MCRYGate":
        return MCRYGate(target=self.target, controls=self.controls,
                        theta=-self.theta)


@dataclass(frozen=True)
class MCXGate(Gate):
    """Multi-controlled X with ``k >= 2`` controls.

    Implemented (and costed) as ``MCRy(pi)`` plus sign bookkeeping:
    ``2**k`` CNOTs.  Only used by baseline constructions.
    """

    def __post_init__(self):
        super().__post_init__()
        if len(self.controls) < 2:
            raise CircuitError("MCXGate needs at least two controls")

    @property
    def name(self) -> str:
        return "mcx"

    def base_matrix(self) -> np.ndarray:
        return _X_MATRIX

    def cnot_cost(self) -> int:
        return 1 << len(self.controls)

    def inverse(self) -> "MCXGate":
        return self


@dataclass(frozen=True)
class CRZGate(Gate):
    """Singly-controlled Rz (phase oracle extension).  Cost 2."""

    theta: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if len(self.controls) != 1:
            raise CircuitError("CRZGate takes exactly one control")

    @classmethod
    def make(cls, control: int, target: int, theta: float,
             phase: int = 1) -> "CRZGate":
        return cls(target=target, controls=((control, phase),), theta=theta)

    @property
    def name(self) -> str:
        return "crz"

    def base_matrix(self) -> np.ndarray:
        return _rz_matrix(self.theta)

    def cnot_cost(self) -> int:
        return 2

    def inverse(self) -> "CRZGate":
        return CRZGate(target=self.target, controls=self.controls,
                       theta=-self.theta)

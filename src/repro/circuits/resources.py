"""Resource estimation for synthesized circuits.

The paper's objective is the CNOT count; depth and gate histograms are the
usual secondary metrics an open-source release reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QCircuit

__all__ = ["ResourceReport", "estimate_resources"]


@dataclass(frozen=True)
class ResourceReport:
    """Summary of a circuit's cost.

    Attributes
    ----------
    num_qubits: register width.
    num_gates: gates before lowering.
    cnot_count: Table-I CNOT cost (== CX count after lowering).
    single_qubit_rotations: Ry/Rz count after lowering.
    depth: full-gate depth after lowering.
    two_qubit_depth: depth over CX layers only.
    histogram: gate-name histogram before lowering.
    """

    num_qubits: int
    num_gates: int
    cnot_count: int
    single_qubit_rotations: int
    depth: int
    two_qubit_depth: int
    histogram: dict[str, int]

    def __str__(self) -> str:
        lines = [
            f"qubits            : {self.num_qubits}",
            f"gates (high level): {self.num_gates}",
            f"CNOTs             : {self.cnot_count}",
            f"1q rotations      : {self.single_qubit_rotations}",
            f"depth             : {self.depth}",
            f"2q depth          : {self.two_qubit_depth}",
            "histogram         : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.histogram.items())),
        ]
        return "\n".join(lines)


def estimate_resources(circuit: QCircuit) -> ResourceReport:
    """Compute a :class:`ResourceReport` for a circuit."""
    lowered = circuit.decompose()
    rotations = sum(1 for g in lowered if g.name in ("ry", "rz"))
    return ResourceReport(
        num_qubits=circuit.num_qubits,
        num_gates=len(circuit),
        cnot_count=lowered.cnot_cost(),
        single_qubit_rotations=rotations,
        depth=lowered.depth(),
        two_qubit_depth=lowered.two_qubit_depth(),
        histogram=circuit.count_by_name(),
    )

"""Lowering controlled rotations to ``{X, Ry, Rz, CX}``.

The workhorse is the Gray-code **rotation multiplexor** (uniformly controlled
rotation, Möttönen et al., PRL 93, 130502): a bank of rotations
``Ry(alpha_j)`` selected by ``k`` control qubits compiles to exactly ``2**k``
CNOTs and ``2**k`` rotations.  A single-pattern ``MCRy`` is the special case
where one ``alpha_j`` is nonzero — hence Table I's ``2**k`` CNOT cost.

Construction sketch (circuit order)::

    Ry(phi_0) CX(c(0)) Ry(phi_1) CX(c(1)) ... Ry(phi_{2^k-1}) CX(c(2^k-1))

where ``c(i)`` is the control qubit at the bit position where consecutive
Gray codes differ.  Commuting the CNOTs through the rotations shows that
control pattern ``j`` receives a net rotation of
``sum_i (-1)^{popcount(j & gray(i))} * phi_i``, so the multiplexor angles are
the (scaled) Walsh-Hadamard transform of the target angles, permuted by the
Gray code.

When many ``alpha_j`` vanish, zero rotations are skipped and the CNOTs
between surviving rotations are merged by XOR-parity, which only ever
*reduces* the CNOT count (used by the dense qubit-reduction flow).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import (
    CRYGate,
    CRZGate,
    CXGate,
    Gate,
    MCRYGate,
    MCXGate,
    RYGate,
    RZGate,
    XGate,
)
from repro.exceptions import CircuitError
from repro.utils.bits import gray_code

__all__ = [
    "multiplexor_angles",
    "multiplexed_rotation_gates",
    "decompose_gate",
    "decompose_circuit",
    "multiplexor_cnot_count",
]

#: Rotations smaller than this are dropped when pruning the multiplexor.
ANGLE_TOL = 1e-12


def _fwht(values: np.ndarray) -> np.ndarray:
    """In-place-style fast Walsh-Hadamard transform (unnormalized)."""
    out = np.array(values, dtype=np.float64, copy=True)
    n = out.shape[0]
    h = 1
    while h < n:
        for start in range(0, n, h * 2):
            a = out[start:start + h].copy()
            b = out[start + h:start + 2 * h].copy()
            out[start:start + h] = a + b
            out[start + h:start + 2 * h] = a - b
        h *= 2
    return out


def multiplexor_angles(alphas: np.ndarray) -> np.ndarray:
    """Rotation angles ``phi`` of the Gray-code multiplexor.

    ``phi_i = (1/2^k) * WHT(alpha)[gray(i)]``, the unique solution of
    ``sum_i (-1)^{popcount(j & gray(i))} phi_i = alpha_j`` for all ``j``.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    size = alphas.shape[0]
    if size & (size - 1):
        raise CircuitError(f"angle vector length {size} not a power of two")
    wht = _fwht(alphas) / size
    return np.array([wht[gray_code(i)] for i in range(size)])


def multiplexed_rotation_gates(controls: list[int], target: int,
                               alphas: np.ndarray,
                               axis: str = "y",
                               prune: bool = True) -> list[Gate]:
    """Gate list of a uniformly controlled rotation.

    Parameters
    ----------
    controls:
        Control qubits; ``controls[0]`` is the most significant bit of the
        pattern index ``j``.
    target:
        Target qubit.
    alphas:
        ``2**k`` target angles, ``alphas[j]`` applied for control pattern
        ``j``.
    axis:
        ``"y"`` (Ry) or ``"z"`` (Rz, used by the phase oracle).
    prune:
        Skip zero rotations and parity-merge the CNOTs in between.

    Returns at most ``2**k`` CNOTs; exactly ``2**k`` when nothing prunes.
    """
    if axis not in ("y", "z"):
        raise CircuitError(f"unsupported rotation axis {axis!r}")
    rot = RYGate if axis == "y" else RZGate
    k = len(controls)
    alphas = np.asarray(alphas, dtype=np.float64)
    if alphas.shape[0] != (1 << k):
        raise CircuitError(
            f"need {1 << k} angles for {k} controls, got {alphas.shape[0]}")
    if k == 0:
        theta = float(alphas[0])
        return [] if (prune and abs(theta) < ANGLE_TOL) \
            else [rot(target=target, theta=theta)]

    phis = multiplexor_angles(alphas)
    gates: list[Gate] = []
    pending = 0  # XOR parity mask of CNOT toggles not yet emitted

    def flush() -> None:
        nonlocal pending
        for bitpos in range(k):
            if (pending >> bitpos) & 1:
                # pattern bit ``bitpos`` (LSB = 0) is control
                # ``controls[k - 1 - bitpos]``
                gates.append(CXGate.make(controls[k - 1 - bitpos], target))
        pending = 0

    size = 1 << k
    for i in range(size):
        phi = float(phis[i])
        if not prune or abs(phi) > ANGLE_TOL:
            flush()
            gates.append(rot(target=target, theta=phi))
        toggle = gray_code(i) ^ gray_code((i + 1) % size)
        pending ^= toggle
    flush()
    return gates


def multiplexor_cnot_count(num_controls: int) -> int:
    """CNOT count of the unpruned multiplexor: ``2**k`` (``0`` for ``k=0``)."""
    return 0 if num_controls == 0 else 1 << num_controls


def _mcry_like(gate: Gate, axis: str) -> list[Gate]:
    """Decompose a single-pattern multi-controlled rotation."""
    controls = [q for q, _ in gate.controls]
    k = len(controls)
    pattern = 0
    for d, (_, phase) in enumerate(gate.controls):
        if phase:
            pattern |= 1 << (k - 1 - d)
    alphas = np.zeros(1 << k)
    alphas[pattern] = gate.theta  # type: ignore[attr-defined]
    # Never prune here: the single-pattern transform has all +-theta/2^k
    # entries, and emitting all of them realizes the advertised 2**k cost.
    return multiplexed_rotation_gates(controls, gate.target, alphas,
                                      axis=axis, prune=False)


def decompose_gate(gate: Gate) -> list[Gate]:
    """Rewrite one gate over ``{X, Ry, Rz, CX}``.

    The emitted CX count always equals ``gate.cnot_cost()``.
    """
    if isinstance(gate, (XGate, RYGate, RZGate)):
        return [gate]
    if isinstance(gate, CXGate):
        control, phase = gate.controls[0]
        if phase == 1:
            return [gate]
        # Negated control: conjugate by free X gates.
        return [XGate(target=control),
                CXGate.make(control, gate.target),
                XGate(target=control)]
    if isinstance(gate, (CRYGate, MCRYGate)):
        return _mcry_like(gate, axis="y")
    if isinstance(gate, CRZGate):
        return _mcry_like(gate, axis="z")
    if isinstance(gate, MCXGate):
        raise CircuitError(
            "MCX has no exact {CNOT, Ry} form (a relative phase remains); "
            "synthesis algorithms in this library never emit it")
    raise CircuitError(f"cannot decompose {type(gate).__name__}")


def decompose_circuit(circuit: QCircuit) -> QCircuit:
    """Lower every gate of a circuit to ``{X, Ry, Rz, CX}``."""
    out = QCircuit(circuit.num_qubits)
    for gate in circuit:
        out.extend(decompose_gate(gate))
    return out

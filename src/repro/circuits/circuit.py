"""Quantum circuit container.

A :class:`QCircuit` is an ordered gate list over a fixed register.  Gates are
applied left to right: circuit ``[g1, g2]`` realizes the operator
``U = U(g2) @ U(g1)``.

The CNOT cost of a circuit is the sum of its gates' Table-I costs; calling
:meth:`QCircuit.decompose` lowers everything to ``{X, Ry, CX}`` with exactly
that many ``CX`` gates (checked in the test suite).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.circuits.gates import CXGate, Gate, RYGate, RZGate, XGate
from repro.exceptions import CircuitError

__all__ = ["QCircuit"]


class QCircuit:
    """An ordered list of gates on ``num_qubits`` qubits.

    Examples
    --------
    >>> qc = QCircuit(2)
    >>> _ = qc.ry(0, 3.14159 / 2).cx(0, 1)
    >>> qc.cnot_cost()
    1
    """

    __slots__ = ("_n", "_gates", "_cost")

    def __init__(self, num_qubits: int, gates: Iterable[Gate] = ()):
        if num_qubits < 1:
            raise CircuitError(f"need at least one qubit, got {num_qubits}")
        self._n = num_qubits
        self._gates: list[Gate] = []
        self._cost: int | None = None
        for g in gates:
            self.append(g)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._n

    @property
    def gates(self) -> tuple[Gate, ...]:
        """Immutable view of the gate list."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, i):
        return self._gates[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QCircuit):
            return NotImplemented
        return self._n == other._n and self._gates == other._gates

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def append(self, gate: Gate) -> "QCircuit":
        """Append a gate (validating qubit indices); returns ``self``."""
        for q in gate.qubits():
            if not 0 <= q < self._n:
                raise CircuitError(
                    f"gate {gate} touches qubit {q}, register has {self._n}")
        self._gates.append(gate)
        self._cost = None
        return self

    def extend(self, gates: Iterable[Gate]) -> "QCircuit":
        for g in gates:
            self.append(g)
        return self

    def compose(self, other: "QCircuit") -> "QCircuit":
        """Append another circuit's gates (same register width)."""
        if other._n != self._n:
            raise CircuitError(
                f"cannot compose {other._n}-qubit circuit onto {self._n}")
        return self.extend(other._gates)

    # Fluent gate constructors -------------------------------------------------

    def x(self, target: int) -> "QCircuit":
        return self.append(XGate(target=target))

    def ry(self, target: int, theta: float) -> "QCircuit":
        return self.append(RYGate(target=target, theta=theta))

    def rz(self, target: int, theta: float) -> "QCircuit":
        return self.append(RZGate(target=target, theta=theta))

    def cx(self, control: int, target: int, phase: int = 1) -> "QCircuit":
        return self.append(CXGate.make(control, target, phase))

    def cry(self, control: int, target: int, theta: float,
            phase: int = 1) -> "QCircuit":
        from repro.circuits.gates import CRYGate
        return self.append(CRYGate.make(control, target, theta, phase))

    def mcry(self, controls: list[tuple[int, int]], target: int,
             theta: float) -> "QCircuit":
        from repro.circuits.gates import CRYGate, MCRYGate, RYGate as _RY
        if not controls:
            return self.append(_RY(target=target, theta=theta))
        if len(controls) == 1:
            (c, p), = controls
            return self.append(CRYGate.make(c, target, theta, p))
        return self.append(MCRYGate.make(controls, target, theta))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def cnot_cost(self) -> int:
        """Total CNOT cost under the paper's Table-I model.

        Memoized: gates are immutable and :meth:`append` is the sole
        mutation funnel, so the sum is cached until the next append (the
        workflow's best-of comparisons and the portfolio settle paths
        re-read it repeatedly).
        """
        if self._cost is None:
            self._cost = sum(g.cnot_cost() for g in self._gates)
        return self._cost

    def count_by_name(self) -> dict[str, int]:
        """Histogram of gate mnemonics."""
        out: dict[str, int] = {}
        for g in self._gates:
            out[g.name] = out.get(g.name, 0) + 1
        return out

    def depth(self) -> int:
        """Circuit depth counting every gate as one layer on its qubits."""
        level = [0] * self._n
        for g in self._gates:
            qs = g.qubits()
            start = max(level[q] for q in qs)
            for q in qs:
                level[q] = start + 1
        return max(level, default=0)

    def two_qubit_depth(self) -> int:
        """Depth counting only gates with nonzero CNOT cost."""
        level = [0] * self._n
        for g in self._gates:
            if g.cnot_cost() == 0:
                continue
            qs = g.qubits()
            start = max(level[q] for q in qs)
            for q in qs:
                level[q] = start + 1
        return max(level, default=0)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def inverse(self) -> "QCircuit":
        """The adjoint circuit (reversed order, inverted gates)."""
        return QCircuit(self._n, (g.inverse() for g in reversed(self._gates)))

    def remap(self, mapping: dict[int, int]) -> "QCircuit":
        """Relabel qubits; ``mapping`` must be a bijection on the register."""
        if sorted(mapping.keys()) != list(range(self._n)) or \
                sorted(mapping.values()) != list(range(self._n)):
            raise CircuitError(f"not a register bijection: {mapping}")
        return QCircuit(self._n, (g.remap(mapping) for g in self._gates))

    def decompose(self) -> "QCircuit":
        """Lower to ``{X, Ry, Rz, CX}``; see :mod:`repro.circuits.decompose`."""
        from repro.circuits.decompose import decompose_circuit
        return decompose_circuit(self)

    def embedded(self, num_qubits: int,
                 placement: list[int] | None = None) -> "QCircuit":
        """Embed into a wider register.

        ``placement[i]`` is the wide-register wire carrying this circuit's
        qubit ``i`` (defaults to identity).
        """
        if num_qubits < self._n:
            raise CircuitError("target register narrower than circuit")
        placement = placement if placement is not None else list(range(self._n))
        if len(placement) != self._n or len(set(placement)) != self._n:
            raise CircuitError(f"bad placement {placement}")
        mapping = {i: w for i, w in enumerate(placement)}
        wide = QCircuit(num_qubits)
        for g in self._gates:
            wide.append(g.remap(mapping))
        return wide

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (f"QCircuit(n={self._n}, gates={len(self._gates)}, "
                f"cnots={self.cnot_cost()})")

    def draw(self) -> str:
        """ASCII rendering, one column per gate.

        ``*``/``o`` mark positive/negative controls, boxes mark targets.
        """
        if not self._gates:
            return "\n".join(f"q{q}: -" for q in range(self._n))
        columns: list[list[str]] = []
        for g in self._gates:
            label = {"x": "X", "cx": "X", "mcx": "X"}.get(g.name)
            if label is None:
                label = "R" + g.name[-1].upper()
            col = ["-"] * self._n
            lo = min(g.qubits())
            hi = max(g.qubits())
            for q in range(lo, hi + 1):
                col[q] = "|"
            for q, p in g.controls:
                col[q] = "*" if p else "o"
            col[g.target] = label
            columns.append(col)
        width = max(len(c) for col in columns for c in col)
        lines = []
        for q in range(self._n):
            cells = [col[q].center(width, "-" if col[q] == "-" else " ")
                     for col in columns]
            lines.append(f"q{q}: -" + "-".join(cells) + "-")
        return "\n".join(lines)

"""OpenQASM 2.0 export and a small importer.

Export lowers the circuit to ``{x, ry, rz, cx}`` first (so any OpenQASM 2
consumer can ingest it); import accepts that same subset plus ``cry``/``crz``
from other tools.

Only a single quantum register is supported — state preparation circuits
never need more.
"""

from __future__ import annotations

import math
import re
from collections.abc import Iterable

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CRYGate, CRZGate, CXGate, RYGate, RZGate, XGate
from repro.exceptions import QasmError

__all__ = ["to_qasm", "from_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def _fmt_angle(theta: float) -> str:
    """Render an angle, preferring exact multiples of pi for readability."""
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16 * denom, 16 * denom + 1):
            if num == 0:
                continue
            if abs(theta - num * math.pi / denom) < 1e-12:
                frac = f"pi/{denom}" if denom > 1 else "pi"
                if num == 1:
                    return frac
                if num == -1:
                    return f"-{frac}"
                return f"{num}*{frac}"
    if abs(theta) < 1e-15:
        return "0"
    return repr(theta)


def to_qasm(circuit: QCircuit) -> str:
    """Serialize a circuit as OpenQASM 2.0 over ``{x, ry, rz, cx}``."""
    lowered = circuit.decompose()
    lines = [_HEADER + f"qreg q[{circuit.num_qubits}];"]
    for gate in lowered:
        if isinstance(gate, XGate):
            lines.append(f"x q[{gate.target}];")
        elif isinstance(gate, RYGate):
            lines.append(f"ry({_fmt_angle(gate.theta)}) q[{gate.target}];")
        elif isinstance(gate, RZGate):
            lines.append(f"rz({_fmt_angle(gate.theta)}) q[{gate.target}];")
        elif isinstance(gate, CXGate):
            if gate.phase != 1:  # decompose() already removed these
                raise QasmError("negative-control cx after decomposition")
            lines.append(f"cx q[{gate.control}],q[{gate.target}];")
        else:
            raise QasmError(f"unexpected gate {gate.name} after lowering")
    return "\n".join(lines) + "\n"


_TOKEN_RE = re.compile(
    r"^\s*(?P<name>[a-z]+)\s*(?:\((?P<angle>[^)]*)\))?\s*"
    r"(?P<args>q\[\d+\](?:\s*,\s*q\[\d+\])*)\s*;\s*$")
_QUBIT_RE = re.compile(r"q\[(\d+)\]")

# Minimal, safe angle expression evaluator: numbers, pi, + - * /, parens.
_ANGLE_RE = re.compile(r"^[\d\s.eE+\-*/()pi]*$")


def _eval_angle(text: str) -> float:
    text = text.strip()
    if not text:
        raise QasmError("empty angle")
    if not _ANGLE_RE.match(text):
        raise QasmError(f"unsupported angle expression: {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}}, {"pi": math.pi}))
    except Exception as exc:  # noqa: BLE001 - surface as QasmError
        raise QasmError(f"cannot evaluate angle {text!r}: {exc}") from exc


def _iter_statements(text: str) -> Iterable[str]:
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if line:
            yield line


def from_qasm(text: str) -> QCircuit:
    """Parse OpenQASM 2.0 over ``{x, ry, rz, cx, cry, crz}``.

    Raises :class:`~repro.exceptions.QasmError` on anything else.
    """
    num_qubits: int | None = None
    circuit: QCircuit | None = None
    for line in _iter_statements(text):
        if line.startswith("OPENQASM") or line.startswith("include"):
            continue
        m = re.match(r"^qreg\s+q\[(\d+)\]\s*;\s*$", line)
        if m:
            if num_qubits is not None:
                raise QasmError("multiple qreg declarations")
            num_qubits = int(m.group(1))
            circuit = QCircuit(num_qubits)
            continue
        if line.startswith(("creg", "barrier", "measure")):
            continue
        tok = _TOKEN_RE.match(line)
        if not tok:
            raise QasmError(f"cannot parse: {line!r}")
        if circuit is None:
            raise QasmError("gate before qreg declaration")
        name = tok.group("name")
        qubits = [int(q) for q in _QUBIT_RE.findall(tok.group("args"))]
        angle = tok.group("angle")
        if name == "x" and len(qubits) == 1:
            circuit.x(qubits[0])
        elif name == "ry" and len(qubits) == 1:
            circuit.ry(qubits[0], _eval_angle(angle or ""))
        elif name == "rz" and len(qubits) == 1:
            circuit.rz(qubits[0], _eval_angle(angle or ""))
        elif name == "cx" and len(qubits) == 2:
            circuit.cx(qubits[0], qubits[1])
        elif name == "cry" and len(qubits) == 2:
            circuit.append(CRYGate.make(qubits[0], qubits[1],
                                        _eval_angle(angle or "")))
        elif name == "crz" and len(qubits) == 2:
            circuit.append(CRZGate.make(qubits[0], qubits[1],
                                        _eval_angle(angle or "")))
        else:
            raise QasmError(f"unsupported gate {name!r} in {line!r}")
    if circuit is None:
        raise QasmError("no qreg declaration found")
    return circuit

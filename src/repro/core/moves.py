"""Backward transition operators — the library ``L_QSP`` (paper Sec. IV-B).

The search of Algorithm 1 walks from the *target* state toward the ground
state, so every move here is a **backward** operator: applying it to the
current state takes one step toward ``|0...0>``.  The preparation circuit is
recovered by inverting the moves in reverse order
(:func:`moves_to_circuit`).

All moves are single-target amplitude-preserving (AP) transitions:

* :class:`XMove` — free bit flip; permutes the index set.
* :class:`CXMove` — CNOT (either control polarity, cost 1); permutes the
  index set.
* :class:`MergeMove` — a (multi-controlled) ``Ry`` at exactly the angle that
  *merges* every selected index pair ``(x, x ^ e_t)`` into one index,
  combining amplitudes as ``sqrt(a0^2 + a1^2)`` — the paper's AP merge.
  Cost 0 / 2 / ``2**k`` for 0 / 1 / ``k`` controls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuits.gates import CRYGate, CXGate, Gate, MCRYGate, RYGate, XGate
from repro.constants import ATOL, mcry_cnot_cost
from repro.exceptions import StateError
from repro.states.qstate import QState
from repro.utils.bits import bit_of, flip_bit

__all__ = [
    "Move",
    "XMove",
    "CXMove",
    "MergeMove",
    "apply_controlled_ry",
    "merge_angle",
    "moves_to_circuit",
    "product_state_rotations",
]


def apply_controlled_ry(state: QState, controls: tuple[tuple[int, int], ...],
                        target: int, theta: float,
                        drop_tol: float = ATOL) -> QState:
    """Apply a (multi-controlled) ``Ry(theta)`` to a sparse state, exactly.

    This is the generic sparse-gate application used by :class:`MergeMove`;
    it is valid for *any* angle (indices outside the control cube pass
    through untouched; selected pairs are mixed).  The move enumerator only
    ever constructs angles that merge, but keeping the application generic
    means the state evolution is exact by construction.
    """
    n = state.num_qubits
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    out: dict[int, float] = {}
    done: set[int] = set()
    for idx, amp in state.items():
        if any(bit_of(idx, q, n) != p for q, p in controls):
            out[idx] = out.get(idx, 0.0) + amp
            continue
        if idx in done:
            continue
        partner = flip_bit(idx, target, n)
        a_partner = state.amplitude(partner)
        done.add(idx)
        done.add(partner)
        if bit_of(idx, target, n) == 0:
            a0, a1 = amp, a_partner
            i0, i1 = idx, partner
        else:
            a0, a1 = a_partner, amp
            i0, i1 = partner, idx
        new0 = c * a0 - s * a1
        new1 = s * a0 + c * a1
        if abs(new0) > drop_tol:
            out[i0] = out.get(i0, 0.0) + new0
        if abs(new1) > drop_tol:
            out[i1] = out.get(i1, 0.0) + new1
    return QState(n, out, normalize=False)


def merge_angle(a0: float, a1: float, direction: int) -> float:
    """Backward rotation angle that merges the pair ``(a0, a1)``.

    ``direction = 0`` sends the pair to ``(sqrt(a0^2+a1^2), 0)`` — amplitude
    lands on the ``target=0`` index; ``direction = 1`` sends it to
    ``(0, sqrt(a0^2+a1^2))``.  The merged amplitude is always positive.
    """
    if direction == 0:
        return -2.0 * math.atan2(a1, a0)
    if direction == 1:
        return 2.0 * math.atan2(a0, a1)
    raise ValueError(f"direction must be 0 or 1, got {direction}")


@dataclass(frozen=True)
class Move:
    """A backward state-transition operator with a fixed CNOT cost."""

    @property
    def cost(self) -> int:
        raise NotImplementedError

    def apply(self, state: QState) -> QState:
        """Apply the backward operator (one step toward the ground state)."""
        raise NotImplementedError

    def backward_gate(self) -> Gate:
        """The backward operator as a gate (for debugging/inspection)."""
        raise NotImplementedError

    def forward_gates(self) -> list[Gate]:
        """Gates appended to the *preparation* circuit for this move
        (the inverse of the backward operator)."""
        return [self.backward_gate().inverse()]


@dataclass(frozen=True)
class XMove(Move):
    """Free Pauli-X on one qubit (index-set translation)."""

    qubit: int

    @property
    def cost(self) -> int:
        return 0

    def apply(self, state: QState) -> QState:
        return state.apply_x(self.qubit)

    def backward_gate(self) -> Gate:
        return XGate(target=self.qubit)


@dataclass(frozen=True)
class CXMove(Move):
    """CNOT with control polarity ``phase`` — cost 1 (Table I)."""

    control: int
    phase: int
    target: int

    @property
    def cost(self) -> int:
        return 1

    def apply(self, state: QState) -> QState:
        return state.apply_cx(self.control, self.target, self.phase)

    def backward_gate(self) -> Gate:
        return CXGate.make(self.control, self.target, self.phase)


@dataclass(frozen=True)
class MergeMove(Move):
    """(Multi-controlled) ``Ry`` merge — the AP cardinality-reducing move.

    ``controls`` is a tuple of ``(qubit, phase)`` literals defining the cube
    the rotation acts on; ``theta`` is the backward angle produced by
    :func:`merge_angle`.  Validity (every selected index is paired and all
    selected pairs share one amplitude ratio) is established by the
    enumerator in :mod:`repro.core.transitions`.
    """

    target: int
    theta: float
    controls: tuple[tuple[int, int], ...] = field(default=())

    @property
    def cost(self) -> int:
        return mcry_cnot_cost(len(self.controls))

    def apply(self, state: QState) -> QState:
        return apply_controlled_ry(state, self.controls, self.target,
                                   self.theta)

    def backward_gate(self) -> Gate:
        if not self.controls:
            return RYGate(target=self.target, theta=self.theta)
        if len(self.controls) == 1:
            return CRYGate(target=self.target, controls=self.controls,
                           theta=self.theta)
        return MCRYGate(target=self.target, controls=self.controls,
                        theta=self.theta)


def product_state_rotations(state: QState) -> list[Gate]:
    """Free finishing gates for a fully separable state.

    When the search reaches a product state ``(x)_q (alpha_q|0> +
    beta_q|1>)``, zero CNOTs remain: the preparation circuit *starts* with
    one ``Ry`` per qubit.  Returns those forward gates (identity rotations
    omitted).  Raises :class:`StateError` if the state is entangled.
    """
    from repro.states.analysis import _cofactor_ratio

    n = state.num_qubits
    gates: list[Gate] = []
    for q in range(n):
        ratio = _cofactor_ratio(state, q)
        if ratio is None:
            raise StateError(f"qubit {q} is not separable")
        if ratio == 0.0:
            continue  # already |0>
        if math.isinf(ratio):
            gates.append(XGate(target=q))
            continue
        alpha = 1.0 / math.sqrt(1.0 + ratio * ratio)
        beta = ratio * alpha
        gates.append(RYGate(target=q, theta=2.0 * math.atan2(beta, alpha)))
    return gates


def moves_to_circuit(moves: list[Move], final_state: QState,
                     num_qubits: int) -> "object":
    """Assemble the preparation circuit from a backward move path.

    ``moves`` is the path from the target state to ``final_state`` (a fully
    separable state).  The circuit is::

        [per-qubit Ry for final_state]  +  [inverse(moves) reversed]

    so that running it on ``|0...0>`` yields the target (up to global sign).
    """
    from repro.circuits.circuit import QCircuit

    circuit = QCircuit(num_qubits)
    circuit.extend(product_state_rotations(final_state))
    for move in reversed(moves):
        circuit.extend(move.forward_gates())
    return circuit

"""Persistent cross-search memory: canon keys, heuristics, transpositions.

A single search already memoizes aggressively (interned states, bounded
canonical-key and heuristic caches), but every call to a search engine
starts cold: the same Dicke row searched twice recomputes every orbit hash
from scratch, and IDA* even threw its transposition table away at each
deepening round.  :class:`SearchMemory` is the process-lifetime answer —
one object shared across searches in a batch (the paper's family sweeps,
the repeated-traffic regime of the ROADMAP) holding everything that is
*state-intrinsic* or otherwise search-independent:

* a shared :class:`~repro.core.kernel.StatePool` (rotated when it outgrows
  its cap), so interned states and their on-object memos survive calls;
* :class:`HashStore` tiers for canonical keys and heuristic values, keyed
  by the 64-bit structural hash with payload verification, so entries
  survive pool rotation and are shared by searches whose pools differ;
* a :class:`TranspositionTable` for IDA*: ``class -> max remaining cost
  budget proven exhausted``.

**Soundness invariant of the transposition table.**  Every search runs
backward from its target to the *shared* ground class, so an
unconditional entry ``table[C] = r`` is the target-independent claim "no
ground-reaching path of cost ``<= r`` leaves any state of class ``C``".
That claim may only be written unconditionally if it was proven
*independent of the writing search's current path*: a subtree whose
exploration skipped children via the DFS path-class set (cycle
avoidance) has only been exhausted *relative to that path*, and
recording it as universal would let a later probe with a different
prefix prune a subtree that still hides the goal.  Writers therefore
track the set of path classes their proof leaned on through the probe
(propagated upward, because a truncated child leaves its parent's claim
path-dependent too) and record truncated subtrees as *conditional*
entries that name that set; see :class:`TranspositionTable` for the
reuse contract.  (Recording them unconditionally is the bug the old
per-round IDA* table worked around by clearing itself at every
deepening — and got wrong anyway whenever two probes of the same round
reached a class via different prefixes.)

Entries additionally depend on the move set (``max_merge_controls``,
``include_x_moves``), the class partition (canon level and enumeration
caps), and — via the ``f``-pruning inside the probe — on the heuristic
being admissible.  :meth:`SearchMemory.attach` pins this *regime
fingerprint* on first use and rejects incompatible reuse, so a memory
object can never silently mix entries from incompatible searches.

All engines accept ``memory=None`` (the default) and then behave exactly
as before with fresh per-call structures; passing a memory changes which
computations are *reused*, never which values they produce, so results
are bit-identical warm or cold (asserted by the equivalence tests).
"""

from __future__ import annotations

import heapq
from itertools import islice

from repro.constants import (
    MEMORY_POOL_ROTATE_CAP,
    MEMORY_STORE_CAP,
    MEMORY_TRANSPOSITION_CAP,
    TRANSPOSITION_AGE_PENALTY,
    TRANSPOSITION_IMPROVE_LOG_CAP,
)
from repro.core import fastcore as _fastcore
from repro.core.kernel import PackedState, StatePool, state_hash64
from repro.core.pdb import PatternDatabase
from repro.exceptions import MemoryCompatibilityError

__all__ = [
    "HashStore",
    "TranspositionTable",
    "SearchMemory",
]

_EVICT_DENOM = 8  # drop 1/8 of the cap per eviction sweep (cf. BoundedCache)


class HashStore:
    """Persistent value store keyed by the 64-bit structural state hash.

    Values attach to *states* (payload-verified), not to interned objects,
    so entries remain valid when the owning :class:`SearchMemory` rotates
    its :class:`~repro.core.kernel.StatePool` and are shared by searches
    whose pools intern different objects for the same state.  A genuine
    64-bit collision spills the newcomer into a payload-keyed secondary
    dict, preserving exact-map semantics.

    Eviction is *hit-weighted* (the ROADMAP open item): each entry carries
    a hit counter, and an eviction sweep drops the least-hit entries
    instead of FIFO order — the states repeated traffic keeps asking about
    are exactly the ones worth keeping, while a one-shot frontier state
    from an old search is the cheapest to recompute.  Dropping any entry
    is always sound (stores only deduplicate recomputation).  Per-search
    shares of the hit traffic surface in
    :class:`~repro.core.astar.SearchStats`.
    """

    __slots__ = ("cap", "_primary", "_spill", "hits", "misses",
                 "collisions", "evictions")

    def __init__(self, cap: int = MEMORY_STORE_CAP):
        self.cap = max(1, int(cap))
        #: hash64 -> [payload, value, entry_hits]; the native open-addressing
        #: U64Map when the extension is loaded (insertion-order-preserving,
        #: like dict), a plain dict otherwise
        fc = _fastcore.active
        self._primary = fc.U64Map() if fc is not None else {}
        self._spill: dict[bytes, object] = {}
        self.hits = 0
        self.misses = 0
        self.collisions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._primary) + len(self._spill)

    def get(self, ps: PackedState):
        entry = self._primary.get(ps.hash64)
        if entry is None:
            self.misses += 1
            return None
        if entry[0] == ps.payload:
            self.hits += 1
            entry[2] += 1
            return entry[1]
        value = self._spill.get(ps.payload)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, ps: PackedState, value) -> None:
        entry = self._primary.get(ps.hash64)
        if entry is not None and entry[0] != ps.payload:
            self.collisions += 1
            self._spill[ps.payload] = value
            return
        if entry is not None:
            entry[1] = value  # refresh in place, keep the hit history
            return
        if len(self._primary) >= self.cap:
            drop = max(1, self.cap // _EVICT_DENOM)
            victims = heapq.nsmallest(drop, self._primary.items(),
                                      key=lambda kv: kv[1][2])
            for stale, _ in victims:
                del self._primary[stale]
            self.evictions += len(victims)
        self._primary[ps.hash64] = [ps.payload, value, 0]

    def put_payload(self, payload: bytes, value) -> None:
        """Insert by raw payload, recomputing this process's 64-bit hash.

        The structural hash is SipHash over the payload and therefore
        *per-process*: entries crossing a process boundary (snapshot
        load, worker delta merge) must be re-keyed here rather than
        trusting the hash they were written under.
        """
        self.put(_PayloadKey(state_hash64(payload), payload), value)

    def items_payload(self, since: tuple[int, int, int] | None = None):
        """Iterate ``(payload, value)`` pairs (process-portable form).

        Spill entries (genuine 64-bit collisions) are included; iteration
        order is insertion order of the primary tier first.  ``since`` (a
        :meth:`size_marker` captured earlier) restricts iteration to the
        entries inserted after that point.  Hit-weighted eviction deletes
        arbitrary positions, which invalidates any positional skip — when
        a sweep ran since the marker, the only safe delta is the whole
        (capped) store, exactly the rule the transposition table uses.
        """
        if since is None:
            skip_primary = skip_spill = 0
        else:
            marker_len, skip_spill, marker_evictions = since
            skip_primary = marker_len \
                if self.evictions == marker_evictions else 0
        for entry in islice(self._primary.values(),
                            max(0, skip_primary), None):
            yield entry[0], entry[1]
        yield from islice(self._spill.items(), max(0, skip_spill), None)

    def size_marker(self) -> tuple[int, int, int]:
        """Marker for :meth:`items_payload`'s ``since`` (delta shipping)."""
        return len(self._primary), len(self._spill), self.evictions

    def snapshot(self) -> dict:
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses, "collisions": self.collisions,
                "evictions": self.evictions}


class _PayloadKey:
    """Minimal stand-in carrying the two fields :class:`HashStore` keys on."""

    __slots__ = ("hash64", "payload")

    def __init__(self, hash64: int, payload: bytes):
        self.hash64 = hash64
        self.payload = payload


#: Shared empty condition — the unconditional entries' ``required`` set.
_NO_CONDITION: frozenset = frozenset()


class TranspositionTable:
    """IDA* exhaustion records: ``class -> (remaining budget, condition)``.

    An *unconditional* entry (empty condition) asserts that no
    ground-reaching path of cost at most the stored value leaves any state
    of the class — a path- and target-independent claim, reusable by any
    probe of any round of any search under the same regime fingerprint.

    A *conditional* entry additionally names the set of path classes its
    exhaustion proof leaned on (the classes strictly above the recording
    node whose path pruning truncated the subtree): it asserts that every
    ground-reaching path of cost at most the stored value passes through
    one of those classes.  A probe whose own DFS path contains all of them
    may reuse it, because a goal routed through one's own path ancestors
    is redundant — the ancestor's probe finds an equal-or-cheaper goal
    (exactly the argument that makes path pruning itself admissible) —
    and must fold the condition into its own truncation set, keeping the
    claim chain honest.  The pre-fix code recorded such entries *without*
    the condition, which is the unsoundness this table exists to fix.

    One entry of each kind per class, capped per kind with *budget-weighted,
    age-discounted* replacement: an eviction sweep drops the entries whose
    ``proven budget - age penalty`` is smallest, because a large-budget
    entry prunes every probe a small-budget one would and more (dropping
    any entry is always sound — the subtree is merely re-probed), while a
    proof untouched for many snapshot *generations* belongs to a workload
    the service no longer sees and is the cheapest to let drain out.
    Re-recording only ever improves an entry (larger budget, or equal
    budget with a weaker condition) but always refreshes its generation
    stamp — an entry the current workload keeps re-proving is young, not
    stale.

    **Generations.**  ``generation`` is a monotone counter bumped by
    :func:`repro.service.persistence.save_memory_snapshot` after every
    full snapshot — the natural epoch boundary of a long-lived service.
    Entries record the generation they were last written under; snapshots
    persist both the per-entry stamps and the table counter, so relative
    ages survive the disk round trip and a rebooted service keeps aging
    where the previous incarnation stopped.
    """

    __slots__ = ("cap", "data", "cond", "data_gen", "cond_gen",
                 "generation", "hits", "misses", "writes", "evictions",
                 "improved_data", "improved_cond", "improve_overflows")

    def __init__(self, cap: int = MEMORY_TRANSPOSITION_CAP):
        self.cap = max(1, int(cap))
        self.data: dict = {}
        self.cond: dict = {}
        #: per-entry generation stamps (parallel to data/cond so the entry
        #: payloads — and every test/serializer that reads them — keep
        #: their shape)
        self.data_gen: dict = {}
        self.cond_gen: dict = {}
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        #: append-only logs of keys whose entry was *improved in place*
        #: (larger budget / weaker condition).  Delta snapshots ship a
        #: suffix slice of the insertion-ordered tables, which misses
        #: exactly these in-place updates — the WAL folds the logged keys'
        #: current entries back in so a replayed boot is state-equivalent
        #: to a full snapshot.  Bounded: past the cap the logs reset and
        #: ``improve_overflows`` bumps, and a delta whose baseline saw a
        #: different overflow count ships the whole (capped) table — the
        #: same safe fallback the eviction counter already triggers.
        self.improved_data: list = []
        self.improved_cond: list = []
        self.improve_overflows = 0

    def _log_improvement(self, log: list, key) -> None:
        if len(log) >= TRANSPOSITION_IMPROVE_LOG_CAP:
            del self.improved_data[:]
            del self.improved_cond[:]
            self.improve_overflows += 1
            return
        log.append(key)

    def bump_generation(self) -> int:
        """Advance the aging epoch (called after each full snapshot save)."""
        self.generation += 1
        return self.generation

    def improve_marker(self) -> tuple[int, int, int]:
        """Marker over the in-place-improvement logs (delta shipping).

        Captured into :func:`repro.utils.serialization.memory_baseline`;
        a later delta ships the entries improved past the marker (or the
        whole table when the logs overflowed in between).
        """
        return (len(self.improved_data), len(self.improved_cond),
                self.improve_overflows)

    def __len__(self) -> int:
        return len(self.data) + len(self.cond)

    def lookup(self, key, remaining: float, path_classes) -> frozenset | None:
        """Condition under which the class is exhausted within
        ``remaining``, or ``None`` when no applicable entry exists.

        Returns the (possibly empty) ``required`` class set of the entry
        that fired; the caller must treat a non-empty set as a truncation
        against those path classes.  ``path_classes`` must support ``in``
        over canonical keys (the probe's path-class container).
        """
        prev = self.data.get(key)
        if prev is not None and prev >= remaining:
            self.hits += 1
            # a hit prevents the re-probe that would re-record the entry,
            # so the hit itself must refresh the aging stamp — the
            # entries pruning the current workload are the young ones
            self.data_gen[key] = self.generation
            return _NO_CONDITION
        entry = self.cond.get(key)
        if entry is not None:
            budget, required = entry
            if budget >= remaining and \
                    all(c in path_classes for c in required):
                self.hits += 1
                self.cond_gen[key] = self.generation
                return required
        self.misses += 1
        return None

    def exhausted_budget(self, key) -> float | None:
        """Unconditional proven budget of ``key`` (no path context needed).

        This is the entry an engine *without* a DFS path may consult — A*
        branch-and-bound pruning reads it once it holds an incumbent.
        Conditional entries are deliberately invisible here: their claim
        is relative to a DFS path set that a best-first search does not
        have.  Does not touch the hit/miss counters (the caller is not a
        probe), but a consult does refresh the aging stamp — an entry
        arming branch-and-bound prunes is in active service.
        """
        budget = self.data.get(key)
        if budget is not None:
            self.data_gen[key] = self.generation
        return budget

    def _evict_smallest(self, table: dict, budget_of, gen_table: dict) -> None:
        """Drop the entries with the smallest age-discounted budgets.

        Ranking key: ``proven budget - TRANSPOSITION_AGE_PENALTY * age``
        where ``age = generation - entry generation`` — among equal
        budgets the stalest proof goes first, and a generation of
        staleness costs one unit of proven budget.
        """
        drop = max(1, self.cap // _EVICT_DENOM)
        generation = self.generation

        def rank(kv):
            age = generation - gen_table.get(kv[0], generation)
            return budget_of(kv[1]) - TRANSPOSITION_AGE_PENALTY * age

        victims = heapq.nsmallest(drop, table.items(), key=rank)
        for stale, _ in victims:
            del table[stale]
            gen_table.pop(stale, None)
        self.evictions += len(victims)

    def record(self, key, remaining: float, required: frozenset,
               generation: int | None = None) -> None:
        """Record an exhaustion proof (improve-only; stamps a generation).

        ``generation`` defaults to the table's current epoch; snapshot
        loaders pass the stored stamp so relative entry ages survive the
        disk round trip.  Every touch refreshes the stamp *forward only*
        (``max``) — a claim the current workload keeps re-proving is not
        stale, and a worker delta replaying an entry it learned under an
        older epoch must not regress the parent's fresh stamp.
        """
        if generation is None:
            generation = self.generation

        def stamp(gen_table: dict) -> None:
            prev_gen = gen_table.get(key)
            if prev_gen is None or generation > prev_gen:
                gen_table[key] = generation

        if required:
            entry = self.cond.get(key)
            if entry is not None:
                stamp(self.cond_gen)
                budget, prev_req = entry
                if remaining < budget or \
                        (remaining == budget and
                         not (required < prev_req)):
                    return
                self.cond[key] = (remaining, required)
                self.writes += 1
                self._log_improvement(self.improved_cond, key)
                return
            if len(self.cond) >= self.cap:
                self._evict_smallest(self.cond, lambda v: v[0],
                                     self.cond_gen)
            self.cond[key] = (remaining, required)
            stamp(self.cond_gen)
            self.writes += 1
            return
        prev = self.data.get(key)
        if prev is not None:
            stamp(self.data_gen)
            if remaining > prev:
                self.data[key] = remaining
                self._log_improvement(self.improved_data, key)
            return
        if len(self.data) >= self.cap:
            self._evict_smallest(self.data, lambda v: v, self.data_gen)
        self.data[key] = remaining
        stamp(self.data_gen)
        self.writes += 1

    def snapshot(self) -> dict:
        return {"entries": len(self), "unconditional": len(self.data),
                "conditional": len(self.cond), "hits": self.hits,
                "misses": self.misses, "writes": self.writes,
                "evictions": self.evictions, "generation": self.generation}


class SearchMemory:
    """Process-lifetime memory shared across searches (see module docs).

    Create one per *regime* — the first :meth:`attach` pins the regime
    fingerprint (canon level + enumeration caps, move-set options,
    heuristic identity) and incompatible attaches raise
    :class:`~repro.exceptions.MemoryCompatibilityError` instead of
    silently mixing entries whose meaning differs.
    """

    __slots__ = ("pool", "canon_store", "h_store", "transposition", "pdb",
                 "pool_rotate_cap", "pool_rotations", "searches",
                 "lane_stats", "_fingerprint")

    def __init__(self, store_cap: int = MEMORY_STORE_CAP,
                 transposition_cap: int = MEMORY_TRANSPOSITION_CAP,
                 pool_rotate_cap: int = MEMORY_POOL_ROTATE_CAP):
        self.pool = StatePool()
        self.canon_store = HashStore(store_cap)
        self.h_store = HashStore(store_cap)
        self.transposition = TranspositionTable(transposition_cap)
        #: abstraction-keyed pattern database (entanglement signature ->
        #: structural bound memo + settled-cost evidence); distilled from
        #: the service's finished requests and consulted by IDA*'s root
        #: deepening bound — admissibly in exact modes, evidence-raised in
        #: the service's ``fast`` mode (`repro.core.pdb`)
        self.pdb = PatternDatabase()
        self.pool_rotate_cap = max(1, int(pool_rotate_cap))
        self.pool_rotations = 0
        self.searches = 0
        #: per-portfolio-lane outcome counters (lane name -> {"runs",
        #: "wins", "feasible", "timeouts"}), fed by the service portfolio
        #: and persisted in snapshots: the adaptive lane ordering sorts
        #: lanes by historical win rate (``repro.service.portfolio
        #: .order_specs``).  Counters are advisory — they steer lane
        #: *order*, never results — so merging them additively across
        #: worker deltas is always safe.
        self.lane_stats: dict[str, dict[str, int]] = {}
        self._fingerprint: tuple | None = None

    def record_lane_outcome(self, name: str, *, won: bool = False,
                            feasible: bool = False,
                            timeout: bool = False) -> None:
        """Accumulate one portfolio lane's outcome (adaptive ordering)."""
        row = self.lane_stats.setdefault(
            name, {"runs": 0, "wins": 0, "feasible": 0, "timeouts": 0})
        row["runs"] += 1
        if won:
            row["wins"] += 1
        if feasible:
            row["feasible"] += 1
        if timeout:
            row["timeouts"] += 1

    def attach(self, *, canon_level, tie_cap: int, perm_cap: int,
               max_merge_controls: int | None, include_x_moves: bool,
               heuristic, topology=None) -> StatePool:
        """Bind one search to this memory; returns the shared pool.

        The fingerprint covers everything the stored values depend on:
        the class partition (level + caps) for canon keys and
        transposition entries, the move set for transposition entries,
        the heuristic for the h store (admissibility of which the
        transposition probe relies on, exactly as IDA* optimality does),
        and the device topology — a restricted coupling map changes the
        move set, the class partition (automorphism-only relabeling),
        *and* the heuristic at once, so entries recorded under one device
        must never serve a search on another.  ``topology`` must already
        be normalized (``None`` for the unrestricted model); its canonical
        key is what lands in the fingerprint.
        """
        topo_key = None if topology is None else topology.canonical_key()
        self.pin((canon_level, int(tie_cap), int(perm_cap),
                  max_merge_controls, bool(include_x_moves), heuristic,
                  topo_key))
        self.searches += 1
        # Rotating the pool bounds the one structure interning cannot cap;
        # the hash-keyed stores survive rotation by construction.
        if len(self.pool) > self.pool_rotate_cap:
            self.pool = StatePool()
            self.pool_rotations += 1
        return self.pool

    @property
    def fingerprint(self) -> tuple | None:
        """The pinned regime fingerprint (``None`` until the first use)."""
        return self._fingerprint

    def pin(self, fingerprint: tuple) -> None:
        """Pin the regime without running a search (snapshot restore does
        this up front, so entries loaded from disk can never be served to
        a search under a different regime)."""
        if self._fingerprint is None:
            self._fingerprint = fingerprint
        elif fingerprint != self._fingerprint:
            raise MemoryCompatibilityError(
                f"SearchMemory was built under regime {self._fingerprint!r} "
                f"and cannot serve a search under {fingerprint!r}; use a "
                f"separate SearchMemory per regime")

    def snapshot(self) -> dict:
        """Counters for reports and benchmarks (JSON-serializable)."""
        return {
            "searches": self.searches,
            "pool_states": len(self.pool),
            "pool_rotations": self.pool_rotations,
            "canon_store": self.canon_store.snapshot(),
            "h_store": self.h_store.snapshot(),
            "transposition": self.transposition.snapshot(),
            "pdb": self.pdb.snapshot(),
            "lane_stats": {name: dict(row)
                           for name, row in self.lane_stats.items()},
        }

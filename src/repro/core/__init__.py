"""Exact CNOT synthesis: the paper's shortest-path formulation.

Moves (:mod:`repro.core.moves`, :mod:`repro.core.transitions`) define the
state transition graph; :mod:`repro.core.canonical` compresses it;
:mod:`repro.core.kernel` is the packed-array engine the hot loops run on;
:mod:`repro.core.astar` solves it optimally; :mod:`repro.core.beam` provides
the anytime fallback; :class:`ExactSynthesizer` is the public entry point.
"""

from repro.core.astar import (
    AStarRun,
    SearchConfig,
    SearchResult,
    SearchStats,
    astar_search,
)
from repro.core.beam import BeamConfig, BeamRun, beam_search
from repro.core.engine import EngineContext, EngineRun, RunStatus
from repro.core.canonical import (
    CanonLevel,
    canonical_key,
    canonicalize,
    pin_separable_qubits,
    xflip_minimize,
)
from repro.core.enumeration import (
    CanonicalCountRow,
    canonical_count_table,
    count_canonical_uniform_states,
)
from repro.core.exact import ExactConfig, ExactSynthesizer, synthesize_exact
from repro.core.heuristic import (
    combined_heuristic,
    entanglement_heuristic,
    scaled_heuristic,
    schmidt_cut_heuristic,
    schmidt_rank,
    zero_heuristic,
)
from repro.core.idastar import IDAStarConfig, IDAStarRun, idastar_search
from repro.core.kernel import (
    BoundedCache,
    CanonKey,
    HashKeyedMap,
    PackedState,
    StatePool,
    canonical_key_packed,
    enumerate_cx_packed,
    enumerate_merges_packed,
    num_entangled_packed,
    successors_packed,
)
from repro.core.memory import HashStore, SearchMemory, TranspositionTable
from repro.core.moves import (
    CXMove,
    MergeMove,
    Move,
    XMove,
    apply_controlled_ry,
    merge_angle,
    moves_to_circuit,
    product_state_rotations,
)
from repro.core.transitions import enumerate_cx, enumerate_merges, successors

__all__ = [
    "SearchConfig",
    "SearchResult",
    "SearchStats",
    "astar_search",
    "AStarRun",
    "BeamConfig",
    "BeamRun",
    "beam_search",
    "EngineContext",
    "EngineRun",
    "RunStatus",
    "IDAStarRun",
    "CanonLevel",
    "canonical_key",
    "canonicalize",
    "pin_separable_qubits",
    "xflip_minimize",
    "CanonicalCountRow",
    "canonical_count_table",
    "count_canonical_uniform_states",
    "ExactConfig",
    "ExactSynthesizer",
    "synthesize_exact",
    "entanglement_heuristic",
    "scaled_heuristic",
    "zero_heuristic",
    "combined_heuristic",
    "schmidt_cut_heuristic",
    "schmidt_rank",
    "IDAStarConfig",
    "idastar_search",
    "HashStore",
    "SearchMemory",
    "TranspositionTable",
    "BoundedCache",
    "CanonKey",
    "HashKeyedMap",
    "PackedState",
    "StatePool",
    "canonical_key_packed",
    "enumerate_cx_packed",
    "enumerate_merges_packed",
    "num_entangled_packed",
    "successors_packed",
    "Move",
    "XMove",
    "CXMove",
    "MergeMove",
    "apply_controlled_ry",
    "merge_angle",
    "moves_to_circuit",
    "product_state_rotations",
    "enumerate_cx",
    "enumerate_merges",
    "successors",
]

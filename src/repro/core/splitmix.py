"""Splitmix64 constants for the two orbit-hash lanes (single source).

``core/kernel.py`` previously repeated these literals in ``_mix64``,
``_mix_scalar_a``/``_mix_scalar_b``, and the inlined rounds of
``_orbit_hash_scalar``; the C extension would have added a fourth copy.
This module is now the only Python-side definition, and ``_splitmix.h``
is the only C-side one.  ``repro.core.fastcore`` refuses to activate an
extension whose compiled-in constants (``_fastcore.splitmix_constants()``)
disagree with this table, and ``tests/test_fastcore.py`` parses the header
to pin the two sources together even when no compiler is available.
"""

from __future__ import annotations

#: Additive round constant (golden-ratio increment) of every mix round.
GOLDEN = 0x9E3779B97F4A7C15
#: Lane-A multiply constants (the splitmix64 finalizer).
MIX_A1 = 0xBF58476D1CE4E5B9
MIX_A2 = 0x94D049BB133111EB
#: Lane-B multiply constants (murmur3-style finalizer variant).
MIX_B1 = 0xFF51AFD7ED558CCD
MIX_B2 = 0xC4CEB9FE1A85EC53
#: Pre-mix multiplier applied to ``(index ^ mask)`` before lane A.
ORBIT_MUL = 0x2545F4914F6CDD1D

U64_MASK = (1 << 64) - 1

#: Name -> value table, the exact payload ``_fastcore.splitmix_constants()``
#: must reproduce for the extension to be accepted.
SPLITMIX_CONSTANTS: dict[str, int] = {
    "GOLDEN": GOLDEN,
    "A1": MIX_A1,
    "A2": MIX_A2,
    "B1": MIX_B1,
    "B2": MIX_B2,
    "ORBIT_MUL": ORBIT_MUL,
}

"""Abstraction-keyed pattern database over entanglement signatures.

The service's traffic flywheel (ROADMAP open item 2): every settled
request leaves evidence — proven-optimal costs and exhaustion lower
bounds — keyed not by the exact state (the transposition table and the
request cache already own that) but by the state's *entanglement
signature*, an abstraction under which structurally similar targets
collide:

    (register size,
     entangled-qubit count,
     Schmidt-rank profile over the canonical cut family,
     MI-cluster shape)

all computed via :mod:`repro.states.analysis` with thresholds pinned in
:mod:`repro.constants` (``MI_PAIR_THRESHOLD``), so two processes always
agree on a state's signature.

**Two bound tiers, one admissibility line.**  The signature determines a
*structural* lower bound that is admissible for every state of the
class, because both components are per-state theorems evaluated on
signature data alone: the paper's entangled-qubit bound ``ceil(k/2)``
(:func:`repro.states.analysis.entanglement_lower_bound`) and the
Schmidt-cut bound ``max_cut ceil(log2 rank)`` (a CNOT at most doubles
the rank across any cut — :mod:`repro.core.heuristic`).
:meth:`PatternDatabase.admissible_bound` memoizes it per signature, so a
family of same-shaped targets pays the SVD sweep once — and exact modes
may seed IDA*'s deepening bound with it without changing any cost.

Observed *evidence* — a member's proven-optimal cost or exhaustion lower
bound — is deliberately **not** folded into the admissible tier: a proof
about one member of an abstraction class says nothing admissible about
an unseen member (the class is not cost-equivalent).  Evidence instead
powers:

* :meth:`PatternDatabase.learned_bound` — the *inadmissible* tier behind
  the service's ``fast`` request mode: seed the deepening bound with the
  cheapest solved member cost, reach a feasible circuit in fewer rounds,
  and let the simulator verify the served output (which is never marked
  optimal unless the sound lower bound actually reaches its cost);
* :meth:`PatternDatabase.audit` — the admissibility self-check: for
  every signature holding a proven-optimal member cost, the structural
  bound must not exceed it (gated by ``bench_nearhit``).

Persistence rides the memory snapshot/WAL exactly like the other stores
(improve-only merge, delta markers), behind the same regime fingerprint.
"""

from __future__ import annotations

import math
from itertools import islice

import numpy as np

from repro.constants import (
    MI_PAIR_THRESHOLD,
    PDB_CAP,
    PDB_IMPROVE_LOG_CAP,
    PDB_SIGNATURE_CUT_CAP,
)
from repro.exceptions import MemoryCompatibilityError
from repro.states.qstate import QState

__all__ = [
    "entanglement_signature",
    "coarse_signature",
    "structural_bound",
    "signature_to_list",
    "signature_from_list",
    "state_from_payload",
    "PatternDatabase",
]


def entanglement_signature(state: QState) -> tuple:
    """The abstraction key: ``(n, k, rank_profile, cluster_shape)``.

    * ``n`` — register size;
    * ``k`` — entangled (non-separable) qubit count;
    * ``rank_profile`` — multiset of Schmidt ranks over the canonical cut
      family (:func:`repro.core.heuristic._cut_family` capped at
      :data:`~repro.constants.PDB_SIGNATURE_CUT_CAP` random cuts, seed
      0), encoded as ``((rank, count), ...)`` sorted by rank;
    * ``cluster_shape`` — sizes of the connected components of the
      mutual-information pair graph
      (:func:`repro.states.analysis.entangled_pairs_mi` at the pinned
      :data:`~repro.constants.MI_PAIR_THRESHOLD`), sorted descending.

    Every component is invariant under qubit relabeling *of equal
    structure* and fully determined by the state, so equal states always
    collide and the key is portable across processes.
    """
    from repro.core.heuristic import _cut_family
    from repro.states.analysis import (
        entangled_pairs_mi,
        entangled_qubits,
        schmidt_rank,
    )

    n = state.num_qubits
    entangled = entangled_qubits(state)
    k = len(entangled)
    rank_counts: dict[int, int] = {}
    if k >= 2 and state.cardinality > 1:
        for cut in _cut_family(n, PDB_SIGNATURE_CUT_CAP, 0):
            rank = schmidt_rank(state, list(cut))
            rank_counts[rank] = rank_counts.get(rank, 0) + 1
    rank_profile = tuple(sorted(rank_counts.items()))
    cluster_shape = _cluster_shape(n, entangled_pairs_mi(
        state, MI_PAIR_THRESHOLD))
    return (n, k, rank_profile, cluster_shape)


def _cluster_shape(n: int, pairs: list[tuple[int, int]]) -> tuple[int, ...]:
    """Connected-component sizes of the MI pair graph (descending)."""
    parent = list(range(n))

    def find(q: int) -> int:
        while parent[q] != q:
            parent[q] = parent[parent[q]]
            q = parent[q]
        return q

    for a, b in pairs:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    sizes: dict[int, int] = {}
    for q in range(n):
        root = find(q)
        sizes[root] = sizes.get(root, 0) + 1
    return tuple(sorted((s for s in sizes.values() if s > 1), reverse=True))


def coarse_signature(signature: tuple) -> tuple:
    """The near-hit index key: the signature minus its rank profile.

    Schmidt ranks are the one component that moves under small amplitude
    perturbations (a rank can split at the quantization tolerance), so
    the request cache's similarity index falls back to this coarser key
    — ``(n, k, cluster_shape)`` — when no donor shares the full
    signature.  A coarse collision still only nominates *candidates*;
    every adapted circuit is simulator-verified before serving.
    """
    n, k, _ranks, clusters = signature
    return (n, k, clusters)


def structural_bound(signature: tuple) -> int:
    """Admissible CNOT lower bound as a pure function of the signature.

    ``max(ceil(k/2), max over the rank profile of ceil(log2 rank))`` —
    both components are admissible for every state carrying this
    signature (see the module docstring), and both are evaluated on
    signature data alone, so the value may be cached per signature and
    shared across processes.
    """
    _n, k, rank_profile, _clusters = signature
    bound = (int(k) + 1) // 2
    for rank, _count in rank_profile:
        if rank > 1:
            bound = max(bound, int(math.ceil(math.log2(int(rank)))))
    return bound


def signature_to_list(signature: tuple) -> list:
    """JSON-portable encoding of a signature (inverse below)."""
    n, k, rank_profile, clusters = signature
    return [int(n), int(k),
            [[int(r), int(c)] for r, c in rank_profile],
            [int(s) for s in clusters]]


def signature_from_list(enc: list) -> tuple:
    """Inverse of :func:`signature_to_list`; raises on corruption."""
    try:
        n, k, rank_profile, clusters = enc
        return (int(n), int(k),
                tuple((int(r), int(c)) for r, c in rank_profile),
                tuple(int(s) for s in clusters))
    except (ValueError, TypeError) as exc:
        raise MemoryCompatibilityError(
            f"corrupted PDB signature {enc!r}: {exc}") from exc


def state_from_payload(payload: bytes) -> QState:
    """Decode a packed-kernel payload back into a :class:`QState`.

    The inverse of the kernel's payload packing (``n`` as 2 little-endian
    bytes, then the int64 index array, then the aligned quantized float64
    amplitudes) — what lets ``repro-qsp distill`` recover target states
    from a request-cache snapshot's payload keys.
    """
    if len(payload) < 2 or (len(payload) - 2) % 16:
        raise MemoryCompatibilityError(
            f"malformed state payload of {len(payload)} bytes")
    n = int.from_bytes(payload[:2], "little")
    body = payload[2:]
    m = len(body) // 16
    idx = np.frombuffer(body[: 8 * m], dtype=np.int64)
    amp = np.frombuffer(body[8 * m:], dtype=np.float64)
    return QState.from_packed(n, idx.copy(), amp.copy())


#: Evidence row layout: [lb_max, solved_min, optimal_min, count].
_LB, _SOLVED, _OPTIMAL, _COUNT = range(4)


class PatternDatabase:
    """Signature → structural bound memo + observed cost evidence.

    Rides :class:`~repro.core.memory.SearchMemory` as the ``pdb`` slot;
    mergeable improve-only (so WAL replay is idempotent) and persisted in
    the memory snapshot behind the regime fingerprint.
    """

    __slots__ = ("cap", "_structural", "_evidence", "_touched",
                 "touched_overflows", "hits", "misses", "evictions")

    def __init__(self, cap: int = PDB_CAP):
        self.cap = max(1, int(cap))
        #: signature -> memoized structural bound (recomputable; never
        #: persisted, so a stale memo can't outlive a formula change)
        self._structural: dict[tuple, int] = {}
        #: signature -> [lb_max, solved_min, optimal_min, count]
        self._evidence: dict[tuple, list] = {}
        #: signatures whose pre-existing evidence improved since the last
        #: delta marker (mirrors the transposition improvement logs)
        self._touched: list[tuple] = []
        self.touched_overflows = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._evidence)

    # -- bound tiers ----------------------------------------------------

    def admissible_bound(self, signature: tuple) -> int:
        """Structural admissible bound, memoized per signature."""
        bound = self._structural.get(signature)
        if bound is None:
            bound = structural_bound(signature)
            if len(self._structural) >= self.cap:
                self._structural.clear()  # memo only: refilling is free
            self._structural[signature] = bound
        self._note(signature)
        return bound

    def learned_bound(self, signature: tuple) -> int:
        """Inadmissible tier: evidence-raised bound for ``fast`` mode.

        ``max(structural, cheapest solved member cost, strongest member
        exhaustion bound)`` — a deepening seed, never a proof: results
        reached through it are only marked optimal when the *sound*
        lower bound catches up, and the service verifies them with the
        simulator before serving.
        """
        bound = self.admissible_bound(signature)
        row = self._evidence.get(signature)
        if row is not None:
            if row[_SOLVED] is not None:
                bound = max(bound, int(row[_SOLVED]))
            if row[_LB] is not None:
                bound = max(bound, int(row[_LB]))
        return bound

    def _note(self, signature: tuple) -> None:
        if signature in self._evidence:
            self.hits += 1
        else:
            self.misses += 1

    # -- evidence -------------------------------------------------------

    def observe(self, signature: tuple, *, solved_cost: int | None = None,
                optimal: bool = False,
                lower_bound: int | None = None) -> None:
        """Record one member's settled evidence (improve-only).

        ``solved_cost`` keeps the minimum (the learned tier's seed);
        proven-optimal costs additionally keep ``optimal_min`` — the
        audit anchor, since an optimal member cost is an exact distance
        the structural bound must stay under.  ``lower_bound`` (an
        exhaustion proof) keeps the maximum.
        """
        row = self._evidence.get(signature)
        if row is None:
            if len(self._evidence) >= self.cap:
                victim = next(iter(self._evidence))
                del self._evidence[victim]
                self.evictions += 1
            row = self._evidence[signature] = [None, None, None, 0]
        else:
            improved = (
                (lower_bound is not None and
                 (row[_LB] is None or int(lower_bound) > row[_LB])) or
                (solved_cost is not None and
                 (row[_SOLVED] is None or int(solved_cost) < row[_SOLVED]))
                or (optimal and solved_cost is not None and
                    (row[_OPTIMAL] is None or
                     int(solved_cost) < row[_OPTIMAL])))
            if improved:
                self._log_touch(signature)
        if lower_bound is not None:
            lb = int(lower_bound)
            if row[_LB] is None or lb > row[_LB]:
                row[_LB] = lb
        if solved_cost is not None:
            cost = int(solved_cost)
            if row[_SOLVED] is None or cost < row[_SOLVED]:
                row[_SOLVED] = cost
            if optimal and (row[_OPTIMAL] is None or cost < row[_OPTIMAL]):
                row[_OPTIMAL] = cost
        row[_COUNT] = row[_COUNT] + 1

    def _log_touch(self, signature: tuple) -> None:
        if len(self._touched) >= PDB_IMPROVE_LOG_CAP:
            self._touched.clear()
            self.touched_overflows += 1
        self._touched.append(signature)

    def audit(self) -> list[dict]:
        """Admissibility self-check: structural bound vs optimal members.

        Returns one violation dict per signature whose structural bound
        exceeds a member's proven-optimal cost — always empty unless a
        bound component's proof is wrong (the ``bench_nearhit`` gate).
        """
        violations = []
        for signature, row in self._evidence.items():
            if row[_OPTIMAL] is None:
                continue
            bound = structural_bound(signature)
            if bound > row[_OPTIMAL]:
                violations.append({
                    "signature": signature_to_list(signature),
                    "structural_bound": bound,
                    "optimal_cost": row[_OPTIMAL],
                })
        return violations

    # -- persistence ----------------------------------------------------

    def marker(self) -> tuple:
        """Position marker for delta snapshots (see :meth:`to_dict`)."""
        return (len(self._evidence), len(self._touched),
                self.touched_overflows, self.evictions)

    def to_dict(self, since: tuple | None = None) -> dict:
        """Portable evidence dump; ``since`` (a :meth:`marker`) restricts
        it to signatures added or improved afterwards.  Evictions or a
        touch-log overflow invalidate the positional skip, in which case
        the whole (capped) database ships — the same fallback rule as the
        transposition delta."""
        skip = 0
        touched: list[tuple] = []
        if since is not None:
            count, touch_len, overflows, evictions = since
            if int(overflows) == self.touched_overflows and \
                    int(evictions) == self.evictions:
                skip = int(count)
                touched = list(dict.fromkeys(
                    islice(self._touched, int(touch_len), None)))
        items = list(islice(self._evidence.items(), skip, None))
        if touched:
            suffix = {signature for signature, _ in items}
            items.extend((signature, self._evidence[signature])
                         for signature in touched
                         if signature not in suffix
                         and signature in self._evidence)
        return {"entries": [[signature_to_list(signature), list(row)]
                            for signature, row in items]}

    def merge_dict(self, data: dict) -> None:
        """Pour a dump in (improve-only, idempotent — WAL replay safe)."""
        try:
            entries = data["entries"]
        except (KeyError, TypeError) as exc:
            raise MemoryCompatibilityError(
                f"corrupted PDB snapshot section: {exc!r}") from exc
        for enc, row in entries:
            signature = signature_from_list(enc)
            try:
                lb, solved, optimal_cost, count = (
                    None if row[_LB] is None else int(row[_LB]),
                    None if row[_SOLVED] is None else int(row[_SOLVED]),
                    None if row[_OPTIMAL] is None else int(row[_OPTIMAL]),
                    int(row[_COUNT]))
            except (ValueError, TypeError, IndexError) as exc:
                raise MemoryCompatibilityError(
                    f"corrupted PDB evidence row {row!r}: {exc}") from exc
            mine = self._evidence.get(signature)
            if mine is None:
                if len(self._evidence) >= self.cap:
                    victim = next(iter(self._evidence))
                    del self._evidence[victim]
                    self.evictions += 1
                mine = self._evidence[signature] = [None, None, None, 0]
            else:
                improved = (
                    (lb is not None and
                     (mine[_LB] is None or lb > mine[_LB])) or
                    (solved is not None and
                     (mine[_SOLVED] is None or solved < mine[_SOLVED])) or
                    (optimal_cost is not None and
                     (mine[_OPTIMAL] is None
                      or optimal_cost < mine[_OPTIMAL])))
                if improved:
                    self._log_touch(signature)
            if lb is not None and (mine[_LB] is None or lb > mine[_LB]):
                mine[_LB] = lb
            if solved is not None and (mine[_SOLVED] is None
                                       or solved < mine[_SOLVED]):
                mine[_SOLVED] = solved
            if optimal_cost is not None and (mine[_OPTIMAL] is None
                                             or optimal_cost < mine[_OPTIMAL]):
                mine[_OPTIMAL] = optimal_cost
            # max-merge, not add: replaying the same WAL delta twice (the
            # crash-recovery path) must not inflate the count
            mine[_COUNT] = max(mine[_COUNT], count)

    def snapshot(self) -> dict:
        """JSON-safe counters (stats responses, benches, obs gauges)."""
        queries = self.hits + self.misses
        return {"entries": len(self._evidence),
                "structural_memo": len(self._structural),
                "hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hits / queries, 4) if queries else 0.0,
                "evictions": self.evictions,
                "touched_overflows": self.touched_overflows}

"""Successor enumeration over the AP transition library ``L_QSP``.

Given a state, :func:`successors` yields every backward move the paper's
formulation allows, together with the resulting state:

* **CX moves** — all ``(control, polarity, target)`` triples that actually
  change the state (cost 1 each).
* **Merge moves** — for every target qubit ``t`` and every control cube
  (conjunction of literals on other qubits, up to ``max_merge_controls``
  controls), a ``Ry``/``CRy``/``MCRy`` merge is valid when

  1. every selected index has its ``t``-partner selected too (a lone index
     would be split into superposition — not amplitude-preserving), and
  2. all selected pairs share one amplitude ratio, so a single angle merges
     them simultaneously.

  Both merge directions (amplitude landing on the ``t=0`` or ``t=1`` index)
  are emitted; cubes selecting a pair set already reachable with fewer
  controls are skipped.

With ``max_merge_controls = n - 1`` the move set is complete: any two basis
states can be isolated by a cube and merged (this is how the cardinality
reduction baseline works), so every state can reach the ground state.

Every enumerator accepts an optional ``topology``
(:class:`repro.arch.topologies.CouplingMap`): moves whose decomposition
would place a CNOT on an uncoupled pair are then suppressed — CX moves
need ``(control, target)`` coupled, and merge controls are restricted to
neighbors of the target (the Gray-code multiplexor only ever emits CNOTs
between a control and the target).  ``None`` (or a full map, normalized
away by :func:`repro.arch.topologies.native_topology` before it gets
here) leaves the move set bit-identical to the paper's.  On a *connected*
restricted map the native move set is still complete: native CNOT SWAP
chains can simulate any unrestricted move sequence, so every state keeps
a path to ground — only the optimal cost changes.

This module is the *reference* enumeration.  The search hot loops run the
vectorized twin in :mod:`repro.core.kernel`, which is proven
move-set-identical by the property tests in ``tests/test_kernel.py``; keep
the two in lockstep when changing the move semantics here.
"""

from __future__ import annotations

from itertools import combinations

from repro.constants import MERGE_RATIO_RTOL as _RATIO_RTOL
from repro.core.moves import CXMove, MergeMove, Move, XMove, merge_angle
from repro.states.qstate import QState
from repro.utils.bits import bit_of, flip_bit

__all__ = ["successors", "enumerate_merges", "enumerate_cx"]


def _pairs_and_singles(state: QState, target: int
                       ) -> tuple[list[tuple[int, float, float]], list[int]]:
    """Split the index set by the ``target`` pairing.

    Returns ``(pairs, singles)`` where each pair is ``(i0, a0, a1)`` with
    ``i0`` the index with target bit 0, and singles are indices whose
    partner is absent.
    """
    n = state.num_qubits
    pairs: list[tuple[int, float, float]] = []
    singles: list[int] = []
    seen: set[int] = set()
    for idx, amp in state.items():
        if idx in seen:
            continue
        partner = flip_bit(idx, target, n)
        partner_amp = state.amplitude(partner)
        if partner_amp == 0.0:
            singles.append(idx)
            continue
        seen.add(idx)
        seen.add(partner)
        if bit_of(idx, target, n) == 0:
            pairs.append((idx, amp, partner_amp))
        else:
            pairs.append((partner, partner_amp, amp))
    return pairs, singles


def _ratios_consistent(group: list[tuple[int, float, float]]) -> bool:
    """True when all pairs share one amplitude ratio ``a1/a0`` (so one
    rotation angle merges them all)."""
    _, a0_ref, a1_ref = group[0]
    scale = abs(a0_ref) + abs(a1_ref)
    for _, a0, a1 in group[1:]:
        # Cross-product test avoids dividing by small amplitudes.
        if abs(a1 * a0_ref - a1_ref * a0) > _RATIO_RTOL * scale * (abs(a0) + abs(a1)):
            return False
    return True


def enumerate_merges(state: QState, target: int,
                     max_controls: int | None = None,
                     topology=None) -> list[MergeMove]:
    """All valid merge moves on ``target`` (see module docstring).

    With a ``topology``, control qubits are restricted to the coupled
    neighbors of ``target`` — exactly the cubes whose multiplexor
    decomposition stays on coupled pairs.
    """
    n = state.num_qubits
    pairs, singles = _pairs_and_singles(state, target)
    if not pairs:
        return []
    if max_controls is None:
        max_controls = n - 1
    max_controls = min(max_controls, n - 1)
    if topology is None:
        other = [q for q in range(n) if q != target]
    else:
        tmask = topology.neighbor_masks()[target]
        other = [q for q in range(n) if q != target and (tmask >> q) & 1]
    moves: list[MergeMove] = []
    emitted: set[tuple[frozenset[int], int]] = set()

    for k in range(0, max_controls + 1):
        for subset in combinations(other, k):
            pair_buckets: dict[tuple[int, ...], list[tuple[int, float, float]]] = {}
            for pair in pairs:
                pattern = tuple(bit_of(pair[0], q, n) for q in subset)
                pair_buckets.setdefault(pattern, []).append(pair)
            single_patterns = {
                tuple(bit_of(idx, q, n) for q in subset) for idx in singles}
            for pattern, group in pair_buckets.items():
                if pattern in single_patterns:
                    continue  # the cube would split a lone index
                if not _ratios_consistent(group):
                    continue
                selected = frozenset(p[0] for p in group)
                controls = tuple(zip(subset, pattern))
                _, a0, a1 = group[0]
                for direction in (0, 1):
                    dedupe = (selected, direction)
                    if dedupe in emitted:
                        continue  # same effect, cheaper cube already found
                    emitted.add(dedupe)
                    theta = merge_angle(a0, a1, direction)
                    moves.append(MergeMove(target=target, theta=theta,
                                           controls=controls))
    return moves


def enumerate_cx(state: QState, topology=None) -> list[CXMove]:
    """All CX moves that change the state (on coupled pairs only, when a
    ``topology`` is given)."""
    n = state.num_qubits
    masks = None if topology is None else topology.neighbor_masks()
    moves: list[CXMove] = []
    for control in range(n):
        col_has = [False, False]
        for idx in state.index_set:
            col_has[bit_of(idx, control, n)] = True
            if col_has[0] and col_has[1]:
                break
        cmask = -1 if masks is None else masks[control]
        for target in range(n):
            if target == control:
                continue
            if not (cmask >> target) & 1:
                continue  # uncoupled pair: not a native CNOT
            for phase in (0, 1):
                if not col_has[phase]:
                    continue  # no index selected; identity
                moves.append(CXMove(control=control, phase=phase,
                                    target=target))
    return moves


def successors(state: QState, max_merge_controls: int | None = None,
               include_x_moves: bool = False,
               topology=None) -> list[tuple[Move, QState]]:
    """Enumerate ``(move, next_state)`` arcs leaving ``state``.

    Successors equal to the input state are dropped (self-loops cannot be
    on a shortest path).  ``topology`` restricts the move set to native
    moves (see module docstring); ``None`` is the unrestricted paper model.
    """
    out: list[tuple[Move, QState]] = []
    key = state.key()
    if include_x_moves:
        for q in range(state.num_qubits):
            nxt = state.apply_x(q)
            if nxt.key() != key:
                out.append((XMove(qubit=q), nxt))
    for move in enumerate_cx(state, topology):
        nxt = move.apply(state)
        if nxt.key() != key:
            out.append((move, nxt))
    for target in range(state.num_qubits):
        for move in enumerate_merges(state, target, max_merge_controls,
                                     topology):
            out.append((move, move.apply(state)))
    return out

"""A* search over the state transition graph (paper Algorithm 1).

The search runs *backward* from the target state to (any state equivalent
to) the ground state.  Key implementation points:

* **Concrete states, canonical pruning.**  The open list holds concrete
  states with concrete parent pointers, so path reconstruction directly
  yields a circuit.  Dominance checks use the canonical key of each state's
  equivalence class (``Pi(phi)`` in Algorithm 1): if a member of the class
  was already reached at an equal-or-lower ``g``, the new state is pruned.
  Class members are mutually convertible at zero CNOT cost, so the optimal
  *cost* always survives pruning.
* **Early goal.**  A fully separable state (``h = 0``) is a goal: the
  remaining work is one free ``Ry`` per qubit, emitted directly.
* **Re-expansion safe.**  A better ``g`` for an already-seen class re-opens
  it, which keeps the search optimal even if the heuristic were
  inconsistent.
* **Packed kernel.**  By default the hot loop runs on the packed-array
  kernel (:mod:`repro.core.kernel`): interned array states, vectorized
  successor enumeration, and two-tier *lazy* duplicate detection — the
  exact-state tier (interned identity) prunes at generation time for
  nearly free, while the canonical-class tier (``best_g`` keyed by the
  64-bit canonical hash with a collision spill) runs only when a node is
  popped, so frontier states that are never expanded never pay for
  canonicalization.  ``SearchConfig(use_kernel=False)`` selects the
  dict-based seed loop (eager per-generation canonicalization), which the
  kernel is move-set-identical to by construction; proven costs and
  optimality flags agree on every instance — that is what
  ``benchmarks/bench_kernel.py`` measures expansions/sec against.
* **Proven lower bounds.**  On budget exhaustion the reported bound is
  ``min(g + h)`` over the open list with the *unweighted* heuristic, which
  stays a true lower bound even for ``weight > 1`` (the weighted ``f`` of a
  popped node proves nothing).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

from repro.circuits.circuit import QCircuit
from repro.constants import (
    SEARCH_CACHE_CAP,
    SEARCH_PERM_CAP,
    SEARCH_TIE_CAP,
)
from repro.core.canonical import CanonLevel, canonical_key
from repro.core.heuristic import (
    CouplingHeuristic,
    HeuristicFn,
    default_heuristic,
    entanglement_heuristic,
)
from repro.core.kernel import (
    BoundedCache,
    CanonContext,
    HashKeyedMap,
    PackedState,
    StatePool,
    entangled_qubits_packed,
    entanglement_h_packed,
    num_entangled_packed,
    successors_packed,
)
from repro.core.moves import Move, moves_to_circuit
from repro.core.transitions import successors
from repro.exceptions import SearchBudgetExceeded, SynthesisError
from repro.states.analysis import num_entangled_qubits
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["SearchConfig", "SearchStats", "SearchResult", "astar_search"]


def _native_topology(topology, num_qubits: int):
    """Validate + normalize a search topology against the target register.

    Delegates the shared normalization to
    :func:`repro.arch.topologies.native_topology` — ``None`` and
    all-to-all maps (of *any* size) mean the unrestricted paper model and
    normalize to ``None``, the identity fast path that stays bit-identical
    to seed behavior; disconnected maps are rejected there (the native
    move set is only complete on a connected graph).  A restricted map
    must additionally cover exactly the register.
    """
    from repro.arch.topologies import native_topology

    topology = native_topology(topology)
    if topology is not None and topology.size != num_qubits:
        raise ValueError(
            f"topology covers {topology.size} physical qubits but the "
            f"target has {num_qubits}; synthesize on "
            f"topology.induced(...) for a sub-register")
    return topology


@dataclass
class SearchConfig:
    """Tuning knobs of the exact search.

    Attributes
    ----------
    max_nodes:
        Expansion budget; exceeding it raises
        :class:`~repro.exceptions.SearchBudgetExceeded`.
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).
    canon_level:
        Equivalence used for pruning (paper Sec. V-B); ``PU2`` assumes a
        symmetric coupling graph, exactly as the paper discusses — under a
        restricted ``topology`` the permutation freedom automatically
        shrinks to the coupling graph's automorphisms, which keeps ``PU2``
        sound on any device.
    max_merge_controls:
        Cap on MCRy merge controls (``None`` = ``n - 1``, the complete set).
    weight:
        Heuristic weight; ``1.0`` is admissible/optimal, larger trades
        optimality for speed (results are flagged accordingly).
    include_x_moves:
        Explicit free X moves (redundant at ``canon_level >= U2``).
    tie_cap / perm_cap:
        Canonicalization enumeration caps (soundness never depends on them);
        defaults shared via :mod:`repro.constants`.
    use_kernel:
        Run the A* hot loop on the packed-array kernel (default).  The
        dict-based reference loop is retained for benchmarking and
        differential tests.  Only :func:`astar_search` honors this flag;
        IDA* and beam search always run on the kernel.
    cache_cap:
        Size cap of the canonical-key and heuristic caches (entries);
        exceeding it evicts oldest-first.  Hit rates land in
        :class:`SearchStats`.
    topology:
        Optional :class:`repro.arch.topologies.CouplingMap` making the
        device a first-class search constraint: only moves whose CNOTs lie
        on coupled pairs are enumerated, canonicalization folds only
        coupling automorphisms, and the default heuristic becomes the
        matching-based coupling bound.  ``None`` or an all-to-all map
        (of any size) is the unrestricted paper model (bit-identical to
        seed behavior).  Requires the kernel loop; a restricted map's
        size must equal the target's qubit count and its graph must be
        connected.
    """

    max_nodes: int = 200_000
    time_limit: float | None = None
    canon_level: CanonLevel = CanonLevel.PU2
    max_merge_controls: int | None = None
    weight: float = 1.0
    include_x_moves: bool = False
    tie_cap: int = SEARCH_TIE_CAP
    perm_cap: int = SEARCH_PERM_CAP
    use_kernel: bool = True
    cache_cap: int = SEARCH_CACHE_CAP
    topology: object | None = None


@dataclass
class SearchStats:
    """Counters reported with every search result."""

    nodes_expanded: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    max_queue: int = 0
    elapsed_seconds: float = 0.0
    canon_cache_hits: int = 0
    canon_cache_misses: int = 0
    h_cache_hits: int = 0
    h_cache_misses: int = 0
    #: entries evicted from capped dedup containers (e.g. beam ``seen_g``)
    dedup_evictions: int = 0
    #: IDA* transposition-table counters (this search's probes only)
    transposition_hits: int = 0
    transposition_writes: int = 0
    #: A* branch-and-bound counters (active only with an incumbent):
    #: generated states pruned because ``g + h`` already reaches the
    #: incumbent cost, and popped classes pruned because an unconditional
    #: transposition exhaustion entry proves their remaining cost does
    incumbent_prunes: int = 0
    bnb_transposition_prunes: int = 0
    #: subtrees whose exhaustion proof was path-dependent: recorded only
    #: with their path condition (the pre-fix code wrote them as
    #: unconditional, universally reusable claims — the soundness bug)
    transposition_poisoned: int = 0
    #: persistent-store traffic attributable to this search (0 when no
    #: ``SearchMemory`` is attached); per-entry hit counts also drive the
    #: stores' hit-weighted eviction
    canon_store_hits: int = 0
    canon_store_misses: int = 0
    h_store_hits: int = 0
    h_store_misses: int = 0

    @property
    def canon_cache_hit_rate(self) -> float:
        """Hit rate of the canonical-key cache (0.0 when never queried)."""
        total = self.canon_cache_hits + self.canon_cache_misses
        return self.canon_cache_hits / total if total else 0.0

    @property
    def h_cache_hit_rate(self) -> float:
        """Hit rate of the heuristic cache (0.0 when never queried)."""
        total = self.h_cache_hits + self.h_cache_misses
        return self.h_cache_hits / total if total else 0.0

    @property
    def nodes_per_second(self) -> float:
        """Expanded-node throughput (the kernel benchmark's headline)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.nodes_expanded / self.elapsed_seconds


@dataclass
class SearchResult:
    """Outcome of a (possibly budgeted) search."""

    circuit: QCircuit
    cnot_cost: int
    optimal: bool
    moves: list[Move] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)


def astar_search(target: QState, config: SearchConfig | None = None,
                 heuristic: HeuristicFn | None = None,
                 memory=None, incumbent=None) -> SearchResult:
    """Find a minimum-CNOT preparation circuit for ``target``.

    ``memory`` optionally plugs a process-lifetime
    :class:`repro.core.memory.SearchMemory` into the kernel loop: the
    interning pool, canonical keys, and heuristic values are then shared
    across calls, which only skips recomputation — results are identical
    warm or cold.  Requires the kernel loop (``use_kernel=True``).

    ``incumbent`` optionally supplies a known-feasible solution (a
    :class:`SearchResult` for the same target, e.g. from a beam pass or a
    portfolio sibling, or a bare integer cost bound) and switches the
    loop into branch-and-bound mode: generated states whose unweighted
    ``g + h`` already reaches the incumbent cost are pruned, and — when a
    ``memory`` with a populated transposition table is attached — a
    popped class whose *unconditional* exhaustion entry proves its
    remaining cost cannot beat the incumbent is pruned too (the ROADMAP's
    incumbent-bounded reuse of IDA* proofs; conditional entries stay
    IDA*-only because their claim is relative to a DFS path this search
    does not have).  Pruning never discards a strictly better solution,
    so the returned cost is unchanged — if the whole space at or above
    the incumbent cost is pruned away, the incumbent itself is returned,
    proven optimal.  Expansions only shrink (the differential tests
    assert both properties).

    Raises
    ------
    SearchBudgetExceeded
        When ``max_nodes`` or ``time_limit`` is hit before the ground state
        is reached.  The exception carries the best proven lower bound
        (computed with the unweighted heuristic, so it is valid for any
        ``weight``) and the incumbent, when one was supplied.
    """
    config = config or SearchConfig()
    topology = _native_topology(config.topology, target.num_qubits)
    if heuristic is None:
        heuristic = default_heuristic(topology)
    if config.use_kernel:
        return _astar_kernel(target, config, heuristic, memory, incumbent,
                             topology)
    if topology is not None:
        raise ValueError("topology-native search requires the kernel loop "
                         "(SearchConfig(use_kernel=True))")
    if memory is not None:
        raise ValueError("SearchMemory requires the kernel loop "
                         "(SearchConfig(use_kernel=True))")
    if incumbent is not None:
        raise ValueError("incumbent-bounded search requires the kernel "
                         "loop (SearchConfig(use_kernel=True))")
    return _astar_reference(target, config, heuristic)


def _make_h_of(heuristic: HeuristicFn, h_cache: BoundedCache, h_store):
    """Packed-state heuristic evaluator shared by all kernel engines.

    The default entanglement bound is memoized on the interned state
    object, so it needs no cache layer; the coupling-aware bound reads the
    cached entangled set off the interned state and memoizes its matching
    per entangled support; any other heuristic goes through the per-search
    cache with an optional persistent
    :class:`repro.core.memory.HashStore` tier between cache and compute.
    """
    if heuristic is entanglement_heuristic:
        return entanglement_h_packed

    if isinstance(heuristic, CouplingHeuristic):
        def h_coupling(ps: PackedState) -> float:
            val = h_cache.get(ps)
            if val is None:
                if h_store is not None:
                    val = h_store.get(ps)
                if val is None:
                    val = heuristic.bound(entangled_qubits_packed(ps))
                    if h_store is not None:
                        h_store.put(ps, val)
                h_cache.put(ps, val)
            return val

        return h_coupling

    def h_of(ps: PackedState) -> float:
        val = h_cache.get(ps)
        if val is None:
            if h_store is not None:
                val = h_store.get(ps)
            if val is None:
                val = float(heuristic(ps.to_qstate()))
                if h_store is not None:
                    h_store.put(ps, val)
            h_cache.put(ps, val)
        return val

    return h_of


def _store_hit_marks(canon_store, h_store) -> tuple[int, int, int, int]:
    """Counter baseline so per-search store deltas can land in the stats."""
    return (canon_store.hits if canon_store is not None else 0,
            canon_store.misses if canon_store is not None else 0,
            h_store.hits if h_store is not None else 0,
            h_store.misses if h_store is not None else 0)


def _finish_store_stats(stats: SearchStats, canon_store, h_store,
                        marks: tuple[int, int, int, int]) -> None:
    """Record this search's share of the persistent-store traffic."""
    if canon_store is not None:
        stats.canon_store_hits = canon_store.hits - marks[0]
        stats.canon_store_misses = canon_store.misses - marks[1]
    if h_store is not None:
        stats.h_store_hits = h_store.hits - marks[2]
        stats.h_store_misses = h_store.misses - marks[3]


def _proven_bound(current_u: float, open_entries, u_index: int) -> int:
    """Integer lower bound from the unweighted ``g + h`` of the frontier.

    The optimal path must pass through the just-popped node or some open
    entry, so ``min`` of their unweighted ``f`` values is a true bound —
    regardless of the heuristic weighting used for ordering.
    """
    best = current_u
    for entry in open_entries:
        u = entry[u_index]
        if u < best:
            best = u
    return int(math.ceil(best - 1e-9))


# ----------------------------------------------------------------------
# Packed-kernel hot loop
# ----------------------------------------------------------------------

def _astar_kernel(target: QState, config: SearchConfig,
                  heuristic: HeuristicFn, memory=None,
                  incumbent=None, topology=None) -> SearchResult:
    weight = config.weight
    stopwatch = Stopwatch(config.time_limit)
    stats = SearchStats()
    # Branch-and-bound bound: a feasible cost some other engine already
    # achieved.  ``ub`` prunes; ``incumbent_result`` is the fallback
    # circuit returned if pruning exhausts the space.
    if incumbent is None:
        ub = None
        incumbent_result = None
    elif isinstance(incumbent, int):
        ub = incumbent
        incumbent_result = None
    else:
        ub = incumbent.cnot_cost
        incumbent_result = incumbent
    transposition = memory.transposition if memory is not None else None
    if memory is not None:
        pool = memory.attach(canon_level=config.canon_level,
                             tie_cap=config.tie_cap,
                             perm_cap=config.perm_cap,
                             max_merge_controls=config.max_merge_controls,
                             include_x_moves=config.include_x_moves,
                             heuristic=heuristic,
                             topology=topology)
        canon_store = memory.canon_store
        h_store = memory.h_store
    else:
        pool = StatePool()
        canon_store = h_store = None
    canon_ctx = CanonContext(config.canon_level, config.tie_cap,
                             config.perm_cap, config.cache_cap,
                             store=canon_store, topology=topology)
    canon = canon_ctx.key
    h_cache = BoundedCache(config.cache_cap)
    h_of = _make_h_of(heuristic, h_cache, h_store)
    store_marks = _store_hit_marks(canon_store, h_store)

    def finish_stats() -> None:
        stats.elapsed_seconds = stopwatch.elapsed()
        stats.canon_cache_hits = canon_ctx.cache.hits
        stats.canon_cache_misses = canon_ctx.cache.misses
        stats.h_cache_hits = h_cache.hits
        stats.h_cache_misses = h_cache.misses
        _finish_store_stats(stats, canon_store, h_store, store_marks)

    counter = itertools.count()
    # entry: (weighted f, g, tiebreak, unweighted g + h, state, prev, move)
    open_heap: list = []
    # Duplicate detection is two-tier and *lazy*: at generation time only
    # the (nearly free) exact-state tier prunes — ``g_pushed`` is keyed by
    # interned identity — while the expensive canonical-class tier runs at
    # pop time.  Frontier states that are never popped therefore never pay
    # for canonicalization, which on budget-bound searches is the bulk of
    # all generated states.  Soundness is unchanged: a class is expanded
    # only with a strictly improving ``g`` (re-expansion safe), exactly as
    # the eager reference loop does.
    g_pushed: dict = {}
    best_g = HashKeyedMap()
    parent: dict = {}

    def push(ps: PackedState, g: int, prev, move) -> None:
        h = h_of(ps)
        if ub is not None and g + h > ub - 1e-9:
            # the admissible (unweighted) h proves no completion through
            # this state beats the incumbent — branch-and-bound prune
            stats.incumbent_prunes += 1
            return
        heapq.heappush(open_heap,
                       (g + weight * h, g, next(counter), g + h, ps,
                        prev, move))
        stats.nodes_generated += 1
        stats.max_queue = max(stats.max_queue, len(open_heap))

    start = pool.from_qstate(target)
    g_pushed[start] = 0
    push(start, 0, None, None)
    last_u = 0.0

    while open_heap:
        _, g, _, u, state, prev, move = heapq.heappop(open_heap)
        if g > g_pushed.get(state, g):
            stats.nodes_pruned += 1
            continue  # superseded by a cheaper push of the same state
        last_u = u

        if num_entangled_packed(state) == 0:
            if prev is not None:
                parent[state] = (prev, move)
            moves = _reconstruct_packed(parent, start, state)
            circuit = moves_to_circuit(moves, state.to_qstate(),
                                       target.num_qubits)
            finish_stats()
            return SearchResult(circuit=circuit, cnot_cost=g,
                                optimal=(weight <= 1.0), moves=moves,
                                stats=stats)

        ckey = canon(state)
        prev_g = best_g.get(ckey)
        if prev_g is not None and g >= prev_g:
            stats.nodes_pruned += 1
            continue  # class already expanded at least this cheaply
        if ub is not None and transposition is not None:
            proven = transposition.exhausted_budget(ckey)
            # "no ground path of cost <= proven leaves this class", so
            # with integer move costs any completion costs
            # >= g + floor(proven) + 1; prune when that reaches the
            # incumbent (only unconditional entries — see astar_search)
            if proven is not None and \
                    g + math.floor(proven) + 1 > ub - 1e-9:
                stats.bnb_transposition_prunes += 1
                continue
        best_g.put(ckey, g)
        if prev is not None:
            parent[state] = (prev, move)

        stats.nodes_expanded += 1
        if stats.nodes_expanded > config.max_nodes or stopwatch.expired():
            finish_stats()
            bound = _proven_bound(u, open_heap, u_index=3)
            raise SearchBudgetExceeded(
                f"search budget exhausted after {stats.nodes_expanded} "
                f"expansions ({stats.elapsed_seconds:.1f}s); "
                f"proven lower bound {bound}",
                lower_bound=bound, incumbent=incumbent_result, stats=stats)

        for nmove, nxt in successors_packed(
                pool, state,
                max_merge_controls=config.max_merge_controls,
                include_x_moves=config.include_x_moves,
                topology=topology):
            g2 = g + nmove.cost
            if g2 >= g_pushed.get(nxt, math.inf):
                stats.nodes_pruned += 1
                continue
            g_pushed[nxt] = g2
            push(nxt, g2, state, nmove)

    finish_stats()
    if incumbent_result is not None:
        # Everything at or above the incumbent cost was pruned and nothing
        # cheaper exists, so the incumbent's cost is the optimum (under an
        # admissible ordering; weighted runs keep their anytime flag).
        return SearchResult(circuit=incumbent_result.circuit,
                            cnot_cost=incumbent_result.cnot_cost,
                            optimal=(weight <= 1.0),
                            moves=list(incumbent_result.moves), stats=stats)
    if ub is not None:
        raise SearchBudgetExceeded(
            f"incumbent bound {ub} proven optimal, but no incumbent "
            f"circuit was supplied to return", lower_bound=ub, stats=stats)
    raise SearchBudgetExceeded(
        "open list exhausted without reaching the ground state "
        "(move set incomplete for this configuration)",
        lower_bound=int(math.ceil(last_u - 1e-9)), stats=stats)


def _reconstruct_packed(parent: dict, start: PackedState,
                        goal: PackedState) -> list[Move]:
    """Walk parent pointers between interned states (identity-keyed)."""
    moves: list[Move] = []
    current = goal
    guard = 0
    while current is not start:
        entry = parent.get(current)
        if entry is None:
            raise SynthesisError("broken parent chain (internal error)")
        prev, move = entry
        moves.append(move)
        current = prev
        guard += 1
        if guard > 1_000_000:
            raise SynthesisError("parent chain cycle (internal error)")
    moves.reverse()
    return moves


# ----------------------------------------------------------------------
# Dict-based reference loop (seed behavior; kept for benchmarking and
# differential testing against the kernel)
# ----------------------------------------------------------------------

def _astar_reference(target: QState, config: SearchConfig,
                     heuristic: HeuristicFn) -> SearchResult:
    weight = config.weight
    stopwatch = Stopwatch(config.time_limit)
    stats = SearchStats()

    canon_cache = BoundedCache(config.cache_cap)
    h_cache = BoundedCache(config.cache_cap)

    def canon(state: QState):
        key = state.key()
        val = canon_cache.get(key)
        if val is None:
            val = canonical_key(state, config.canon_level,
                                tie_cap=config.tie_cap,
                                perm_cap=config.perm_cap)
            canon_cache.put(key, val)
        return val

    def h_of(state: QState) -> float:
        key = state.key()
        val = h_cache.get(key)
        if val is None:
            val = heuristic(state)
            h_cache.put(key, val)
        return val

    def finish_stats() -> None:
        stats.elapsed_seconds = stopwatch.elapsed()
        stats.canon_cache_hits = canon_cache.hits
        stats.canon_cache_misses = canon_cache.misses
        stats.h_cache_hits = h_cache.hits
        stats.h_cache_misses = h_cache.misses

    counter = itertools.count()
    # entry: (weighted f, g, tiebreak, unweighted g + h, state)
    open_heap: list = []
    best_g: dict = {}
    parent: dict = {}

    def push(state: QState, g: int) -> None:
        h = h_of(state)
        heapq.heappush(open_heap,
                       (g + weight * h, g, next(counter), g + h, state))
        stats.nodes_generated += 1
        stats.max_queue = max(stats.max_queue, len(open_heap))

    start_key = canon(target)
    best_g[start_key] = 0
    push(target, 0)
    last_u = 0.0

    while open_heap:
        _, g, _, u, state = heapq.heappop(open_heap)
        ckey = canon(state)
        if g > best_g.get(ckey, g):
            stats.nodes_pruned += 1
            continue
        last_u = u

        if num_entangled_qubits(state) == 0:
            moves = _reconstruct(parent, target, state)
            circuit = moves_to_circuit(moves, state, target.num_qubits)
            finish_stats()
            return SearchResult(circuit=circuit, cnot_cost=g,
                                optimal=(weight <= 1.0), moves=moves,
                                stats=stats)

        stats.nodes_expanded += 1
        if stats.nodes_expanded > config.max_nodes or stopwatch.expired():
            finish_stats()
            bound = _proven_bound(u, open_heap, u_index=3)
            raise SearchBudgetExceeded(
                f"search budget exhausted after {stats.nodes_expanded} "
                f"expansions ({stats.elapsed_seconds:.1f}s); "
                f"proven lower bound {bound}",
                lower_bound=bound, stats=stats)

        for move, nxt in successors(
                state,
                max_merge_controls=config.max_merge_controls,
                include_x_moves=config.include_x_moves):
            g2 = g + move.cost
            nkey = canon(nxt)
            if g2 >= best_g.get(nkey, float("inf")):
                stats.nodes_pruned += 1
                continue
            best_g[nkey] = g2
            parent[nxt.key()] = (state, move)
            push(nxt, g2)

    finish_stats()
    raise SearchBudgetExceeded(
        "open list exhausted without reaching the ground state "
        "(move set incomplete for this configuration)",
        lower_bound=int(math.ceil(last_u - 1e-9)), stats=stats)


def _reconstruct(parent: dict, start: QState, goal: QState) -> list[Move]:
    """Walk parent pointers from the goal back to the start state."""
    moves: list[Move] = []
    current = goal
    start_key = start.key()
    guard = 0
    while current.key() != start_key:
        entry = parent.get(current.key())
        if entry is None:
            raise SynthesisError("broken parent chain (internal error)")
        prev, move = entry
        moves.append(move)
        current = prev
        guard += 1
        if guard > 1_000_000:
            raise SynthesisError("parent chain cycle (internal error)")
    moves.reverse()
    return moves

"""A* search over the state transition graph (paper Algorithm 1).

The search runs *backward* from the target state to (any state equivalent
to) the ground state.  Key implementation points:

* **Concrete states, canonical pruning.**  The open list holds concrete
  states with concrete parent pointers, so path reconstruction directly
  yields a circuit.  Dominance checks use the canonical key of each state's
  equivalence class (``Pi(phi)`` in Algorithm 1): if a member of the class
  was already reached at an equal-or-lower ``g``, the new state is pruned.
  Class members are mutually convertible at zero CNOT cost, so the optimal
  *cost* always survives pruning.
* **Early goal.**  A fully separable state (``h = 0``) is a goal: the
  remaining work is one free ``Ry`` per qubit, emitted directly.
* **Re-expansion safe.**  A better ``g`` for an already-seen class re-opens
  it, which keeps the search optimal even if the heuristic were
  inconsistent.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.circuits.circuit import QCircuit
from repro.core.canonical import CanonLevel, canonical_key
from repro.core.heuristic import HeuristicFn, entanglement_heuristic
from repro.core.moves import Move, moves_to_circuit
from repro.core.transitions import successors
from repro.exceptions import SearchBudgetExceeded
from repro.states.analysis import num_entangled_qubits
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["SearchConfig", "SearchStats", "SearchResult", "astar_search"]


@dataclass
class SearchConfig:
    """Tuning knobs of the exact search.

    Attributes
    ----------
    max_nodes:
        Expansion budget; exceeding it raises
        :class:`~repro.exceptions.SearchBudgetExceeded`.
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).
    canon_level:
        Equivalence used for pruning (paper Sec. V-B); ``PU2`` assumes a
        symmetric coupling graph, exactly as the paper discusses.
    max_merge_controls:
        Cap on MCRy merge controls (``None`` = ``n - 1``, the complete set).
    weight:
        Heuristic weight; ``1.0`` is admissible/optimal, larger trades
        optimality for speed (results are flagged accordingly).
    include_x_moves:
        Explicit free X moves (redundant at ``canon_level >= U2``).
    tie_cap / perm_cap:
        Canonicalization enumeration caps (soundness never depends on them).
    """

    max_nodes: int = 200_000
    time_limit: float | None = None
    canon_level: CanonLevel = CanonLevel.PU2
    max_merge_controls: int | None = None
    weight: float = 1.0
    include_x_moves: bool = False
    tie_cap: int = 256
    perm_cap: int = 24


@dataclass
class SearchStats:
    """Counters reported with every search result."""

    nodes_expanded: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    max_queue: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class SearchResult:
    """Outcome of a (possibly budgeted) search."""

    circuit: QCircuit
    cnot_cost: int
    optimal: bool
    moves: list[Move] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)


def astar_search(target: QState, config: SearchConfig | None = None,
                 heuristic: HeuristicFn | None = None) -> SearchResult:
    """Find a minimum-CNOT preparation circuit for ``target``.

    Raises
    ------
    SearchBudgetExceeded
        When ``max_nodes`` or ``time_limit`` is hit before the ground state
        is reached.  The exception carries the best proven lower bound.
    """
    config = config or SearchConfig()
    if heuristic is None:
        heuristic = entanglement_heuristic
    weight = config.weight
    stopwatch = Stopwatch(config.time_limit)
    stats = SearchStats()

    canon_cache: dict = {}

    def canon(state: QState):
        key = state.key()
        val = canon_cache.get(key)
        if val is None:
            val = canonical_key(state, config.canon_level,
                                tie_cap=config.tie_cap,
                                perm_cap=config.perm_cap)
            canon_cache[key] = val
        return val

    counter = itertools.count()
    open_heap: list[tuple[float, int, int, QState]] = []
    best_g: dict = {}
    parent: dict = {}
    h_cache: dict = {}

    def h_of(state: QState) -> float:
        key = state.key()
        val = h_cache.get(key)
        if val is None:
            val = heuristic(state)
            h_cache[key] = val
        return val

    def push(state: QState, g: int) -> None:
        f = g + weight * h_of(state)
        heapq.heappush(open_heap, (f, g, next(counter), state))
        stats.nodes_generated += 1
        stats.max_queue = max(stats.max_queue, len(open_heap))

    start_key = canon(target)
    best_g[start_key] = 0
    push(target, 0)
    best_f_popped = 0.0

    while open_heap:
        f, g, _, state = heapq.heappop(open_heap)
        ckey = canon(state)
        if g > best_g.get(ckey, g):
            stats.nodes_pruned += 1
            continue
        best_f_popped = max(best_f_popped, f)

        if num_entangled_qubits(state) == 0:
            moves = _reconstruct(parent, target, state)
            circuit = moves_to_circuit(moves, state, target.num_qubits)
            stats.elapsed_seconds = stopwatch.elapsed()
            return SearchResult(circuit=circuit, cnot_cost=g,
                                optimal=(weight <= 1.0), moves=moves,
                                stats=stats)

        stats.nodes_expanded += 1
        if stats.nodes_expanded > config.max_nodes or stopwatch.expired():
            stats.elapsed_seconds = stopwatch.elapsed()
            raise SearchBudgetExceeded(
                f"search budget exhausted after {stats.nodes_expanded} "
                f"expansions ({stats.elapsed_seconds:.1f}s); "
                f"proven lower bound {int(best_f_popped)}",
                lower_bound=int(best_f_popped))

        for move, nxt in successors(
                state,
                max_merge_controls=config.max_merge_controls,
                include_x_moves=config.include_x_moves):
            g2 = g + move.cost
            nkey = canon(nxt)
            if g2 >= best_g.get(nkey, float("inf")):
                stats.nodes_pruned += 1
                continue
            best_g[nkey] = g2
            parent[nxt.key()] = (state, move)
            push(nxt, g2)

    raise SearchBudgetExceeded(
        "open list exhausted without reaching the ground state "
        "(move set incomplete for this configuration)",
        lower_bound=int(best_f_popped))


def _reconstruct(parent: dict, start: QState, goal: QState) -> list[Move]:
    """Walk parent pointers from the goal back to the start state."""
    moves: list[Move] = []
    current = goal
    start_key = start.key()
    guard = 0
    while current.key() != start_key:
        entry = parent.get(current.key())
        if entry is None:
            raise SearchBudgetExceeded("broken parent chain (internal error)")
        prev, move = entry
        moves.append(move)
        current = prev
        guard += 1
        if guard > 1_000_000:
            raise SearchBudgetExceeded("parent chain cycle (internal error)")
    moves.reverse()
    return moves

"""A* search over the state transition graph (paper Algorithm 1).

The search runs *backward* from the target state to (any state equivalent
to) the ground state.  Key implementation points:

* **Concrete states, canonical pruning.**  The open list holds concrete
  states with concrete parent pointers, so path reconstruction directly
  yields a circuit.  Dominance checks use the canonical key of each state's
  equivalence class (``Pi(phi)`` in Algorithm 1): if a member of the class
  was already reached at an equal-or-lower ``g``, the new state is pruned.
  Class members are mutually convertible at zero CNOT cost, so the optimal
  *cost* always survives pruning.
* **Early goal.**  A fully separable state (``h = 0``) is a goal: the
  remaining work is one free ``Ry`` per qubit, emitted directly.
* **Re-expansion safe.**  A better ``g`` for an already-seen class re-opens
  it, which keeps the search optimal even if the heuristic were
  inconsistent.
* **Packed kernel.**  By default the hot loop runs on the packed-array
  kernel (:mod:`repro.core.kernel`): interned array states, vectorized
  successor enumeration, and two-tier *lazy* duplicate detection — the
  exact-state tier (interned identity) prunes at generation time for
  nearly free, while the canonical-class tier (``best_g`` keyed by the
  64-bit canonical hash with a collision spill) runs only when a node is
  popped, so frontier states that are never expanded never pay for
  canonicalization.  ``SearchConfig(use_kernel=False)`` selects the
  dict-based seed loop (eager per-generation canonicalization), which the
  kernel is move-set-identical to by construction; proven costs and
  optimality flags agree on every instance — that is what
  ``benchmarks/bench_kernel.py`` measures expansions/sec against.
* **Proven lower bounds.**  On budget exhaustion the reported bound is
  ``min(g + h)`` over the open list with the *unweighted* heuristic, which
  stays a true lower bound even for ``weight > 1`` (the weighted ``f`` of a
  popped node proves nothing).
* **Stepwise runtime.**  The kernel loop is implemented as
  :class:`AStarRun` on the shared :class:`~repro.core.engine.EngineRun`
  protocol — pausable/resumable in expansion slices, incumbent-injectable
  mid-run, cancellable.  :func:`astar_search` just drives a run to
  completion, so one-shot behavior (costs *and* expansion counts) is
  unchanged by construction; the interleaved portfolio scheduler drives
  the same run in time slices instead.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter

from repro.core.canonical import canonical_key
from repro.core.engine import (
    EngineContext,
    EngineRun,
    RunStatus,
    SearchConfig,
    SearchResult,
    SearchStats,
    _native_topology,
    _proven_bound,
)
from repro.core.heuristic import HeuristicFn, default_heuristic
from repro.core.kernel import (
    BoundedCache,
    HashKeyedMap,
    PackedState,
    num_entangled_packed,
    successors_packed,
)
from repro.core.moves import Move, moves_to_circuit
from repro.core.transitions import successors
from repro.exceptions import SearchBudgetExceeded, SynthesisError
from repro.states.analysis import num_entangled_qubits
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["SearchConfig", "SearchStats", "SearchResult", "AStarRun",
           "astar_search"]


def astar_search(target: QState, config: SearchConfig | None = None,
                 heuristic: HeuristicFn | None = None,
                 memory=None, incumbent=None) -> SearchResult:
    """Find a minimum-CNOT preparation circuit for ``target``.

    ``memory`` optionally plugs a process-lifetime
    :class:`repro.core.memory.SearchMemory` into the kernel loop: the
    interning pool, canonical keys, and heuristic values are then shared
    across calls, which only skips recomputation — results are identical
    warm or cold.  Requires the kernel loop (``use_kernel=True``).

    ``incumbent`` optionally supplies a known-feasible solution (a
    :class:`SearchResult` for the same target, e.g. from a beam pass or a
    portfolio sibling, or a bare integer cost bound) and switches the
    loop into branch-and-bound mode: generated states whose unweighted
    ``g + h`` already reaches the incumbent cost are pruned, and — when a
    ``memory`` with a populated transposition table is attached — a
    popped class whose *unconditional* exhaustion entry proves its
    remaining cost cannot beat the incumbent is pruned too (the ROADMAP's
    incumbent-bounded reuse of IDA* proofs; conditional entries stay
    IDA*-only because their claim is relative to a DFS path this search
    does not have).  Pruning never discards a strictly better solution,
    so the returned cost is unchanged — if the whole space at or above
    the incumbent cost is pruned away, the incumbent itself is returned,
    proven optimal.  Expansions only shrink (the differential tests
    assert both properties).

    This is the one-shot wrapper over :class:`AStarRun` — identical to
    driving a run to completion in a single step.

    Raises
    ------
    SearchBudgetExceeded
        When ``max_nodes`` or ``time_limit`` is hit before the ground state
        is reached.  The exception carries the best proven lower bound
        (computed with the unweighted heuristic, so it is valid for any
        ``weight``) and the incumbent, when one was supplied.
    """
    config = config or SearchConfig()
    if config.use_kernel:
        return AStarRun(target, config, heuristic=heuristic, memory=memory,
                        incumbent=incumbent).run_to_completion()
    topology = _native_topology(config.topology, target.num_qubits)
    if heuristic is None:
        heuristic = default_heuristic(topology)
    if topology is not None:
        raise ValueError("topology-native search requires the kernel loop "
                         "(SearchConfig(use_kernel=True))")
    if memory is not None:
        raise ValueError("SearchMemory requires the kernel loop "
                         "(SearchConfig(use_kernel=True))")
    if incumbent is not None:
        raise ValueError("incumbent-bounded search requires the kernel "
                         "loop (SearchConfig(use_kernel=True))")
    return _astar_reference(target, config, heuristic)


# ----------------------------------------------------------------------
# Packed-kernel hot loop, as a stepwise engine run
# ----------------------------------------------------------------------

class AStarRun(EngineRun):
    """Stepwise A* over the packed kernel (best-first, branch-and-bound).

    The generator body below is the former ``_astar_kernel`` loop, with
    one ``yield`` inserted per node expansion (between the budget check
    and successor generation) — slicing cannot change expansion order or
    any counter.  ``inject_incumbent`` tightens ``self._ub``, which the
    loop reads live at every push and pop, so a sibling's feasible cost
    starts pruning immediately, mid-slice semantics included.
    """

    engine = "astar"

    def __init__(self, target: QState, config: SearchConfig | None = None,
                 heuristic: HeuristicFn | None = None, memory=None,
                 incumbent=None):
        config = config or SearchConfig()
        if not config.use_kernel:
            raise ValueError("stepwise A* runs require the kernel loop "
                             "(SearchConfig(use_kernel=True))")
        self.config = config
        self._incumbent_result: SearchResult | None = None
        self._transposition = memory.transposition \
            if memory is not None else None
        ctx = EngineContext.from_search_config(target, config,
                                               heuristic=heuristic,
                                               memory=memory)
        super().__init__(ctx)
        # EngineRun.__init__ reset _ub; seed it from the incumbent now.
        if incumbent is not None:
            if isinstance(incumbent, int):
                self._ub = incumbent
            else:
                self._ub = incumbent.cnot_cost
                self._incumbent_result = incumbent

    def _main(self):
        ctx = self._ctx
        config = self.config
        weight = config.weight
        stats = ctx.stats
        stopwatch = ctx.stopwatch
        target = ctx.target
        transposition = self._transposition
        canon = ctx.canon
        h_of = ctx.h_of
        profile = config.profile
        phases = stats.phase_seconds
        if profile:
            phases.setdefault("enumeration", 0.0)
            phases.setdefault("canonicalization", 0.0)
            phases.setdefault("heuristic", 0.0)
            phases.setdefault("containers", 0.0)
        h_seconds = 0.0  # accrued inside push(); subtracted from blocks
        try:
            counter = itertools.count()
            # entry: (weighted f, g, tiebreak, unweighted g + h, state,
            #         prev, move)
            open_heap: list = []
            # Duplicate detection is two-tier and *lazy*: at generation
            # time only the (nearly free) exact-state tier prunes —
            # ``g_pushed`` is keyed by interned identity — while the
            # expensive canonical-class tier runs at pop time.  Frontier
            # states that are never popped therefore never pay for
            # canonicalization, which on budget-bound searches is the bulk
            # of all generated states.  Soundness is unchanged: a class is
            # expanded only with a strictly improving ``g`` (re-expansion
            # safe), exactly as the eager reference loop does.
            g_pushed: dict = {}
            best_g = HashKeyedMap()
            parent: dict = {}

            def push(ps: PackedState, g: int, prev, move) -> None:
                nonlocal h_seconds
                if profile:
                    th = perf_counter()
                    h = h_of(ps)
                    h_seconds += perf_counter() - th
                else:
                    h = h_of(ps)
                if self._ub is not None and g + h > self._ub - 1e-9:
                    # the admissible (unweighted) h proves no completion
                    # through this state beats the incumbent —
                    # branch-and-bound prune
                    stats.incumbent_prunes += 1
                    return
                heapq.heappush(open_heap,
                               (g + weight * h, g, next(counter), g + h, ps,
                                prev, move))
                stats.nodes_generated += 1
                stats.max_queue = max(stats.max_queue, len(open_heap))

            start = ctx.start
            g_pushed[start] = 0
            push(start, 0, None, None)
            last_u = 0.0

            while open_heap:
                _, g, _, u, state, prev, move = heapq.heappop(open_heap)
                if g > g_pushed.get(state, g):
                    stats.nodes_pruned += 1
                    continue  # superseded by a cheaper push of the state
                last_u = u

                if num_entangled_packed(state) == 0:
                    if prev is not None:
                        parent[state] = (prev, move)
                    moves = _reconstruct_packed(parent, start, state)
                    circuit = moves_to_circuit(moves, state.to_qstate(),
                                               target.num_qubits)
                    self._finish(RunStatus.SOLVED, result=SearchResult(
                        circuit=circuit, cnot_cost=g,
                        optimal=(weight <= 1.0), moves=moves, stats=stats))
                    return

                if profile:
                    tc = perf_counter()
                    ckey = canon(state)
                    phases["canonicalization"] += perf_counter() - tc
                else:
                    ckey = canon(state)
                prev_g = best_g.get(ckey)
                if prev_g is not None and g >= prev_g:
                    stats.nodes_pruned += 1
                    continue  # class already expanded at least this cheaply
                if self._ub is not None and transposition is not None:
                    proven = transposition.exhausted_budget(ckey)
                    # "no ground path of cost <= proven leaves this
                    # class", so with integer move costs any completion
                    # costs >= g + floor(proven) + 1; prune when that
                    # reaches the incumbent (only unconditional entries —
                    # see astar_search)
                    if proven is not None and \
                            g + math.floor(proven) + 1 > self._ub - 1e-9:
                        stats.bnb_transposition_prunes += 1
                        continue
                best_g.put(ckey, g)
                if prev is not None:
                    parent[state] = (prev, move)

                stats.nodes_expanded += 1
                if stats.nodes_expanded > config.max_nodes or \
                        stopwatch.expired():
                    bound = _proven_bound(u, open_heap, u_index=3)
                    self._finish(
                        RunStatus.EXHAUSTED,
                        error=SearchBudgetExceeded(
                            f"search budget exhausted after "
                            f"{stats.nodes_expanded} expansions "
                            f"({stopwatch.elapsed():.1f}s); "
                            f"proven lower bound {bound}",
                            lower_bound=bound,
                            incumbent=self._incumbent_result, stats=stats))
                    return
                yield  # slice boundary: one yield per expansion

                if profile:
                    te = perf_counter()
                arcs = successors_packed(
                    ctx.pool, state,
                    max_merge_controls=config.max_merge_controls,
                    include_x_moves=config.include_x_moves,
                    topology=ctx.topology)
                if profile:
                    tb = perf_counter()
                    phases["enumeration"] += tb - te
                    h_mark = h_seconds
                for nmove, nxt in arcs:
                    g2 = g + nmove.cost
                    if g2 >= g_pushed.get(nxt, math.inf):
                        stats.nodes_pruned += 1
                        continue
                    g_pushed[nxt] = g2
                    push(nxt, g2, state, nmove)
                if profile:
                    # heap + dedup-map bookkeeping of this expansion, with
                    # the heuristic time accrued inside push() carved out
                    phases["containers"] += (perf_counter() - tb) \
                        - (h_seconds - h_mark)

            if self._incumbent_result is not None:
                # Everything at or above the incumbent cost was pruned and
                # nothing cheaper exists, so the incumbent's cost is the
                # optimum (under an admissible ordering; weighted runs
                # keep their anytime flag).
                inc = self._incumbent_result
                self._finish(RunStatus.SOLVED, result=SearchResult(
                    circuit=inc.circuit, cnot_cost=inc.cnot_cost,
                    optimal=(weight <= 1.0), moves=list(inc.moves),
                    stats=stats))
                return
            if self._ub is not None:
                # Injected bound, no circuit of our own: the incumbent
                # holder's cost is proven optimal.  The one-shot wrapper
                # surfaces this as the historical exception; the
                # scheduler reads the PROVEN status instead.
                self._finish(
                    RunStatus.PROVEN,
                    error=SearchBudgetExceeded(
                        f"incumbent bound {self._ub} proven optimal, but "
                        f"no incumbent circuit was supplied to return",
                        lower_bound=self._ub, stats=stats))
                return
            self._finish(
                RunStatus.EXHAUSTED,
                error=SearchBudgetExceeded(
                    "open list exhausted without reaching the ground state "
                    "(move set incomplete for this configuration)",
                    lower_bound=int(math.ceil(last_u - 1e-9)), stats=stats))
        finally:
            # cancellation (GeneratorExit) and every terminal path above
            # land here: stats are finalized no matter how the run ends
            if profile:
                phases["heuristic"] = h_seconds
            ctx.finalize_stats()


def _reconstruct_packed(parent: dict, start: PackedState,
                        goal: PackedState) -> list[Move]:
    """Walk parent pointers between interned states (identity-keyed)."""
    moves: list[Move] = []
    current = goal
    guard = 0
    while current is not start:
        entry = parent.get(current)
        if entry is None:
            raise SynthesisError("broken parent chain (internal error)")
        prev, move = entry
        moves.append(move)
        current = prev
        guard += 1
        if guard > 1_000_000:
            raise SynthesisError("parent chain cycle (internal error)")
    moves.reverse()
    return moves


# ----------------------------------------------------------------------
# Dict-based reference loop (seed behavior; kept for benchmarking and
# differential testing against the kernel)
# ----------------------------------------------------------------------

def _astar_reference(target: QState, config: SearchConfig,
                     heuristic: HeuristicFn) -> SearchResult:
    weight = config.weight
    stopwatch = Stopwatch(config.time_limit)
    stats = SearchStats()

    canon_cache = BoundedCache(config.cache_cap)
    h_cache = BoundedCache(config.cache_cap)

    def canon(state: QState):
        key = state.key()
        val = canon_cache.get(key)
        if val is None:
            val = canonical_key(state, config.canon_level,
                                tie_cap=config.tie_cap,
                                perm_cap=config.perm_cap)
            canon_cache.put(key, val)
        return val

    def h_of(state: QState) -> float:
        key = state.key()
        val = h_cache.get(key)
        if val is None:
            val = heuristic(state)
            h_cache.put(key, val)
        return val

    def finish_stats() -> None:
        stats.elapsed_seconds = stopwatch.elapsed()
        stats.canon_cache_hits = canon_cache.hits
        stats.canon_cache_misses = canon_cache.misses
        stats.h_cache_hits = h_cache.hits
        stats.h_cache_misses = h_cache.misses

    counter = itertools.count()
    # entry: (weighted f, g, tiebreak, unweighted g + h, state)
    open_heap: list = []
    best_g: dict = {}
    parent: dict = {}

    def push(state: QState, g: int) -> None:
        h = h_of(state)
        heapq.heappush(open_heap,
                       (g + weight * h, g, next(counter), g + h, state))
        stats.nodes_generated += 1
        stats.max_queue = max(stats.max_queue, len(open_heap))

    start_key = canon(target)
    best_g[start_key] = 0
    push(target, 0)
    last_u = 0.0

    while open_heap:
        _, g, _, u, state = heapq.heappop(open_heap)
        ckey = canon(state)
        if g > best_g.get(ckey, g):
            stats.nodes_pruned += 1
            continue
        last_u = u

        if num_entangled_qubits(state) == 0:
            moves = _reconstruct(parent, target, state)
            circuit = moves_to_circuit(moves, state, target.num_qubits)
            finish_stats()
            return SearchResult(circuit=circuit, cnot_cost=g,
                                optimal=(weight <= 1.0), moves=moves,
                                stats=stats)

        stats.nodes_expanded += 1
        if stats.nodes_expanded > config.max_nodes or stopwatch.expired():
            finish_stats()
            bound = _proven_bound(u, open_heap, u_index=3)
            raise SearchBudgetExceeded(
                f"search budget exhausted after {stats.nodes_expanded} "
                f"expansions ({stats.elapsed_seconds:.1f}s); "
                f"proven lower bound {bound}",
                lower_bound=bound, stats=stats)

        for move, nxt in successors(
                state,
                max_merge_controls=config.max_merge_controls,
                include_x_moves=config.include_x_moves):
            g2 = g + move.cost
            nkey = canon(nxt)
            if g2 >= best_g.get(nkey, float("inf")):
                stats.nodes_pruned += 1
                continue
            best_g[nkey] = g2
            parent[nxt.key()] = (state, move)
            push(nxt, g2)

    finish_stats()
    raise SearchBudgetExceeded(
        "open list exhausted without reaching the ground state "
        "(move set incomplete for this configuration)",
        lower_bound=int(math.ceil(last_u - 1e-9)), stats=stats)


def _reconstruct(parent: dict, start: QState, goal: QState) -> list[Move]:
    """Walk parent pointers from the goal back to the start state."""
    moves: list[Move] = []
    current = goal
    start_key = start.key()
    guard = 0
    while current.key() != start_key:
        entry = parent.get(current.key())
        if entry is None:
            raise SynthesisError("broken parent chain (internal error)")
        prev, move = entry
        moves.append(move)
        current = prev
        guard += 1
        if guard > 1_000_000:
            raise SynthesisError("parent chain cycle (internal error)")
    moves.reverse()
    return moves

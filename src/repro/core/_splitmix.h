/* Shared splitmix64 constants for the orbit-hash lanes.
 *
 * Single source of truth consumed by both the C extension
 * (src/repro/core/_fastcore.c) and the Python table
 * (src/repro/core/splitmix.py).  The two are cross-checked at runtime by
 * repro.core.fastcore (the extension exports splitmix_constants()) and by
 * a header-parsing test, so the lanes can never drift.
 *
 * SM_GOLDEN  - additive round constant (golden-ratio increment)
 * SM_A1/A2   - lane-A multiply constants (splitmix64 finalizer)
 * SM_B1/B2   - lane-B multiply constants (murmur3-style variant)
 * SM_ORBIT_MUL - pre-mix multiplier applied to (index ^ mask)
 */
#ifndef REPRO_SPLITMIX_H
#define REPRO_SPLITMIX_H

#define SM_GOLDEN 0x9E3779B97F4A7C15ULL
#define SM_A1 0xBF58476D1CE4E5B9ULL
#define SM_A2 0x94D049BB133111EBULL
#define SM_B1 0xFF51AFD7ED558CCDULL
#define SM_B2 0xC4CEB9FE1A85EC53ULL
#define SM_ORBIT_MUL 0x2545F4914F6CDD1DULL

#endif /* REPRO_SPLITMIX_H */

"""Anytime beam search over the same transition graph as the A* engine.

The exact A* search is provably optimal but can exhaust its budget on
larger instances (deep Dicke states).  The beam variant keeps the ``width``
most promising states per level (scored by ``g + w*h``), always terminates,
and returns the best feasible circuit found — flagged ``optimal=False``.

It shares the packed-array kernel (moves, canonicalization, interning)
with the A* engine — successor order and scores are identical to the
dict-based reference, so beam trajectories are unchanged by the kernel
migration — and any circuit it returns is verified the same way.
``include_x_moves`` mirrors :class:`~repro.core.astar.SearchConfig`, so a
beam run explores exactly the move set of the exact engines it falls back
from.  The per-level dominance map ``seen_g`` is size-capped like every
other search container (eviction only weakens pruning, never feasibility).

**Stepwise runtime.**  :class:`BeamRun` implements the level loop on the
shared :class:`~repro.core.engine.EngineRun` protocol, yielding once per
node expansion; :func:`beam_search` drives a run to completion and is
trajectory-identical to the pre-refactor function.  Beam is the
portfolio's *anytime* lane: :meth:`BeamRun.best_feasible` exposes the
best circuit found so far while the run is still ``RUNNING``, so an
interleaved scheduler can hand that cost to the exact lanes'
branch-and-bound the moment it appears; an injected sibling incumbent in
turn tightens beam's own candidate pruning (a candidate that cannot beat
the portfolio-wide best is dead weight in the beam).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.constants import (
    SEARCH_CACHE_CAP,
    SEARCH_PERM_CAP,
    SEARCH_TIE_CAP,
)
from repro.core.canonical import CanonLevel
from repro.core.engine import (
    EngineContext,
    EngineRun,
    RunStatus,
    SearchResult,
)
from repro.core.heuristic import HeuristicFn
from repro.core.kernel import (
    BoundedCache,
    PackedState,
    num_entangled_packed,
    successors_packed,
)
from repro.core.moves import Move, moves_to_circuit
from repro.exceptions import SynthesisError
from repro.states.qstate import QState

__all__ = ["BeamConfig", "BeamRun", "beam_search"]


@dataclass
class BeamConfig:
    """Beam-search knobs.

    ``width`` states survive each level; ``heuristic_weight`` biases the
    score toward quickly-separable states; ``max_depth`` bounds the number
    of levels (a merge happens at least every few moves on any sensible
    path, so ``4 * n * m`` is generous).  ``max_merge_controls`` and
    ``include_x_moves`` select the move set exactly as in
    :class:`~repro.core.astar.SearchConfig`, so beam and the exact engines
    search the same graph.
    """

    width: int = 128
    heuristic_weight: float = 1.5
    max_depth: int | None = None
    canon_level: CanonLevel = CanonLevel.PU2
    time_limit: float | None = None
    max_merge_controls: int | None = None
    include_x_moves: bool = False
    tie_cap: int = SEARCH_TIE_CAP
    perm_cap: int = SEARCH_PERM_CAP
    cache_cap: int = SEARCH_CACHE_CAP
    #: per-phase wall-clock timers into ``stats.phase_seconds`` — same
    #: buckets and zero-overhead-when-off contract as
    #: :class:`~repro.core.engine.SearchConfig.profile`
    profile: bool = False
    #: optional CouplingMap — same native move-set semantics as
    #: :class:`~repro.core.astar.SearchConfig.topology`; additionally
    #: disables the m-flow completion tail (whose merges are not native)
    topology: object | None = None


@dataclass
class _Node:
    state: PackedState
    g: int
    path: tuple[Move, ...]


def beam_search(target: QState, config: BeamConfig | None = None,
                heuristic: HeuristicFn | None = None,
                memory=None) -> SearchResult:
    """Best-effort synthesis; always returns a valid circuit.

    ``memory`` optionally plugs a process-lifetime
    :class:`repro.core.memory.SearchMemory` (shared interning pool and
    canon/heuristic stores) — pure recomputation reuse, trajectories are
    identical warm or cold.

    This is the one-shot wrapper over :class:`BeamRun`.

    Raises :class:`~repro.exceptions.SynthesisError` only if no separable
    state is ever reached (which cannot happen with the complete move set
    and a sane depth bound).
    """
    return BeamRun(target, config, heuristic=heuristic,
                   memory=memory).run_to_completion()


class BeamRun(EngineRun):
    """Stepwise anytime beam search (see module docstring)."""

    engine = "beam"

    def __init__(self, target: QState, config: BeamConfig | None = None,
                 heuristic: HeuristicFn | None = None, memory=None,
                 incumbent=None):
        config = config or BeamConfig()
        self.config = config
        self._best: SearchResult | None = None
        ctx = EngineContext(
            target, canon_level=config.canon_level, tie_cap=config.tie_cap,
            perm_cap=config.perm_cap,
            max_merge_controls=config.max_merge_controls,
            include_x_moves=config.include_x_moves,
            cache_cap=config.cache_cap, topology=config.topology,
            time_limit=config.time_limit, heuristic=heuristic,
            memory=memory, profile=config.profile)
        # the dedup container is read by finalize-time stats, so it must
        # exist before the first step (and before any cancellation);
        # likewise the frontier starts at the target so a deadline flush
        # can m-flow-complete *something* even before the first slice
        self._seen_g = BoundedCache(config.cache_cap)
        self._beam: list[_Node] = [_Node(state=ctx.start, g=0, path=())]
        super().__init__(ctx)
        if incumbent is not None:
            self.inject_incumbent(incumbent if isinstance(incumbent, int)
                                  else incumbent.cnot_cost)

    def best_feasible(self) -> SearchResult | None:
        """Best circuit found so far — readable *while running* (anytime)."""
        if self._result is not None:
            return self._result
        return self._best

    def flush_feasible(self) -> SearchResult | None:
        """Complete the *current* frontier into a feasible circuit now.

        A deadline can cut a beam run before any beam node turns
        separable; the frontier still encodes real progress, and the
        m-flow completion tail can finish its best nodes in polynomial
        time.  The scheduler calls this at deadline expiry so an anytime
        request gets a valid circuit instead of nothing.  Topology-native
        runs skip the tail (its merges are not native) and just report
        :meth:`best_feasible`.
        """
        self._complete_frontier(self._beam)
        return self.best_feasible()

    def _complete_frontier(self, beam: list[_Node]) -> None:
        """Flush separable frontier nodes and m-flow-complete the rest.

        Exactly the run's historical end-of-search completion, factored
        out so a deadline flush performs the identical computation on the
        current beam.  Only ever *improves* ``self._best``.
        """
        ctx = self._ctx
        config = self.config
        n = ctx.target.num_qubits
        for node in beam:
            if num_entangled_packed(node.state) == 0 and \
                    (self._best is None or node.g < self._best.cnot_cost):
                moves = list(node.path)
                circuit = moves_to_circuit(moves, node.state.to_qstate(), n)
                self._best = SearchResult(
                    circuit=circuit, cnot_cost=node.g, optimal=False,
                    moves=moves, stats=ctx.stats)

        # Completion: finish the most promising frontier nodes with
        # cardinality reduction, so the beam always returns a feasible
        # circuit even when it timed out before disentangling anything.
        # The m-flow merges are not topology-native, so a restricted run
        # skips the tail — a native beam only ever returns circuits whose
        # every CNOT sits on a coupled pair.
        if ctx.topology is None:
            from repro.baselines.mflow import mflow_reduction_moves

            frontier = sorted(beam, key=lambda nd: (
                nd.g + config.heuristic_weight * ctx.h_of(nd.state)))
            for node in frontier[:3] if frontier else []:
                if num_entangled_packed(node.state) == 0:
                    continue
                tail_moves, final_state = mflow_reduction_moves(
                    node.state.to_qstate())
                g_total = node.g + sum(m.cost for m in tail_moves)
                if self._best is None or g_total < self._best.cnot_cost:
                    moves = list(node.path) + tail_moves
                    circuit = moves_to_circuit(moves, final_state, n)
                    self._best = SearchResult(
                        circuit=circuit, cnot_cost=g_total, optimal=False,
                        moves=moves, stats=ctx.stats)

    def _cost_limit(self) -> float:
        """Candidates at or above this cost cannot improve anything."""
        limit = float("inf")
        if self._best is not None:
            limit = self._best.cnot_cost
        if self._ub is not None and self._ub < limit:
            limit = float(self._ub)
        return limit

    def _main(self):
        ctx = self._ctx
        config = self.config
        stats = ctx.stats
        stopwatch = ctx.stopwatch
        canon = ctx.canon
        h_of = ctx.h_of
        target = ctx.target
        n = target.num_qubits
        max_depth = config.max_depth
        if max_depth is None:
            max_depth = 4 * n * max(2, target.cardinality)
        seen_g = self._seen_g
        profile = config.profile
        phases = stats.phase_seconds
        if profile:
            phases.setdefault("enumeration", 0.0)
            phases.setdefault("canonicalization", 0.0)
            phases.setdefault("heuristic", 0.0)
        try:
            start = ctx.start
            beam = self._beam  # the one-node frontier built in __init__
            # per-class best g, capped like every other search container:
            # an evicted entry merely lets a class re-enter a later level
            seen_g.put(canon(start), 0)

            for _depth in range(max_depth):
                if stopwatch.expired():
                    break
                candidates: list[tuple[float, int, _Node]] = []
                tiebreak = 0
                for node in beam:
                    if num_entangled_packed(node.state) == 0:
                        if self._best is None or \
                                node.g < self._best.cnot_cost:
                            moves = list(node.path)
                            circuit = moves_to_circuit(
                                moves, node.state.to_qstate(), n)
                            self._best = SearchResult(
                                circuit=circuit, cnot_cost=node.g,
                                optimal=False, moves=moves, stats=stats)
                        continue
                    stats.nodes_expanded += 1
                    yield  # slice boundary: one yield per expansion
                    # the pruning limit can only move at a yield (sibling
                    # injection between slices) or when a separable node
                    # earlier in this level improved best — both strictly
                    # before this expansion — so hoist it out of the
                    # successor loop
                    cost_limit = self._cost_limit()
                    if profile:
                        te = perf_counter()
                        arcs = successors_packed(
                            ctx.pool, node.state,
                            max_merge_controls=config.max_merge_controls,
                            include_x_moves=config.include_x_moves,
                            topology=ctx.topology)
                        phases["enumeration"] += perf_counter() - te
                    else:
                        arcs = successors_packed(
                            ctx.pool, node.state,
                            max_merge_controls=config.max_merge_controls,
                            include_x_moves=config.include_x_moves,
                            topology=ctx.topology)
                    for move, nxt in arcs:
                        g2 = node.g + move.cost
                        if g2 >= cost_limit:
                            continue  # cannot improve the incumbent
                        if profile:
                            tc = perf_counter()
                            ckey = canon(nxt)
                            phases["canonicalization"] += \
                                perf_counter() - tc
                        else:
                            ckey = canon(nxt)
                        prev = seen_g.get(ckey)
                        if prev is not None and prev <= g2:
                            stats.nodes_pruned += 1
                            continue
                        seen_g.put(ckey, g2)
                        stats.nodes_generated += 1
                        if profile:
                            th = perf_counter()
                            h = h_of(nxt)
                            phases["heuristic"] += perf_counter() - th
                        else:
                            h = h_of(nxt)
                        score = g2 + config.heuristic_weight * h
                        tiebreak += 1
                        candidates.append(
                            (score, tiebreak,
                             _Node(state=nxt, g=g2,
                                   path=node.path + (move,))))
                if not candidates:
                    break
                candidates.sort(key=lambda item: (item[0], item[1]))
                beam = [node for _, _, node in candidates[:config.width]]
                self._beam = beam

            # Flush separable frontier nodes + m-flow-complete the rest.
            self._complete_frontier(beam)

            if self._best is None:
                self._finish(RunStatus.EXHAUSTED, error=SynthesisError(
                    "beam search produced no feasible circuit"))
                return
            self._finish(RunStatus.SOLVED, result=self._best)
        finally:
            stats.dedup_evictions = seen_g.evictions
            ctx.finalize_stats()

"""Anytime beam search over the same transition graph as the A* engine.

The exact A* search is provably optimal but can exhaust its budget on
larger instances (deep Dicke states).  The beam variant keeps the ``width``
most promising states per level (scored by ``g + w*h``), always terminates,
and returns the best feasible circuit found — flagged ``optimal=False``.

It shares the packed-array kernel (moves, canonicalization, interning)
with the A* engine — successor order and scores are identical to the
dict-based reference, so beam trajectories are unchanged by the kernel
migration — and any circuit it returns is verified the same way.
``include_x_moves`` mirrors :class:`~repro.core.astar.SearchConfig`, so a
beam run explores exactly the move set of the exact engines it falls back
from.  The per-level dominance map ``seen_g`` is size-capped like every
other search container (eviction only weakens pruning, never feasibility).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    SEARCH_CACHE_CAP,
    SEARCH_PERM_CAP,
    SEARCH_TIE_CAP,
)
from repro.core.astar import (
    SearchResult,
    SearchStats,
    _finish_store_stats,
    _make_h_of,
    _native_topology,
    _store_hit_marks,
)
from repro.core.canonical import CanonLevel
from repro.core.heuristic import HeuristicFn, default_heuristic
from repro.core.kernel import (
    BoundedCache,
    CanonContext,
    PackedState,
    StatePool,
    num_entangled_packed,
    successors_packed,
)
from repro.core.moves import Move, moves_to_circuit
from repro.exceptions import SynthesisError
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["BeamConfig", "beam_search"]


@dataclass
class BeamConfig:
    """Beam-search knobs.

    ``width`` states survive each level; ``heuristic_weight`` biases the
    score toward quickly-separable states; ``max_depth`` bounds the number
    of levels (a merge happens at least every few moves on any sensible
    path, so ``4 * n * m`` is generous).  ``max_merge_controls`` and
    ``include_x_moves`` select the move set exactly as in
    :class:`~repro.core.astar.SearchConfig`, so beam and the exact engines
    search the same graph.
    """

    width: int = 128
    heuristic_weight: float = 1.5
    max_depth: int | None = None
    canon_level: CanonLevel = CanonLevel.PU2
    time_limit: float | None = None
    max_merge_controls: int | None = None
    include_x_moves: bool = False
    tie_cap: int = SEARCH_TIE_CAP
    perm_cap: int = SEARCH_PERM_CAP
    cache_cap: int = SEARCH_CACHE_CAP
    #: optional CouplingMap — same native move-set semantics as
    #: :class:`~repro.core.astar.SearchConfig.topology`; additionally
    #: disables the m-flow completion tail (whose merges are not native)
    topology: object | None = None


@dataclass
class _Node:
    state: PackedState
    g: int
    path: tuple[Move, ...]


def beam_search(target: QState, config: BeamConfig | None = None,
                heuristic: HeuristicFn | None = None,
                memory=None) -> SearchResult:
    """Best-effort synthesis; always returns a valid circuit.

    ``memory`` optionally plugs a process-lifetime
    :class:`repro.core.memory.SearchMemory` (shared interning pool and
    canon/heuristic stores) — pure recomputation reuse, trajectories are
    identical warm or cold.

    Raises :class:`~repro.exceptions.SynthesisError` only if no separable
    state is ever reached (which cannot happen with the complete move set
    and a sane depth bound).
    """
    config = config or BeamConfig()
    topology = _native_topology(config.topology, target.num_qubits)
    if heuristic is None:
        heuristic = default_heuristic(topology)
    stopwatch = Stopwatch(config.time_limit)
    stats = SearchStats()
    n = target.num_qubits
    max_depth = config.max_depth
    if max_depth is None:
        max_depth = 4 * n * max(2, target.cardinality)

    if memory is not None:
        pool = memory.attach(canon_level=config.canon_level,
                             tie_cap=config.tie_cap,
                             perm_cap=config.perm_cap,
                             max_merge_controls=config.max_merge_controls,
                             include_x_moves=config.include_x_moves,
                             heuristic=heuristic,
                             topology=topology)
        canon_store = memory.canon_store
        h_store = memory.h_store
    else:
        pool = StatePool()
        canon_store = h_store = None
    canon_ctx = CanonContext(config.canon_level, config.tie_cap,
                             config.perm_cap, config.cache_cap,
                             store=canon_store, topology=topology)
    canon = canon_ctx.key
    h_cache = BoundedCache(config.cache_cap)
    h_of = _make_h_of(heuristic, h_cache, h_store)
    store_marks = _store_hit_marks(canon_store, h_store)

    def finish_stats() -> None:
        # called on *every* exit path (including the failure raise), so no
        # result ever carries a stale elapsed time or cache counters
        stats.elapsed_seconds = stopwatch.elapsed()
        stats.canon_cache_hits = canon_ctx.cache.hits
        stats.canon_cache_misses = canon_ctx.cache.misses
        stats.h_cache_hits = h_cache.hits
        stats.h_cache_misses = h_cache.misses
        stats.dedup_evictions = seen_g.evictions
        _finish_store_stats(stats, canon_store, h_store, store_marks)

    best: SearchResult | None = None
    start = pool.from_qstate(target)
    beam = [_Node(state=start, g=0, path=())]
    # per-class best g, capped like every other search container: an
    # evicted entry merely lets a class re-enter a later level
    seen_g = BoundedCache(config.cache_cap)
    seen_g.put(canon(start), 0)

    for _depth in range(max_depth):
        if stopwatch.expired():
            break
        candidates: list[tuple[float, int, _Node]] = []
        tiebreak = 0
        for node in beam:
            if num_entangled_packed(node.state) == 0:
                if best is None or node.g < best.cnot_cost:
                    moves = list(node.path)
                    circuit = moves_to_circuit(moves, node.state.to_qstate(),
                                               n)
                    best = SearchResult(circuit=circuit, cnot_cost=node.g,
                                        optimal=False, moves=moves,
                                        stats=stats)
                continue
            stats.nodes_expanded += 1
            for move, nxt in successors_packed(
                    pool, node.state,
                    max_merge_controls=config.max_merge_controls,
                    include_x_moves=config.include_x_moves,
                    topology=topology):
                g2 = node.g + move.cost
                if best is not None and g2 >= best.cnot_cost:
                    continue  # cannot improve the incumbent
                ckey = canon(nxt)
                prev = seen_g.get(ckey)
                if prev is not None and prev <= g2:
                    stats.nodes_pruned += 1
                    continue
                seen_g.put(ckey, g2)
                stats.nodes_generated += 1
                score = g2 + config.heuristic_weight * h_of(nxt)
                tiebreak += 1
                candidates.append(
                    (score, tiebreak,
                     _Node(state=nxt, g=g2, path=node.path + (move,))))
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        beam = [node for _, _, node in candidates[:config.width]]

    # Flush any separable states left in the final beam.
    for node in beam:
        if num_entangled_packed(node.state) == 0 and \
                (best is None or node.g < best.cnot_cost):
            moves = list(node.path)
            circuit = moves_to_circuit(moves, node.state.to_qstate(), n)
            best = SearchResult(circuit=circuit, cnot_cost=node.g,
                                optimal=False, moves=moves, stats=stats)

    # Completion: finish the most promising frontier nodes with cardinality
    # reduction, so the beam always returns a feasible circuit even when it
    # timed out before disentangling anything.  The m-flow merges are not
    # topology-native, so a restricted run skips the tail — a native beam
    # only ever returns circuits whose every CNOT sits on a coupled pair.
    if topology is None:
        from repro.baselines.mflow import mflow_reduction_moves

        frontier = sorted(beam, key=lambda nd: (
            nd.g + config.heuristic_weight * h_of(nd.state)))
        for node in frontier[:3] if frontier else []:
            if num_entangled_packed(node.state) == 0:
                continue
            tail_moves, final_state = mflow_reduction_moves(
                node.state.to_qstate())
            g_total = node.g + sum(m.cost for m in tail_moves)
            if best is None or g_total < best.cnot_cost:
                moves = list(node.path) + tail_moves
                circuit = moves_to_circuit(moves, final_state, n)
                best = SearchResult(circuit=circuit, cnot_cost=g_total,
                                    optimal=False, moves=moves, stats=stats)

    finish_stats()
    if best is None:
        raise SynthesisError("beam search produced no feasible circuit")
    return best

"""Iterative-deepening A* over the state transition graph (extension).

IDA* trades the A* open list for repeated depth-first probes with an
increasing ``f``-bound.  It visits more nodes than A* but stores only the
current path, so it handles instances whose A* frontier would exhaust
memory — the regime the paper's Sec. VI-D scalability discussion worries
about.  With the same admissible heuristic it returns the same optimal
CNOT cost (asserted by the test suite on randomized instances).

The probe runs on the packed-array kernel (:mod:`repro.core.kernel`):
states are interned arrays, successors come from the vectorized
enumerator, and the path / transposition structures are keyed by the
canonical class.  Canonicalization is used *along the current path*
(cycle avoidance) and in a transposition table of ``class -> max
remaining cost budget proven exhausted`` entries.

**Transposition soundness.**  Skipping a child because its class sits on
the DFS path (cycle avoidance) is sound for the probe itself, but it
makes the enclosing exhaustion claim *path-relative*: a later probe
reaching the class via a different prefix could be pruned away from the
goal.  The pre-fix code recorded such truncated subtrees as plain
exhaustion and compensated by clearing the table at every deepening
round — which was still unsound whenever two probes of the *same* round
reached a class via different prefixes
(``IDAStarConfig(record_truncated=True)`` retains that write rule solely
for the regression test that demonstrates the miss).

The fix records every exhausted subtree but tags it with the exact
*condition* its proof leaned on: the set of path classes strictly above
the node whose path pruning truncated exploration anywhere in the
subtree.  The probe threads this truncation set upward, dropping each
node's own class on the way — legitimate because class members share
their optimal remaining cost (free intra-class conversion), so a
minimum-cost goal path from a node can be chosen *class-acyclic* and in
particular never revisits the node's own class.  An empty set yields an
unconditional entry, reusable by any probe of any round — and, through
:class:`repro.core.memory.SearchMemory`, of any search, since every
search shares the ground class as its goal.  A non-empty set yields a
conditional entry reusable exactly by probes whose own path contains all
named classes (goals routed through one's own ancestors are redundant —
the same argument that makes path pruning admissible), which preserves
the aggressive intra-search pruning the old unsound table provided; see
:class:`repro.core.memory.TranspositionTable` for the reuse contract.
``stats.transposition_poisoned`` counts the records that the old rule
would have written unconditionally but are in fact path-dependent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.astar import (
    SearchConfig,
    SearchResult,
    SearchStats,
    _finish_store_stats,
    _make_h_of,
    _native_topology,
    _store_hit_marks,
)
from repro.core.heuristic import HeuristicFn, default_heuristic
from repro.core.kernel import (
    BoundedCache,
    CanonContext,
    PackedState,
    StatePool,
    num_entangled_packed,
    successors_packed,
)
from repro.core.memory import TranspositionTable
from repro.core.moves import Move, moves_to_circuit
from repro.exceptions import SearchBudgetExceeded
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["IDAStarConfig", "idastar_search"]

_FOUND = -1.0


@dataclass
class IDAStarConfig:
    """Tuning knobs of the iterative-deepening search.

    ``search`` carries the shared options (canonicalization level, move
    caps, budgets); ``transposition_cap`` bounds the per-call table of
    ``(class -> exhausted remaining budget)`` entries (ignored when a
    persistent ``SearchMemory`` supplies its own table).
    ``record_truncated`` re-enables the pre-fix unsound write rule —
    recording exhaustion even for subtrees truncated by path pruning —
    and exists only so the regression tests can demonstrate the bug;
    never enable it otherwise.
    """

    search: SearchConfig = field(default_factory=SearchConfig)
    transposition_cap: int = 200_000
    record_truncated: bool = False


def idastar_search(target: QState, config: IDAStarConfig | None = None,
                   heuristic: HeuristicFn | None = None,
                   memory=None) -> SearchResult:
    """Minimum-CNOT synthesis by iterative deepening (optimal).

    ``memory`` optionally plugs a process-lifetime
    :class:`repro.core.memory.SearchMemory`: the interning pool, canonical
    keys, heuristic values, *and* the transposition table then persist
    across calls (sound because entries are target-independent — see the
    module docstring), which makes repeated family searches dramatically
    warmer while provably returning the same optimal costs.

    Raises :class:`SearchBudgetExceeded` when ``max_nodes`` (total expansions
    across all rounds) or the time limit runs out.
    """
    config = config or IDAStarConfig()
    shared = config.search
    topology = _native_topology(shared.topology, target.num_qubits)
    if heuristic is None:
        heuristic = default_heuristic(topology)
    stopwatch = Stopwatch(shared.time_limit)
    stats = SearchStats()
    if memory is not None:
        pool = memory.attach(canon_level=shared.canon_level,
                             tie_cap=shared.tie_cap,
                             perm_cap=shared.perm_cap,
                             max_merge_controls=shared.max_merge_controls,
                             include_x_moves=shared.include_x_moves,
                             heuristic=heuristic,
                             topology=topology)
        canon_store = memory.canon_store
        h_store = memory.h_store
        transposition = memory.transposition
    else:
        pool = StatePool()
        canon_store = h_store = None
        transposition = TranspositionTable(config.transposition_cap)

    canon_ctx = CanonContext(shared.canon_level, shared.tie_cap,
                             shared.perm_cap, shared.cache_cap,
                             store=canon_store, topology=topology)
    canon = canon_ctx.key
    h_cache = BoundedCache(shared.cache_cap)
    h_of = _make_h_of(heuristic, h_cache, h_store)
    store_marks = _store_hit_marks(canon_store, h_store)

    def finish_stats() -> None:
        stats.elapsed_seconds = stopwatch.elapsed()
        stats.canon_cache_hits = canon_ctx.cache.hits
        stats.canon_cache_misses = canon_ctx.cache.misses
        stats.h_cache_hits = h_cache.hits
        stats.h_cache_misses = h_cache.misses
        _finish_store_stats(stats, canon_store, h_store, store_marks)

    record_truncated = config.record_truncated
    path_moves: list[Move] = []
    path_stack: list = []
    path_class_set: set = set()
    goal_state: PackedState | None = None
    _NO_TRUNC: frozenset = frozenset()

    def probe(state: PackedState, g: int,
              bound: float) -> tuple[float, frozenset]:
        """DFS below ``state``; returns ``(value, trunc)`` where ``value``
        is the smallest f that exceeded the bound (or ``_FOUND``) and
        ``trunc`` is the set of path classes strictly above this node that
        truncated exploration anywhere in the subtree (empty when the
        exhaustion proof is path-independent — see module docstring)."""
        nonlocal goal_state
        f = g + h_of(state)
        if f > bound:
            # f-pruning is path-independent: the admissible h proves no
            # goal within the bound through this node from *any* prefix
            return f, _NO_TRUNC
        if num_entangled_packed(state) == 0:
            goal_state = state
            return _FOUND, _NO_TRUNC
        stats.nodes_expanded += 1
        if stats.nodes_expanded > shared.max_nodes or stopwatch.expired():
            finish_stats()
            raise SearchBudgetExceeded(
                f"IDA* budget exhausted after {stats.nodes_expanded} "
                f"expansions", lower_bound=proven_lb, stats=stats)
        remaining = bound - g
        ckey = canon(state)
        condition = transposition.lookup(ckey, remaining, path_class_set)
        if condition is not None:
            # the entry's condition is the truncation debt this prune
            # inherits (empty for an unconditional, hence universal, claim)
            stats.transposition_hits += 1
            return bound + 1.0, condition
        minimum = float("inf")
        trunc: set | frozenset = _NO_TRUNC
        for move, nxt in successors_packed(
                pool, state,
                max_merge_controls=shared.max_merge_controls,
                include_x_moves=shared.include_x_moves,
                topology=topology):
            stats.nodes_generated += 1
            nkey = canon(nxt)
            if nkey in path_class_set:
                # cycle avoidance: sound for this probe, but it truncates
                # the subtree relative to the path class it skipped
                stats.nodes_pruned += 1
                if nkey != ckey:  # own-class skips are discharged here
                    if type(trunc) is frozenset:
                        trunc = set(trunc)
                    trunc.add(nkey)
                continue
            path_moves.append(move)
            path_stack.append(nkey)
            path_class_set.add(nkey)
            result, child_trunc = probe(nxt, g + move.cost, bound)
            if result == _FOUND:
                return _FOUND, _NO_TRUNC
            path_moves.pop()
            path_class_set.discard(path_stack.pop())
            if child_trunc:
                # fold the child's truncation debt, discharging this
                # node's own class (a class-acyclic witness from here
                # never revisits it)
                if type(trunc) is frozenset:
                    trunc = set(trunc)
                trunc.update(child_trunc)
                trunc.discard(ckey)
            if result < minimum:
                minimum = result
        trunc_frozen = frozenset(trunc) if type(trunc) is not frozenset \
            else trunc
        if trunc_frozen and not record_truncated:
            stats.transposition_poisoned += 1
            transposition.record(ckey, remaining, trunc_frozen)
        else:
            # record_truncated reinstates the pre-fix bug: the condition
            # is dropped and the entry reads as unconditional
            transposition.record(ckey, remaining, _NO_TRUNC)
        stats.transposition_writes += 1
        return minimum, trunc_frozen

    start = pool.from_qstate(target)
    bound = h_of(start)
    # Proven lower bound, maintained round-by-round: admissibility proves
    # ``OPT >= h(start)`` up front (A*'s ceil convention — the old code
    # truncated ``int(bound)``); each fully exhausted round then proves
    # ``OPT > bound``, i.e. ``OPT >= floor(bound) + 1`` with integer move
    # costs.  The *next-round* bound itself is not used as a claim: a
    # transposition hit reports ``bound + 1.0``, which with fractional
    # heuristics may overstate the subtree's true minimal exceeded f.
    proven_lb = int(math.ceil(bound - 1e-9))
    start_class = canon(start)
    while True:
        path_moves.clear()
        path_stack.clear()
        path_class_set.clear()
        path_class_set.add(start_class)
        outcome, _ = probe(start, 0, bound)
        if outcome == _FOUND:
            assert goal_state is not None
            moves = list(path_moves)
            circuit = moves_to_circuit(moves, goal_state.to_qstate(),
                                       target.num_qubits)
            finish_stats()
            cost = sum(m.cost for m in moves)
            return SearchResult(circuit=circuit, cnot_cost=cost,
                                optimal=True, moves=moves, stats=stats)
        proven_lb = max(proven_lb, int(bound) + 1)
        if outcome == float("inf"):
            finish_stats()
            raise SearchBudgetExceeded(
                "IDA* exhausted the move space without reaching ground "
                "(move set incomplete for this configuration)",
                lower_bound=proven_lb, stats=stats)
        bound = outcome

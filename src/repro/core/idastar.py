"""Iterative-deepening A* over the state transition graph (extension).

IDA* trades the A* open list for repeated depth-first probes with an
increasing ``f``-bound.  It visits more nodes than A* but stores only the
current path, so it handles instances whose A* frontier would exhaust
memory — the regime the paper's Sec. VI-D scalability discussion worries
about.  With the same admissible heuristic it returns the same optimal
CNOT cost (asserted by the test suite on randomized instances).

Canonicalization is used *along the current path* (cycle avoidance) and in
a bounded transposition table that persists across deepening rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QCircuit
from repro.core.astar import SearchConfig, SearchResult, SearchStats
from repro.core.canonical import canonical_key
from repro.core.heuristic import HeuristicFn, entanglement_heuristic
from repro.core.moves import Move, moves_to_circuit
from repro.core.transitions import successors
from repro.exceptions import SearchBudgetExceeded
from repro.states.analysis import num_entangled_qubits
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["IDAStarConfig", "idastar_search"]

_FOUND = -1.0


@dataclass
class IDAStarConfig:
    """Tuning knobs of the iterative-deepening search.

    ``search`` carries the shared options (canonicalization level, move
    caps, budgets); ``transposition_cap`` bounds the optional memory of
    ``(class, depth-bound)`` entries that prunes re-probes across rounds.
    """

    search: SearchConfig = field(default_factory=SearchConfig)
    transposition_cap: int = 200_000


def idastar_search(target: QState, config: IDAStarConfig | None = None,
                   heuristic: HeuristicFn | None = None) -> SearchResult:
    """Minimum-CNOT synthesis by iterative deepening (optimal).

    Raises :class:`SearchBudgetExceeded` when ``max_nodes`` (total expansions
    across all rounds) or the time limit runs out.
    """
    config = config or IDAStarConfig()
    shared = config.search
    if heuristic is None:
        heuristic = entanglement_heuristic
    stopwatch = Stopwatch(shared.time_limit)
    stats = SearchStats()

    canon_cache: dict = {}

    def canon(state: QState):
        key = state.key()
        val = canon_cache.get(key)
        if val is None:
            val = canonical_key(state, shared.canon_level,
                                tie_cap=shared.tie_cap,
                                perm_cap=shared.perm_cap)
            canon_cache[key] = val
        return val

    h_cache: dict = {}

    def h_of(state: QState) -> float:
        key = state.key()
        val = h_cache.get(key)
        if val is None:
            val = heuristic(state)
            h_cache[key] = val
        return val

    # transposition[class] = highest bound under which the class was fully
    # explored from cost g (stored as bound - g remaining budget)
    transposition: dict = {}
    path_moves: list[Move] = []
    path_classes: list = []
    goal_state: QState | None = None

    def probe(state: QState, g: int, bound: float) -> float:
        """DFS below ``state``; returns the smallest f that exceeded the
        bound, or ``_FOUND`` when the ground class was reached."""
        nonlocal goal_state
        f = g + h_of(state)
        if f > bound:
            return f
        if num_entangled_qubits(state) == 0:
            goal_state = state
            return _FOUND
        stats.nodes_expanded += 1
        if stats.nodes_expanded > shared.max_nodes or stopwatch.expired():
            raise SearchBudgetExceeded(
                f"IDA* budget exhausted after {stats.nodes_expanded} "
                f"expansions", lower_bound=int(bound))
        remaining = bound - g
        ckey = canon(state)
        seen_budget = transposition.get(ckey)
        if seen_budget is not None and seen_budget >= remaining:
            return bound + 1.0  # already exhausted with at least this budget
        minimum = float("inf")
        for move, nxt in successors(
                state,
                max_merge_controls=shared.max_merge_controls,
                include_x_moves=shared.include_x_moves):
            stats.nodes_generated += 1
            nkey = canon(nxt)
            if nkey in path_classes:
                stats.nodes_pruned += 1
                continue
            path_moves.append(move)
            path_classes.append(nkey)
            result = probe(nxt, g + move.cost, bound)
            if result == _FOUND:
                return _FOUND
            path_moves.pop()
            path_classes.pop()
            minimum = min(minimum, result)
        if len(transposition) < config.transposition_cap:
            previous = transposition.get(ckey, -1.0)
            transposition[ckey] = max(previous, remaining)
        return minimum

    bound = h_of(target)
    start_class = canon(target)
    while True:
        path_moves.clear()
        path_classes.clear()
        path_classes.append(start_class)
        transposition.clear()
        outcome = probe(target, 0, bound)
        if outcome == _FOUND:
            assert goal_state is not None
            moves = list(path_moves)
            circuit = moves_to_circuit(moves, goal_state, target.num_qubits)
            stats.elapsed_seconds = stopwatch.elapsed()
            cost = sum(m.cost for m in moves)
            return SearchResult(circuit=circuit, cnot_cost=cost,
                                optimal=True, moves=moves, stats=stats)
        if outcome == float("inf"):
            raise SearchBudgetExceeded(
                "IDA* exhausted the move space without reaching ground "
                "(move set incomplete for this configuration)",
                lower_bound=int(bound))
        bound = outcome

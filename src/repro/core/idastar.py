"""Iterative-deepening A* over the state transition graph (extension).

IDA* trades the A* open list for repeated depth-first probes with an
increasing ``f``-bound.  It visits more nodes than A* but stores only the
current path, so it handles instances whose A* frontier would exhaust
memory — the regime the paper's Sec. VI-D scalability discussion worries
about.  With the same admissible heuristic it returns the same optimal
CNOT cost (asserted by the test suite on randomized instances).

The probe runs on the packed-array kernel (:mod:`repro.core.kernel`):
states are interned arrays, successors come from the vectorized
enumerator, and the path / transposition structures are keyed by the
64-bit canonical hash.  Canonicalization is used *along the current path*
(cycle avoidance) and in a bounded per-round transposition table (cleared
at each deepening, since entries record the remaining budget under which a
class was already exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QCircuit
from repro.core.astar import SearchConfig, SearchResult, SearchStats
from repro.core.heuristic import HeuristicFn, entanglement_heuristic
from repro.core.kernel import (
    BoundedCache,
    CanonContext,
    PackedState,
    StatePool,
    entanglement_h_packed,
    num_entangled_packed,
    successors_packed,
)
from repro.core.moves import Move, moves_to_circuit
from repro.exceptions import SearchBudgetExceeded
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["IDAStarConfig", "idastar_search"]

_FOUND = -1.0


@dataclass
class IDAStarConfig:
    """Tuning knobs of the iterative-deepening search.

    ``search`` carries the shared options (canonicalization level, move
    caps, budgets); ``transposition_cap`` bounds the optional memory of
    ``(class, depth-bound)`` entries that prunes re-probes across rounds.
    """

    search: SearchConfig = field(default_factory=SearchConfig)
    transposition_cap: int = 200_000


def idastar_search(target: QState, config: IDAStarConfig | None = None,
                   heuristic: HeuristicFn | None = None) -> SearchResult:
    """Minimum-CNOT synthesis by iterative deepening (optimal).

    Raises :class:`SearchBudgetExceeded` when ``max_nodes`` (total expansions
    across all rounds) or the time limit runs out.
    """
    config = config or IDAStarConfig()
    shared = config.search
    if heuristic is None:
        heuristic = entanglement_heuristic
    stopwatch = Stopwatch(shared.time_limit)
    stats = SearchStats()
    pool = StatePool()
    fast_h = heuristic is entanglement_heuristic

    canon_ctx = CanonContext(shared.canon_level, shared.tie_cap,
                             shared.perm_cap, shared.cache_cap)
    canon = canon_ctx.key
    h_cache = BoundedCache(shared.cache_cap)

    if fast_h:
        # already memoized on the interned state object — no cache layer
        h_of = entanglement_h_packed
    else:
        def h_of(ps: PackedState) -> float:
            val = h_cache.get(ps)
            if val is None:
                val = float(heuristic(ps.to_qstate()))
                h_cache.put(ps, val)
            return val

    def finish_stats() -> None:
        stats.elapsed_seconds = stopwatch.elapsed()
        stats.canon_cache_hits = canon_ctx.cache.hits
        stats.canon_cache_misses = canon_ctx.cache.misses
        stats.h_cache_hits = h_cache.hits
        stats.h_cache_misses = h_cache.misses

    # transposition[class] = largest remaining budget (bound - g) under
    # which the class was already fully explored without finding the goal
    transposition: dict = {}
    path_moves: list[Move] = []
    path_classes: list = []
    path_class_set: set = set()
    goal_state: PackedState | None = None

    def probe(state: PackedState, g: int, bound: float) -> float:
        """DFS below ``state``; returns the smallest f that exceeded the
        bound, or ``_FOUND`` when the ground class was reached."""
        nonlocal goal_state
        f = g + h_of(state)
        if f > bound:
            return f
        if num_entangled_packed(state) == 0:
            goal_state = state
            return _FOUND
        stats.nodes_expanded += 1
        if stats.nodes_expanded > shared.max_nodes or stopwatch.expired():
            finish_stats()
            raise SearchBudgetExceeded(
                f"IDA* budget exhausted after {stats.nodes_expanded} "
                f"expansions", lower_bound=int(bound), stats=stats)
        remaining = bound - g
        ckey = canon(state)
        seen_budget = transposition.get(ckey)
        if seen_budget is not None and seen_budget >= remaining:
            return bound + 1.0  # already exhausted with at least this budget
        minimum = float("inf")
        for move, nxt in successors_packed(
                pool, state,
                max_merge_controls=shared.max_merge_controls,
                include_x_moves=shared.include_x_moves):
            stats.nodes_generated += 1
            nkey = canon(nxt)
            if nkey in path_class_set:
                stats.nodes_pruned += 1
                continue
            path_moves.append(move)
            path_classes.append(nkey)
            path_class_set.add(nkey)
            result = probe(nxt, g + move.cost, bound)
            if result == _FOUND:
                return _FOUND
            path_moves.pop()
            path_class_set.discard(path_classes.pop())
            minimum = min(minimum, result)
        if len(transposition) < config.transposition_cap:
            previous = transposition.get(ckey, -1.0)
            transposition[ckey] = max(previous, remaining)
        return minimum

    start = pool.from_qstate(target)
    bound = h_of(start)
    start_class = canon(start)
    while True:
        path_moves.clear()
        path_classes.clear()
        path_class_set.clear()
        path_classes.append(start_class)
        path_class_set.add(start_class)
        transposition.clear()
        outcome = probe(start, 0, bound)
        if outcome == _FOUND:
            assert goal_state is not None
            moves = list(path_moves)
            circuit = moves_to_circuit(moves, goal_state.to_qstate(),
                                       target.num_qubits)
            finish_stats()
            cost = sum(m.cost for m in moves)
            return SearchResult(circuit=circuit, cnot_cost=cost,
                                optimal=True, moves=moves, stats=stats)
        if outcome == float("inf"):
            finish_stats()
            raise SearchBudgetExceeded(
                "IDA* exhausted the move space without reaching ground "
                "(move set incomplete for this configuration)",
                lower_bound=int(bound), stats=stats)
        bound = outcome

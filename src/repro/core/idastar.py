"""Iterative-deepening A* over the state transition graph (extension).

IDA* trades the A* open list for repeated depth-first probes with an
increasing ``f``-bound.  It visits more nodes than A* but stores only the
current path, so it handles instances whose A* frontier would exhaust
memory — the regime the paper's Sec. VI-D scalability discussion worries
about.  With the same admissible heuristic it returns the same optimal
CNOT cost (asserted by the test suite on randomized instances).

The probe runs on the packed-array kernel (:mod:`repro.core.kernel`):
states are interned arrays, successors come from the vectorized
enumerator, and the path / transposition structures are keyed by the
canonical class.  Canonicalization is used *along the current path*
(cycle avoidance) and in a transposition table of ``class -> max
remaining cost budget proven exhausted`` entries.

**Transposition soundness.**  Skipping a child because its class sits on
the DFS path (cycle avoidance) is sound for the probe itself, but it
makes the enclosing exhaustion claim *path-relative*: a later probe
reaching the class via a different prefix could be pruned away from the
goal.  The pre-fix code recorded such truncated subtrees as plain
exhaustion and compensated by clearing the table at every deepening
round — which was still unsound whenever two probes of the *same* round
reached a class via different prefixes
(``IDAStarConfig(record_truncated=True)`` retains that write rule solely
for the regression test that demonstrates the miss).

The fix records every exhausted subtree but tags it with the exact
*condition* its proof leaned on: the set of path classes strictly above
the node whose path pruning truncated exploration anywhere in the
subtree.  The probe threads this truncation set upward, dropping each
node's own class on the way — legitimate because class members share
their optimal remaining cost (free intra-class conversion), so a
minimum-cost goal path from a node can be chosen *class-acyclic* and in
particular never revisits the node's own class.  An empty set yields an
unconditional entry, reusable by any probe of any round — and, through
:class:`repro.core.memory.SearchMemory`, of any search, since every
search shares the ground class as its goal.  A non-empty set yields a
conditional entry reusable exactly by probes whose own path contains all
named classes (goals routed through one's own ancestors are redundant —
the same argument that makes path pruning admissible), which preserves
the aggressive intra-search pruning the old unsound table provided; see
:class:`repro.core.memory.TranspositionTable` for the reuse contract.
``stats.transposition_poisoned`` counts the records that the old rule
would have written unconditionally but are in fact path-dependent.

**Stepwise runtime.**  :class:`IDAStarRun` implements the probe as a
*recursive generator* (``yield from`` down the DFS, one ``yield`` per
expansion), so the run can be paused, resumed, and cancelled at any
expansion without touching the traversal order — the one-shot
:func:`idastar_search` drives a run to completion and is node-for-node
identical to the pre-refactor function.  An injected incumbent cost is
consumed at deepening-round boundaries: the next round's bound is capped
at ``incumbent - 1`` (with integer move costs any strictly better
solution fits under that bound), and once the proven lower bound reaches
the incumbent the run reports ``PROVEN`` instead of deepening further.
Round boundaries — never mid-round — keep every transposition record's
``remaining = bound - g`` claim exactly as proven.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.engine import (
    EngineContext,
    EngineRun,
    RunStatus,
    SearchConfig,
    SearchResult,
)
from repro.core.heuristic import HeuristicFn
from repro.core.kernel import (
    PackedState,
    num_entangled_packed,
    successors_packed,
)
from repro.core.memory import TranspositionTable
from repro.core.moves import Move, moves_to_circuit
from repro.core.pdb import entanglement_signature
from repro.exceptions import SearchBudgetExceeded
from repro.states.qstate import QState

__all__ = ["IDAStarConfig", "IDAStarRun", "idastar_search"]

_FOUND = -1.0


@dataclass
class IDAStarConfig:
    """Tuning knobs of the iterative-deepening search.

    ``search`` carries the shared options (canonicalization level, move
    caps, budgets); ``transposition_cap`` bounds the per-call table of
    ``(class -> exhausted remaining budget)`` entries (ignored when a
    persistent ``SearchMemory`` supplies its own table).
    ``record_truncated`` re-enables the pre-fix unsound write rule —
    recording exhaustion even for subtrees truncated by path pruning —
    and exists only so the regression tests can demonstrate the bug;
    never enable it otherwise.
    """

    search: SearchConfig = field(default_factory=SearchConfig)
    transposition_cap: int = 200_000
    record_truncated: bool = False
    #: Pattern-database root-bound tier (needs a ``SearchMemory`` with a
    #: ``pdb``; silently off otherwise).  ``"admissible"`` seeds the first
    #: deepening bound *and* the proven lower bound with the signature's
    #: structural bound — sound, so results are unchanged and rounds below
    #: it are skipped.  ``"learned"`` additionally seeds the *deepening
    #: bound only* with the class's observed evidence (cheapest solved
    #: member cost / strongest member exhaustion bound) — inadmissible, so
    #: the first found solution may be suboptimal; the run reports
    #: ``optimal`` only when the sound lower bound reaches the found cost.
    #: This is the service's ``fast`` mode; exact modes never use it.
    #: ``"off"`` ignores the PDB entirely.
    pdb_tier: str = "admissible"


def idastar_search(target: QState, config: IDAStarConfig | None = None,
                   heuristic: HeuristicFn | None = None,
                   memory=None) -> SearchResult:
    """Minimum-CNOT synthesis by iterative deepening (optimal).

    ``memory`` optionally plugs a process-lifetime
    :class:`repro.core.memory.SearchMemory`: the interning pool, canonical
    keys, heuristic values, *and* the transposition table then persist
    across calls (sound because entries are target-independent — see the
    module docstring), which makes repeated family searches dramatically
    warmer while provably returning the same optimal costs.

    This is the one-shot wrapper over :class:`IDAStarRun`.

    Raises :class:`SearchBudgetExceeded` when ``max_nodes`` (total expansions
    across all rounds) or the time limit runs out.
    """
    return IDAStarRun(target, config, heuristic=heuristic,
                      memory=memory).run_to_completion()


class IDAStarRun(EngineRun):
    """Stepwise IDA* (recursive-generator probe; see module docstring)."""

    engine = "idastar"

    def __init__(self, target: QState, config: IDAStarConfig | None = None,
                 heuristic: HeuristicFn | None = None, memory=None,
                 incumbent=None):
        config = config or IDAStarConfig()
        if config.pdb_tier not in ("off", "admissible", "learned"):
            raise ValueError(f"unknown pdb_tier {config.pdb_tier!r}")
        self.config = config
        shared = config.search
        ctx = EngineContext.from_search_config(target, shared,
                                               heuristic=heuristic,
                                               memory=memory)
        if memory is not None:
            self._transposition = memory.transposition
        else:
            self._transposition = TranspositionTable(
                config.transposition_cap)
        # Pattern-database root bounds (see ``IDAStarConfig.pdb_tier``):
        # the admissible one joins the *proven* lower bound, the hint only
        # seeds the deepening bound.  Computed once per run — the
        # signature is a property of the target, not of search state.
        self._pdb_admissible = 0
        self._pdb_hint = 0
        pdb = getattr(memory, "pdb", None)
        if pdb is not None and config.pdb_tier != "off":
            signature = entanglement_signature(target)
            self._pdb_admissible = pdb.admissible_bound(signature)
            self._pdb_hint = (pdb.learned_bound(signature)
                              if config.pdb_tier == "learned"
                              else self._pdb_admissible)
        super().__init__(ctx)
        if incumbent is not None:
            self.inject_incumbent(incumbent if isinstance(incumbent, int)
                                  else incumbent.cnot_cost)

    def _main(self):
        ctx = self._ctx
        shared = self.config.search
        stats = ctx.stats
        stopwatch = ctx.stopwatch
        canon = ctx.canon
        h_of = ctx.h_of
        transposition = self._transposition
        record_truncated = self.config.record_truncated
        profile = shared.profile
        phases = stats.phase_seconds
        if profile:
            phases.setdefault("enumeration", 0.0)
            phases.setdefault("canonicalization", 0.0)
            phases.setdefault("heuristic", 0.0)

        path_moves: list[Move] = []
        path_stack: list = []
        path_class_set: set = set()
        goal_state: list = [None]  # cell: the probe generator writes it
        _NO_TRUNC: frozenset = frozenset()
        proven_lb = 0

        def probe(state: PackedState, g: int, bound: float):
            """DFS below ``state``; a generator yielding once per
            expansion, returning ``(value, trunc)`` where ``value`` is
            the smallest f that exceeded the bound (or ``_FOUND``) and
            ``trunc`` is the set of path classes strictly above this node
            that truncated exploration anywhere in the subtree (empty
            when the exhaustion proof is path-independent — see module
            docstring)."""
            if profile:
                th = perf_counter()
                f = g + h_of(state)
                phases["heuristic"] += perf_counter() - th
            else:
                f = g + h_of(state)
            if f > bound:
                # f-pruning is path-independent: the admissible h proves
                # no goal within the bound through this node from *any*
                # prefix
                return f, _NO_TRUNC
            if num_entangled_packed(state) == 0:
                goal_state[0] = state
                return _FOUND, _NO_TRUNC
            stats.nodes_expanded += 1
            if stats.nodes_expanded > shared.max_nodes or \
                    stopwatch.expired():
                raise SearchBudgetExceeded(
                    f"IDA* budget exhausted after {stats.nodes_expanded} "
                    f"expansions", lower_bound=proven_lb, stats=stats)
            yield  # slice boundary: one yield per expansion
            remaining = bound - g
            if profile:
                tc = perf_counter()
                ckey = canon(state)
                phases["canonicalization"] += perf_counter() - tc
            else:
                ckey = canon(state)
            condition = transposition.lookup(ckey, remaining,
                                             path_class_set)
            if condition is not None:
                # the entry's condition is the truncation debt this prune
                # inherits (empty for an unconditional, hence universal,
                # claim)
                stats.transposition_hits += 1
                return bound + 1.0, condition
            minimum = float("inf")
            trunc: set | frozenset = _NO_TRUNC
            if profile:
                te = perf_counter()
                arcs = successors_packed(
                    ctx.pool, state,
                    max_merge_controls=shared.max_merge_controls,
                    include_x_moves=shared.include_x_moves,
                    topology=ctx.topology)
                phases["enumeration"] += perf_counter() - te
            else:
                arcs = successors_packed(
                    ctx.pool, state,
                    max_merge_controls=shared.max_merge_controls,
                    include_x_moves=shared.include_x_moves,
                    topology=ctx.topology)
            for move, nxt in arcs:
                stats.nodes_generated += 1
                if profile:
                    tc = perf_counter()
                    nkey = canon(nxt)
                    phases["canonicalization"] += perf_counter() - tc
                else:
                    nkey = canon(nxt)
                if nkey in path_class_set:
                    # cycle avoidance: sound for this probe, but it
                    # truncates the subtree relative to the path class it
                    # skipped
                    stats.nodes_pruned += 1
                    if nkey != ckey:  # own-class skips discharged here
                        if type(trunc) is frozenset:
                            trunc = set(trunc)
                        trunc.add(nkey)
                    continue
                path_moves.append(move)
                path_stack.append(nkey)
                path_class_set.add(nkey)
                result, child_trunc = yield from probe(nxt, g + move.cost,
                                                       bound)
                if result == _FOUND:
                    return _FOUND, _NO_TRUNC
                path_moves.pop()
                path_class_set.discard(path_stack.pop())
                if child_trunc:
                    # fold the child's truncation debt, discharging this
                    # node's own class (a class-acyclic witness from here
                    # never revisits it)
                    if type(trunc) is frozenset:
                        trunc = set(trunc)
                    trunc.update(child_trunc)
                    trunc.discard(ckey)
                if result < minimum:
                    minimum = result
            trunc_frozen = frozenset(trunc) if type(trunc) is not frozenset \
                else trunc
            if trunc_frozen and not record_truncated:
                stats.transposition_poisoned += 1
                transposition.record(ckey, remaining, trunc_frozen)
            else:
                # record_truncated reinstates the pre-fix bug: the
                # condition is dropped and the entry reads as
                # unconditional
                transposition.record(ckey, remaining, _NO_TRUNC)
            stats.transposition_writes += 1
            return minimum, trunc_frozen

        try:
            start = ctx.start
            h_root = h_of(start)
            # The deepening bound may start above h(start) via the PDB
            # hint; for the learned tier the hint is inadmissible, so the
            # proven lower bound below only folds in the admissible PDB
            # bound — exhausting an inflated round is still a sound
            # ``OPT > bound`` proof (the probe is complete under its
            # f-cap), only the bound's *starting point* is unproven.
            bound = max(h_root, float(self._pdb_hint))
            # Proven lower bound, maintained round-by-round: admissibility
            # proves ``OPT >= max(h(start), pdb)`` up front (A*'s ceil
            # convention — the old code truncated ``int(bound)``); each
            # fully exhausted round then proves ``OPT > bound``, i.e.
            # ``OPT >= floor(bound) + 1`` with integer move costs.  The
            # *next-round* bound itself is not used as a claim: a
            # transposition hit reports ``bound + 1.0``, which with
            # fractional heuristics may overstate the subtree's true
            # minimal exceeded f.
            proven_lb = int(math.ceil(
                max(h_root, float(self._pdb_admissible)) - 1e-9))
            start_class = canon(start)
            while True:
                if self._ub is not None:
                    # An injected incumbent cost bounds the deepening:
                    # once the proven lower bound reaches it, the
                    # incumbent holder's cost is optimal; otherwise any
                    # strictly better solution (integer costs) fits under
                    # ``incumbent - 1``, so the round's bound is capped
                    # there — every transposition record stays exactly as
                    # proven, because the cap applies at round start, not
                    # mid-probe.
                    if proven_lb >= self._ub:
                        self._finish(
                            RunStatus.PROVEN,
                            error=SearchBudgetExceeded(
                                f"incumbent bound {self._ub} proven "
                                f"optimal by iterative deepening",
                                lower_bound=self._ub, stats=stats))
                        return
                    bound = min(bound, self._ub - 1)
                path_moves.clear()
                path_stack.clear()
                path_class_set.clear()
                path_class_set.add(start_class)
                outcome, _ = yield from probe(start, 0, bound)
                if outcome == _FOUND:
                    assert goal_state[0] is not None
                    moves = list(path_moves)
                    circuit = moves_to_circuit(
                        moves, goal_state[0].to_qstate(),
                        ctx.target.num_qubits)
                    cost = sum(m.cost for m in moves)
                    # With admissible bounds only, the find round's bound
                    # never exceeds the proven lower bound's round, so
                    # ``cost <= proven_lb`` always holds and this is the
                    # old unconditional ``optimal=True``.  A learned
                    # (inadmissible) PDB hint can inflate the first round
                    # past optimal; then the flag honestly reports whether
                    # the sound bound certifies the found cost.
                    self._finish(RunStatus.SOLVED, result=SearchResult(
                        circuit=circuit, cnot_cost=cost,
                        optimal=cost <= proven_lb,
                        moves=moves, stats=stats))
                    return
                proven_lb = max(proven_lb, int(bound) + 1)
                if outcome == float("inf"):
                    if self._ub is not None:
                        # nothing under the capped bound: no solution
                        # strictly beats the incumbent
                        self._finish(
                            RunStatus.PROVEN,
                            error=SearchBudgetExceeded(
                                f"incumbent bound {self._ub} proven "
                                f"optimal by iterative deepening",
                                lower_bound=self._ub, stats=stats))
                        return
                    self._finish(
                        RunStatus.EXHAUSTED,
                        error=SearchBudgetExceeded(
                            "IDA* exhausted the move space without "
                            "reaching ground (move set incomplete for "
                            "this configuration)",
                            lower_bound=proven_lb, stats=stats))
                    return
                bound = outcome
        except SearchBudgetExceeded as exc:
            self._finish(RunStatus.EXHAUSTED, error=exc)
            return
        finally:
            ctx.finalize_stats()

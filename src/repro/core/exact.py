"""Public facade of the exact CNOT synthesis engine.

:class:`ExactSynthesizer` wraps the A* search (optimal within budget) with
an optional beam-search fallback (anytime, never fails), and verifies every
produced circuit by simulation when the register is small enough.

Example
-------
>>> from repro.states import dicke_state
>>> from repro.core import ExactSynthesizer
>>> result = ExactSynthesizer().synthesize(dicke_state(4, 2))
>>> result.cnot_cost <= 12  # manual design needs 12
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.astar import SearchConfig, SearchResult, astar_search
from repro.core.beam import BeamConfig, beam_search
from repro.exceptions import (
    MemoryCompatibilityError,
    SearchBudgetExceeded,
    SynthesisError,
)
from repro.states.qstate import QState

__all__ = ["ExactSynthesizer", "ExactConfig", "SearchResult"]

_VERIFY_MAX_QUBITS = 14


@dataclass
class ExactConfig:
    """Configuration of the synthesis facade.

    ``search`` configures the optimal A* engine; when it exhausts its
    budget and ``beam_fallback`` is set, the beam engine (configured by
    ``beam``) supplies a feasible, non-optimal circuit instead of failing.
    """

    search: SearchConfig = None  # type: ignore[assignment]
    beam: BeamConfig = None      # type: ignore[assignment]
    beam_fallback: bool = True
    verify: bool = True

    def __post_init__(self):
        if self.search is None:
            self.search = SearchConfig()
        if self.beam is None:
            self.beam = BeamConfig()


class ExactSynthesizer:
    """Minimum-CNOT state preparation via the shortest-path formulation."""

    def __init__(self, config: ExactConfig | None = None):
        self.config = config or ExactConfig()

    def synthesize(self, state: QState,
                   memory=None, topology=None) -> SearchResult:
        """Synthesize a preparation circuit for ``state``.

        Returns a :class:`~repro.core.astar.SearchResult`; ``optimal`` is
        true only when the A* search completed with an admissible heuristic.

        ``memory`` optionally plugs a process-lifetime
        :class:`~repro.core.memory.SearchMemory` into the underlying
        engines (the service layer threads its memory through here) —
        pure recomputation reuse, identical results.  The beam fallback
        only shares it when its config sits in the same regime; a
        mismatched beam config simply runs cold instead of failing the
        whole synthesis.

        ``topology`` overrides the configs' coupling map for this call:
        both the A* engine and the beam fallback then search the native
        move set, so every returned circuit decomposes onto coupled pairs
        only.  ``None`` keeps whatever the configs carry (their own
        ``topology`` fields, default unrestricted).
        """
        search_config = self.config.search
        beam_config = self.config.beam
        if topology is not None:
            search_config = replace(search_config, topology=topology)
            beam_config = replace(beam_config, topology=topology)
        try:
            result = astar_search(state, search_config, memory=memory)
        except SearchBudgetExceeded:
            if not self.config.beam_fallback:
                raise
            try:
                result = beam_search(state, beam_config, memory=memory)
            except MemoryCompatibilityError:
                result = beam_search(state, beam_config)
            result = replace(result, optimal=False)
        if self.config.verify and state.num_qubits <= _VERIFY_MAX_QUBITS:
            from repro.sim.verify import assert_prepares
            assert_prepares(result.circuit, state)
        return result

    def lower_bound(self, state: QState) -> int:
        """Cheap admissible lower bound on the optimal CNOT count."""
        from repro.core.heuristic import entanglement_heuristic
        return int(entanglement_heuristic(state))


def synthesize_exact(state: QState, max_nodes: int = 200_000,
                     time_limit: float | None = None,
                     beam_fallback: bool = True) -> SearchResult:
    """One-call convenience wrapper around :class:`ExactSynthesizer`."""
    cfg = ExactConfig(search=SearchConfig(max_nodes=max_nodes,
                                          time_limit=time_limit),
                      beam=BeamConfig(time_limit=time_limit),
                      beam_fallback=beam_fallback)
    return ExactSynthesizer(cfg).synthesize(state)

"""State compression by canonicalization (paper Sec. V-B).

Two states are equivalent when a zero-CNOT-cost transformation maps one to
the other:

* ``U(2)`` — free single-qubit gates.  In the real (X-Z plane) setting these
  are ``Ry`` rotations and ``X`` flips; their reachable index-set effects
  are (a) translating the index set by any XOR mask (``X`` flips) and
  (b) rotating a *separable* qubit onto ``|0>``.
* ``P`` — qubit permutation (wire relabeling; free because the ground state
  is symmetric — the paper's "symmetric coupling graph" assumption.  On a
  *restricted* coupling map that assumption fails and only the coupling
  graph's automorphisms remain free; the kernel's
  :class:`~repro.core.kernel.CanonContext` applies exactly that
  restriction when given a topology — this reference module always
  assumes the paper's all-to-all model).

:func:`canonical_key` maps every member of an equivalence class to (ideally)
one representative key.  The construction is *sound by design*: it only
applies genuinely free transformations, so two states that receive the same
key are always truly equivalent.  Where exhaustive minimization would be too
expensive (many tied qubits / large symmetric cells), it falls back to a
deterministic greedy choice — the key may then split a class into a few
representatives, which weakens pruning but never breaks optimality.

This module is the hot path of the A* search, so the internals work on raw
``(index, amplitude)`` tuples instead of :class:`QState` objects.
"""

from __future__ import annotations

import enum
import math
from itertools import islice, permutations

from repro.constants import DEFAULT_PERM_CAP, DEFAULT_TIE_CAP, quantize
from repro.states.qstate import QState, StateKey
from repro.utils.bits import permute_index

__all__ = ["CanonLevel", "pin_separable_qubits", "xflip_minimize",
           "canonicalize", "canonical_key"]


class CanonLevel(enum.Enum):
    """How aggressively states are identified.

    * ``NONE`` — no compression (``V_G``).
    * ``U2``   — free single-qubit gates (``V_G / U(2)``).
    * ``PU2``  — additionally qubit permutation (``V_G / P U(2)``).
    """

    NONE = 0
    U2 = 1
    PU2 = 2


Items = tuple[tuple[int, float], ...]


# ----------------------------------------------------------------------
# U(2): separable-qubit pinning
# ----------------------------------------------------------------------

def pin_separable_qubits(state: QState) -> QState:
    """Rotate every separable qubit onto ``|0>`` (a free ``Ry``/``X``).

    This is the paper's "filter out separable qubits": after pinning, the
    entangled core is all that distinguishes the state.  Iterates to a
    fixpoint since pinning one qubit can expose separability of another.
    """
    from repro.states.analysis import _cofactor_ratio

    current = state
    changed = True
    while changed:
        changed = False
        n = current.num_qubits
        for q in range(n):
            ratio = _cofactor_ratio(current, q)
            if ratio is None or ratio == 0.0:
                continue  # entangled, or already pinned at |0>
            if math.isinf(ratio):
                current = current.apply_x(q)
                changed = True
                continue
            scale = math.sqrt(1.0 + ratio * ratio)
            amps = {i0: a0 * scale
                    for i0, a0 in current.cofactor(q, 0).items()}
            current = QState(n, amps, normalize=False)
            changed = True
    return current


# ----------------------------------------------------------------------
# Raw-tuple helpers (hot path)
# ----------------------------------------------------------------------

def _raw_items(state: QState) -> Items:
    # state.key() caches the quantized, index-sorted entries.
    return state.key()[1]


def _flip_key(items: Items, mask: int) -> Items:
    return tuple(sorted((idx ^ mask, amp) for idx, amp in items))


def _sign_fix(items: Items) -> Items:
    """Global-phase normalization: first amplitude positive."""
    if items and items[0][1] < 0.0:
        return tuple((idx, quantize(-amp)) for idx, amp in items)
    return items


def _xflip_min_raw(items: Items, num_qubits: int, tie_cap: int) -> Items:
    """X-translate the index set to a canonical position.

    An X flip on qubit ``q`` XORs every index with the bit of ``q``; the
    reachable set under all flips is ``{indices ^ v}`` for any mask ``v``.
    We restrict candidate masks to those translating one of the
    maximum-magnitude-amplitude indices to the origin — a flip-covariant
    (hence sound) rule — and pick the lexicographically smallest key.
    ``tie_cap`` bounds how many candidate masks are tried (the heavy-index
    set is usually tiny; uniform states make it all of ``S``).
    """
    best_amp = max(abs(amp) for _, amp in items)
    masks = [idx for idx, amp in items if abs(amp) == best_amp]
    best: Items | None = None
    for mask in masks[:max(1, tie_cap)]:
        cand = _flip_key(items, mask)
        if best is None or cand < best:
            best = cand
    return best  # type: ignore[return-value]


def xflip_minimize(state: QState, tie_cap: int = DEFAULT_TIE_CAP) -> QState:
    """Public QState-level wrapper of the X-flip canonicalization."""
    items = _xflip_min_raw(_raw_items(state), state.num_qubits, tie_cap)
    return QState(state.num_qubits, dict(items), normalize=False)


# ----------------------------------------------------------------------
# Permutation
# ----------------------------------------------------------------------

def _qubit_signature(items: Items, num_qubits: int, q: int) -> tuple:
    """Permutation- and flip-invariant fingerprint of one qubit."""
    shift = num_qubits - 1 - q
    col = [(abs(amp), (idx >> shift) & 1) for idx, amp in items]
    direct = tuple(sorted(col))
    flipped = tuple(sorted((a, 1 - b) for a, b in col))
    return min(direct, flipped)


def _permute_items(items: Items, ordering: list[int], num_qubits: int
                   ) -> Items:
    return tuple(sorted((permute_index(idx, ordering, num_qubits), amp)
                        for idx, amp in items))


def _cell_symmetric(items: Items, cell: list[int], num_qubits: int) -> bool:
    """True when the state is invariant under every adjacent transposition
    of the cell's qubits (hence under its full symmetric group)."""
    base = tuple(sorted(items))
    for a, b in zip(cell, cell[1:]):
        ordering = list(range(num_qubits))
        ordering[a], ordering[b] = ordering[b], ordering[a]
        if _permute_items(items, ordering, num_qubits) != base:
            return False
    return True


def _pair_signature(items: Items, num_qubits: int, qa: int, qb: int) -> tuple:
    """Flip-invariant fingerprint of a qubit pair's joint columns.

    A count table over ``(|amp|, bit_a, bit_b)`` minimized over the four
    flip combinations — O(m) with tiny sorts (uniform states collapse to a
    handful of table entries).
    """
    sa = num_qubits - 1 - qa
    sb = num_qubits - 1 - qb
    table: dict[tuple[float, int, int], int] = {}
    for idx, amp in items:
        key = (abs(amp), (idx >> sa) & 1, (idx >> sb) & 1)
        table[key] = table.get(key, 0) + 1
    entries = list(table.items())
    variants = []
    for fa in (0, 1):
        for fb in (0, 1):
            variants.append(tuple(sorted(
                ((a, ba ^ fa, bb ^ fb), c) for (a, ba, bb), c in entries)))
    return min(variants)


def _permutation_candidates(items: Items, num_qubits: int,
                            perm_cap: int) -> list[list[int]]:
    """Candidate qubit orderings: qubits sorted by signature, with capped
    enumeration inside signature-tied cells (skipped entirely for cells the
    state is symmetric on — e.g. every qubit of a Dicke state)."""
    sigs: dict[int, tuple] = {
        q: _qubit_signature(items, num_qubits, q) for q in range(num_qubits)}
    cells: dict[tuple, list[int]] = {}
    for q in range(num_qubits):
        cells.setdefault(sigs[q], []).append(q)
    product = 1
    for cell in cells.values():
        for i in range(2, len(cell) + 1):
            product *= i
    if product > perm_cap and num_qubits > 2:
        # One round of pairwise refinement splits most accidental ties.
        pair_sigs = {
            q: tuple(sorted(_pair_signature(items, num_qubits, q, p)
                            for p in range(num_qubits) if p != q))
            for q in range(num_qubits)}
        sigs = {q: (sigs[q], pair_sigs[q]) for q in range(num_qubits)}
        cells = {}
        for q in range(num_qubits):
            cells.setdefault(sigs[q], []).append(q)
    ordered_cells = [cells[s] for s in sorted(cells)]

    per_cell_options: list[list[tuple[int, ...]]] = []
    total = 1
    for cell in ordered_cells:
        if len(cell) == 1 or _cell_symmetric(items, cell, num_qubits):
            per_cell_options.append([tuple(cell)])
            continue
        budget = max(1, perm_cap // total)
        options = list(islice(permutations(cell), budget))
        per_cell_options.append(options)
        total *= len(options)

    candidates: list[list[int]] = []

    def build(i: int, acc: list[int]) -> None:
        if len(candidates) >= perm_cap:
            return
        if i == len(per_cell_options):
            candidates.append(list(acc))
            return
        for option in per_cell_options[i]:
            build(i + 1, acc + list(option))
            if len(candidates) >= perm_cap:
                return

    build(0, [])
    return candidates


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

def _canonical_items(state: QState, level: CanonLevel, tie_cap: int,
                     perm_cap: int) -> tuple[int, Items]:
    if level is CanonLevel.NONE:
        return state.num_qubits, _raw_items(state)
    pinned = pin_separable_qubits(state)
    n = pinned.num_qubits
    items = _raw_items(pinned)
    if level is CanonLevel.U2:
        return n, _sign_fix(_xflip_min_raw(items, n, tie_cap))
    best: Items | None = None
    for ordering in _permutation_candidates(items, n, perm_cap):
        permuted = _permute_items(items, ordering, n)
        cand = _sign_fix(_xflip_min_raw(permuted, n, tie_cap))
        if best is None or cand < best:
            best = cand
    return n, best  # type: ignore[return-value]


def canonicalize(state: QState, level: CanonLevel = CanonLevel.PU2,
                 tie_cap: int = DEFAULT_TIE_CAP,
                 perm_cap: int = DEFAULT_PERM_CAP) -> QState:
    """Return a concrete canonical representative of the state's class."""
    n, items = _canonical_items(state, level, tie_cap, perm_cap)
    return QState(n, dict(items), normalize=False)


def canonical_key(state: QState, level: CanonLevel = CanonLevel.PU2,
                  tie_cap: int = DEFAULT_TIE_CAP,
                  perm_cap: int = DEFAULT_PERM_CAP) -> StateKey:
    """Hashable key of the state's equivalence class (see module doc)."""
    return _canonical_items(state, level, tie_cap, perm_cap)

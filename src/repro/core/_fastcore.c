/* _fastcore: native hot-loop kernels for repro.core.kernel.
 *
 * Every function is a bit-for-bit twin of a Python/NumPy reference in
 * core/kernel.py; the Python code stays the behavioral reference and the
 * property tests in tests/test_fastcore.py assert identity on random
 * packed states.  Three rules keep the float paths identical:
 *
 *   1. Compile with -ffp-contract=off: expressions like c*a0 - s*a1 must
 *      not be FMA-fused, or results drift from the NumPy evaluation.
 *   2. np.round(x, 10) is rint(x * 1e10) / 1e10 (division, not multiply
 *      by reciprocal - the reciprocal form differs on ~1 in 6 values).
 *   3. All float expressions copy the reference's operation order and
 *      association exactly.
 *
 * Integer hashing is all mod-2^64 arithmetic on uint64_t, which matches
 * the NumPy uint64 wraparound and the Python "& _U64" masking by
 * construction.  Splitmix constants come from _splitmix.h (shared with
 * repro/core/splitmix.py; repro.core.fastcore cross-checks at load).
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <stdint.h>
#include <string.h>
#include "_splitmix.h"

/* ------------------------------------------------------------------ */
/* splitmix64 lanes                                                    */
/* ------------------------------------------------------------------ */

static inline uint64_t
mix_a(uint64_t z)
{
    z += SM_GOLDEN;
    z = (z ^ (z >> 30)) * SM_A1;
    z = (z ^ (z >> 27)) * SM_A2;
    return z ^ (z >> 31);
}

static inline uint64_t
mix_b(uint64_t z)
{
    z += SM_GOLDEN;
    z = (z ^ (z >> 30)) * SM_B1;
    z = (z ^ (z >> 27)) * SM_B2;
    return z ^ (z >> 31);
}

static inline uint64_t
dbl_bits(double d)
{
    uint64_t u;
    memcpy(&u, &d, sizeof(u));
    return u;
}

#define SIGNBIT64 0x8000000000000000ULL

/* ------------------------------------------------------------------ */
/* small helpers                                                       */
/* ------------------------------------------------------------------ */

static int
get_buf(PyObject *obj, Py_buffer *view, int writable)
{
    int flags = PyBUF_C_CONTIGUOUS | (writable ? PyBUF_WRITABLE : 0);
    return PyObject_GetBuffer(obj, view, flags);
}

static int64_t *
list_to_i64(PyObject *lst, Py_ssize_t *len_out)
{
    Py_ssize_t i, count;
    int64_t *arr;
    if (!PyList_Check(lst)) {
        PyErr_SetString(PyExc_TypeError, "expected a list of ints");
        return NULL;
    }
    count = PyList_GET_SIZE(lst);
    arr = PyMem_Malloc((size_t)(count ? count : 1) * sizeof(int64_t));
    if (arr == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    for (i = 0; i < count; i++) {
        arr[i] = (int64_t)PyLong_AsLongLong(PyList_GET_ITEM(lst, i));
        if (arr[i] == -1 && PyErr_Occurred()) {
            PyMem_Free(arr);
            return NULL;
        }
    }
    *len_out = count;
    return arr;
}

static double *
list_to_f64(PyObject *lst, Py_ssize_t *len_out)
{
    Py_ssize_t i, count;
    double *arr;
    if (!PyList_Check(lst)) {
        PyErr_SetString(PyExc_TypeError, "expected a list of floats");
        return NULL;
    }
    count = PyList_GET_SIZE(lst);
    arr = PyMem_Malloc((size_t)(count ? count : 1) * sizeof(double));
    if (arr == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    for (i = 0; i < count; i++) {
        arr[i] = PyFloat_AsDouble(PyList_GET_ITEM(lst, i));
        if (arr[i] == -1.0 && PyErr_Occurred()) {
            PyMem_Free(arr);
            return NULL;
        }
    }
    *len_out = count;
    return arr;
}

/* Serialized state payload: n (2 bytes LE) + idx bytes + qamp bytes. */
static PyObject *
build_payload(int n, const int64_t *idx, const double *qamp, Py_ssize_t m)
{
    PyObject *bytes = PyBytes_FromStringAndSize(NULL, 2 + 16 * m);
    char *p;
    if (bytes == NULL)
        return NULL;
    p = PyBytes_AS_STRING(bytes);
    p[0] = (char)(n & 0xff);
    p[1] = (char)((n >> 8) & 0xff);
    memcpy(p + 2, idx, (size_t)m * 8);
    memcpy(p + 2 + 8 * m, qamp, (size_t)m * 8);
    return bytes;
}

typedef struct {
    int64_t v;
    double a;
} ia_pair;

static int
cmp_ia_pair(const void *pa, const void *pb)
{
    int64_t a = ((const ia_pair *)pa)->v;
    int64_t b = ((const ia_pair *)pb)->v;
    return (a > b) - (a < b);
}

typedef struct {
    int64_t v;
    int64_t j;
} ij_pair;

static int
cmp_ij_pair(const void *pa, const void *pb)
{
    int64_t a = ((const ij_pair *)pa)->v;
    int64_t b = ((const ij_pair *)pb)->v;
    return (a > b) - (a < b);
}

/* ------------------------------------------------------------------ */
/* splitmix_constants() - runtime anti-drift check                     */
/* ------------------------------------------------------------------ */

static PyObject *
fc_splitmix_constants(PyObject *self, PyObject *noargs)
{
    PyObject *d = PyDict_New();
    if (d == NULL)
        return NULL;
#define ADD_CONST(NAME, VALUE) \
    do { \
        PyObject *v = PyLong_FromUnsignedLongLong(VALUE); \
        if (v == NULL || PyDict_SetItemString(d, NAME, v) < 0) { \
            Py_XDECREF(v); \
            Py_DECREF(d); \
            return NULL; \
        } \
        Py_DECREF(v); \
    } while (0)
    ADD_CONST("GOLDEN", SM_GOLDEN);
    ADD_CONST("A1", SM_A1);
    ADD_CONST("A2", SM_A2);
    ADD_CONST("B1", SM_B1);
    ADD_CONST("B2", SM_B2);
    ADD_CONST("ORBIT_MUL", SM_ORBIT_MUL);
#undef ADD_CONST
    return d;
}

/* ------------------------------------------------------------------ */
/* quantize(src, dst, scale): np.round(x, d) with -0.0 -> 0.0          */
/* ------------------------------------------------------------------ */

static PyObject *
fc_quantize(PyObject *self, PyObject *args)
{
    PyObject *src_o, *dst_o;
    double scale;
    Py_buffer src, dst;
    Py_ssize_t i, m;
    const double *in;
    double *out;

    if (!PyArg_ParseTuple(args, "OOd", &src_o, &dst_o, &scale))
        return NULL;
    if (get_buf(src_o, &src, 0) < 0)
        return NULL;
    if (get_buf(dst_o, &dst, 1) < 0) {
        PyBuffer_Release(&src);
        return NULL;
    }
    if (dst.len != src.len) {
        PyBuffer_Release(&src);
        PyBuffer_Release(&dst);
        PyErr_SetString(PyExc_ValueError, "quantize: length mismatch");
        return NULL;
    }
    m = src.len / (Py_ssize_t)sizeof(double);
    in = (const double *)src.buf;
    out = (double *)dst.buf;
    for (i = 0; i < m; i++) {
        double q = rint(in[i] * scale) / scale;
        if (q == 0.0)
            q = 0.0;  /* normalize -0.0 */
        out[i] = q;
    }
    PyBuffer_Release(&src);
    PyBuffer_Release(&dst);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* payload(n, idx, qamp) -> bytes                                      */
/* ------------------------------------------------------------------ */

static PyObject *
fc_payload(PyObject *self, PyObject *args)
{
    int n;
    PyObject *idx_o, *qamp_o, *res;
    Py_buffer idx_b, qamp_b;

    if (!PyArg_ParseTuple(args, "iOO", &n, &idx_o, &qamp_o))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(qamp_o, &qamp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    res = build_payload(n, (const int64_t *)idx_b.buf,
                        (const double *)qamp_b.buf, idx_b.len / 8);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&qamp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* column_counts(n, idx) -> list[int]                                  */
/* ------------------------------------------------------------------ */

static PyObject *
fc_column_counts(PyObject *self, PyObject *args)
{
    int n, q;
    PyObject *idx_o, *res;
    Py_buffer idx_b;
    Py_ssize_t j, m;
    const int64_t *idx;

    if (!PyArg_ParseTuple(args, "iO", &n, &idx_o))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    res = PyList_New(n);
    if (res == NULL) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    for (q = 0; q < n; q++) {
        int shift = n - 1 - q;
        int64_t ones = 0;
        for (j = 0; j < m; j++)
            ones += (idx[j] >> shift) & 1;
        PyObject *v = PyLong_FromLongLong(ones);
        if (v == NULL) {
            Py_DECREF(res);
            PyBuffer_Release(&idx_b);
            return NULL;
        }
        PyList_SET_ITEM(res, q, v);
    }
    PyBuffer_Release(&idx_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* cofactor proportionality (twin of kernel._ratio_balanced)           */
/* ------------------------------------------------------------------ */

/* scratch must hold 2*m int64 + 2*m double; returns 1 and sets *ratio
 * when the qubit at `shift` is balanced-separable, else 0. */
static int
ratio_balanced(const int64_t *idx, const double *amp, Py_ssize_t m,
               int shift, int64_t *scratch_i, double *scratch_a,
               double *ratio_out)
{
    int64_t bit = (int64_t)1 << shift;
    int64_t *i0 = scratch_i, *i1 = scratch_i + m;
    double *a0 = scratch_a, *a1 = scratch_a + m;
    Py_ssize_t j, c0 = 0, c1 = 0, t;
    double ref, tol, aref;

    for (j = 0; j < m; j++) {
        if (idx[j] & bit) {
            i1[c1] = idx[j] ^ bit;
            a1[c1++] = amp[j];
        }
        else {
            i0[c0] = idx[j];
            a0[c0++] = amp[j];
        }
    }
    if (c0 != c1)
        return 0;
    for (j = 0; j < c0; j++)
        if (i0[j] != i1[j])
            return 0;
    ref = a1[0] / a0[0];
    aref = fabs(ref);
    tol = 1e-8 * (aref > 1.0 ? aref : 1.0);
    for (t = 0; t < c0; t++) {
        if (fabs(a1[t] / a0[t] - ref) > tol)
            return 0;
    }
    *ratio_out = ref;
    return 1;
}

/* entangled_qubits(n, idx, amp) -> tuple[int, ...] */
static PyObject *
fc_entangled_qubits(PyObject *self, PyObject *args)
{
    int n, q;
    PyObject *idx_o, *amp_o, *res = NULL;
    Py_buffer idx_b, amp_b;
    Py_ssize_t j, m, count = 0;
    const int64_t *idx;
    const double *amp;
    int64_t *scratch_i = NULL;
    double *scratch_a = NULL, ratio;
    int *ent = NULL;

    if (!PyArg_ParseTuple(args, "iOO", &n, &idx_o, &amp_o))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(amp_o, &amp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    amp = (const double *)amp_b.buf;
    scratch_i = PyMem_Malloc((size_t)(2 * m + 1) * sizeof(int64_t));
    scratch_a = PyMem_Malloc((size_t)(2 * m + 1) * sizeof(double));
    ent = PyMem_Malloc((size_t)(n ? n : 1) * sizeof(int));
    if (scratch_i == NULL || scratch_a == NULL || ent == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (q = 0; q < n; q++) {
        int shift = n - 1 - q;
        int64_t ones = 0;
        for (j = 0; j < m; j++)
            ones += (idx[j] >> shift) & 1;
        if (ones == 0 || ones == m)
            continue;  /* pinned at |0> / |1>: separable */
        if (2 * ones != m ||
                !ratio_balanced(idx, amp, m, shift, scratch_i, scratch_a,
                                &ratio))
            ent[count++] = q;
    }
    res = PyTuple_New(count);
    if (res != NULL) {
        for (j = 0; j < count; j++) {
            PyObject *v = PyLong_FromLong(ent[j]);
            if (v == NULL) {
                Py_CLEAR(res);
                break;
            }
            PyTuple_SET_ITEM(res, j, v);
        }
    }
done:
    PyMem_Free(scratch_i);
    PyMem_Free(scratch_a);
    PyMem_Free(ent);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&amp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* pin_separable(n, idx, amp, counts) -> None | (idx_bytes, amp_bytes) */
/* ------------------------------------------------------------------ */

static PyObject *
fc_pin_separable(PyObject *self, PyObject *args)
{
    int n, q, changed, pinned = 0, have_counts = 1;
    PyObject *idx_o, *amp_o, *counts_o, *res = NULL;
    Py_buffer idx_b, amp_b;
    Py_ssize_t j, m;
    int64_t *idx = NULL, *counts = NULL, *scratch_i = NULL;
    double *amp = NULL, *scratch_a = NULL, ratio;
    ia_pair *pairs = NULL;

    if (!PyArg_ParseTuple(args, "iOOO", &n, &idx_o, &amp_o, &counts_o))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(amp_o, &amp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    {
        Py_ssize_t clen;
        counts = list_to_i64(counts_o, &clen);
        if (counts == NULL || clen != n) {
            if (counts != NULL)
                PyErr_SetString(PyExc_ValueError, "counts length mismatch");
            goto done;
        }
    }
    idx = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(int64_t));
    amp = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(double));
    scratch_i = PyMem_Malloc((size_t)(2 * m + 1) * sizeof(int64_t));
    scratch_a = PyMem_Malloc((size_t)(2 * m + 1) * sizeof(double));
    pairs = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(ia_pair));
    if (idx == NULL || amp == NULL || scratch_i == NULL ||
            scratch_a == NULL || pairs == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    memcpy(idx, idx_b.buf, (size_t)m * 8);
    memcpy(amp, amp_b.buf, (size_t)m * 8);

    changed = 1;
    while (changed) {
        changed = 0;
        for (q = 0; q < n; q++) {
            int shift = n - 1 - q;
            int64_t bit = (int64_t)1 << shift;
            int64_t ones;
            if (have_counts) {
                ones = counts[q];
            }
            else {
                ones = 0;
                for (j = 0; j < m; j++)
                    ones += (idx[j] >> shift) & 1;
            }
            if (ones == 0)
                continue;  /* already pinned at |0> */
            if (ones == m) {
                for (j = 0; j < m; j++) {
                    pairs[j].v = idx[j] ^ bit;
                    pairs[j].a = amp[j];
                }
                qsort(pairs, (size_t)m, sizeof(ia_pair), cmp_ia_pair);
                for (j = 0; j < m; j++) {
                    idx[j] = pairs[j].v;
                    amp[j] = pairs[j].a;
                }
                changed = pinned = 1;
                have_counts = 0;  /* stale after any change */
                continue;
            }
            if (2 * ones != m)
                continue;  /* entangled */
            if (!ratio_balanced(idx, amp, m, shift, scratch_i, scratch_a,
                                &ratio))
                continue;  /* entangled */
            {
                double scale = sqrt(1.0 + ratio * ratio);
                Py_ssize_t keep = 0;
                for (j = 0; j < m; j++) {
                    if (!((idx[j] >> shift) & 1)) {
                        idx[keep] = idx[j];
                        amp[keep++] = amp[j] * scale;
                    }
                }
                m = keep;
            }
            changed = pinned = 1;
            have_counts = 0;
        }
    }
    if (!pinned) {
        res = Py_None;
        Py_INCREF(res);
    }
    else {
        PyObject *ib = PyBytes_FromStringAndSize((char *)idx,
                                                 (Py_ssize_t)m * 8);
        PyObject *ab = PyBytes_FromStringAndSize((char *)amp,
                                                 (Py_ssize_t)m * 8);
        if (ib == NULL || ab == NULL) {
            Py_XDECREF(ib);
            Py_XDECREF(ab);
            goto done;
        }
        res = PyTuple_Pack(2, ib, ab);
        Py_DECREF(ib);
        Py_DECREF(ab);
    }
done:
    PyMem_Free(idx);
    PyMem_Free(amp);
    PyMem_Free(counts);
    PyMem_Free(scratch_i);
    PyMem_Free(scratch_a);
    PyMem_Free(pairs);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&amp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* orbit_hash(rows_2d_u64, heavy_pos_i64, qamp_f64) -> 128-bit int     */
/* ------------------------------------------------------------------ */

/* Shared accumulation core: rows (K x m permuted index sets), heavy
 * positions, quantized amplitudes -> new 128-bit PyLong (NULL on error).
 */
static PyObject *
orbit_hash_core(const uint64_t *rows, Py_ssize_t K, Py_ssize_t m,
                const int64_t *hp, Py_ssize_t H, const double *qamp)
{
    PyObject *res = NULL;
    Py_ssize_t j, k, h, d, ndistinct = 0;
    uint64_t *fbp = NULL, *accs = NULL, *dist = NULL;
    Py_ssize_t *kept = NULL;
    unsigned char *neg = NULL;
    uint64_t total_a = 0, total_b = 0;

    fbp = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(uint64_t));
    accs = PyMem_Malloc((size_t)(2 * K + 1) * sizeof(uint64_t));
    dist = PyMem_Malloc((size_t)(2 * K + 1) * sizeof(uint64_t));
    kept = PyMem_Malloc((size_t)(H ? H : 1) * sizeof(Py_ssize_t));
    neg = PyMem_Malloc((size_t)(H ? H : 1));
    if (fbp == NULL || accs == NULL || dist == NULL || kept == NULL ||
            neg == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (j = 0; j < m; j++)
        fbp[j] = dbl_bits(qamp[j]);
    for (h = 0; h < H; h++)
        neg[h] = qamp[hp[h]] < 0.0;

    for (k = 0; k < K; k++) {
        const uint64_t *row = rows + k * m;
        Py_ssize_t nkept;
        uint64_t acc_a = 0, acc_b = 0;
        if (m > 1) {
            /* covariant mask prefilter: keep translations minimizing the
             * second-smallest translated index (ties all kept) */
            uint64_t best_second = UINT64_MAX;
            int have_best = 0;
            nkept = 0;
            for (h = 0; h < H; h++) {
                uint64_t mask = row[hp[h]];
                uint64_t lo = UINT64_MAX, hi = UINT64_MAX;
                for (j = 0; j < m; j++) {
                    uint64_t t = row[j] ^ mask;
                    if (t < lo) {
                        hi = lo;
                        lo = t;
                    }
                    else if (t < hi) {
                        hi = t;
                    }
                }
                if (!have_best || hi < best_second) {
                    have_best = 1;
                    best_second = hi;
                    kept[0] = h;
                    nkept = 1;
                }
                else if (hi == best_second) {
                    kept[nkept++] = h;
                }
            }
        }
        else {
            nkept = H;
            for (h = 0; h < H; h++)
                kept[h] = h;
        }
        for (d = 0; d < nkept; d++) {
            h = kept[d];
            {
                uint64_t mask = row[hp[h]];
                uint64_t fb_xor = neg[h] ? SIGNBIT64 : 0;
                uint64_t cand_a = 0, cand_b = 0;
                for (j = 0; j < m; j++) {
                    uint64_t z = ((row[j] ^ mask) * SM_ORBIT_MUL)
                                 ^ (fbp[j] ^ fb_xor);
                    uint64_t a = mix_a(z);
                    cand_a += a;
                    cand_b += mix_b(a);
                }
                /* finalize per candidate so sums do not telescope across
                 * the candidate grouping */
                acc_a += mix_a(cand_a);
                acc_b += mix_b(cand_b);
            }
        }
        accs[2 * k] = acc_a;
        accs[2 * k + 1] = acc_b;
    }
    /* distinct (acc_a, acc_b) pairs across orderings */
    for (k = 0; k < K; k++) {
        int fresh = 1;
        for (d = 0; d < ndistinct; d++) {
            if (dist[2 * d] == accs[2 * k] &&
                    dist[2 * d + 1] == accs[2 * k + 1]) {
                fresh = 0;
                break;
            }
        }
        if (fresh) {
            dist[2 * ndistinct] = accs[2 * k];
            dist[2 * ndistinct + 1] = accs[2 * k + 1];
            ndistinct++;
        }
    }
    for (d = 0; d < ndistinct; d++) {
        /* finalize per ordering for the same reason, one level up */
        total_a += mix_a(dist[2 * d]);
        total_b += mix_b(dist[2 * d + 1]);
    }
    {
        PyObject *pa = PyLong_FromUnsignedLongLong(total_a);
        PyObject *pb = PyLong_FromUnsignedLongLong(total_b);
        PyObject *sh = PyLong_FromLong(64);
        PyObject *shifted = NULL;
        if (pa != NULL && pb != NULL && sh != NULL)
            shifted = PyNumber_Lshift(pa, sh);
        if (shifted != NULL)
            res = PyNumber_Or(shifted, pb);
        Py_XDECREF(pa);
        Py_XDECREF(pb);
        Py_XDECREF(sh);
        Py_XDECREF(shifted);
    }
done:
    PyMem_Free(fbp);
    PyMem_Free(accs);
    PyMem_Free(dist);
    PyMem_Free(kept);
    PyMem_Free(neg);
    return res;
}

static PyObject *
fc_orbit_hash(PyObject *self, PyObject *args)
{
    PyObject *rows_o, *hp_o, *qamp_o, *res = NULL;
    Py_buffer rows_b, hp_b, qamp_b;

    if (!PyArg_ParseTuple(args, "OOO", &rows_o, &hp_o, &qamp_o))
        return NULL;
    if (get_buf(rows_o, &rows_b, 0) < 0)
        return NULL;
    if (get_buf(hp_o, &hp_b, 0) < 0) {
        PyBuffer_Release(&rows_b);
        return NULL;
    }
    if (get_buf(qamp_o, &qamp_b, 0) < 0) {
        PyBuffer_Release(&rows_b);
        PyBuffer_Release(&hp_b);
        return NULL;
    }
    if (rows_b.ndim != 2) {
        PyErr_SetString(PyExc_ValueError, "orbit_hash: rows must be 2-D");
    }
    else {
        res = orbit_hash_core((const uint64_t *)rows_b.buf,
                              rows_b.shape[0], rows_b.shape[1],
                              (const int64_t *)hp_b.buf, hp_b.len / 8,
                              (const double *)qamp_b.buf);
    }
    PyBuffer_Release(&rows_b);
    PyBuffer_Release(&hp_b);
    PyBuffer_Release(&qamp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* orbit_hash_state(n, idx, qamp, tie_cap, orderings|None)             */
/*   -> (128-bit int, num_heavy)                                       */
/* ------------------------------------------------------------------ */

/* Full-native twin of CanonContext's hash preparation: heavy positions
 * are the ascending indices of max |qamp| capped at max(1, tie_cap)
 * (exact float comparisons, so identical to the NumPy
 * flatnonzero(absamp == absamp.max()) selection), and each ordering's
 * rows are the bit-permuted indices (pure integer bit scatter, matching
 * the einsum over the bit matrix).  orderings=None means the identity
 * ordering only, where the index buffer itself is the single row.
 */
static PyObject *
fc_orbit_hash_state(PyObject *self, PyObject *args)
{
    int n, i;
    long tie_cap;
    PyObject *idx_o, *qamp_o, *ord_o, *res = NULL, *hash_o = NULL;
    PyObject *outer = NULL;
    Py_buffer idx_b, qamp_b;
    Py_ssize_t m, j, k, H = 0, cap, K = 1;
    const int64_t *idx;
    const double *qamp;
    int64_t *hp = NULL;
    uint64_t *rows = NULL;
    const uint64_t *rows_ptr = NULL;
    int src_shift[64];
    double absmax = 0.0;

    if (!PyArg_ParseTuple(args, "iOOlO", &n, &idx_o, &qamp_o, &tie_cap,
                          &ord_o))
        return NULL;
    if (n < 0 || n > 64) {
        PyErr_SetString(PyExc_ValueError, "orbit_hash_state: bad n");
        return NULL;
    }
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(qamp_o, &qamp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    qamp = (const double *)qamp_b.buf;

    for (j = 0; j < m; j++) {
        double a = fabs(qamp[j]);
        if (a > absmax)
            absmax = a;
    }
    cap = tie_cap > 1 ? (Py_ssize_t)tie_cap : 1;
    hp = PyMem_Malloc((size_t)cap * sizeof(int64_t));
    if (hp == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (j = 0; j < m && H < cap; j++)
        if (fabs(qamp[j]) == absmax)
            hp[H++] = (int64_t)j;

    if (ord_o == Py_None) {
        rows_ptr = (const uint64_t *)idx;  /* identity: rows == idx */
    }
    else {
        outer = PySequence_Fast(ord_o, "orderings must be a sequence");
        if (outer == NULL)
            goto done;
        K = PySequence_Fast_GET_SIZE(outer);
        if (K < 1) {
            PyErr_SetString(PyExc_ValueError,
                            "orbit_hash_state: empty orderings");
            goto done;
        }
        rows = PyMem_Malloc((size_t)(K * m > 0 ? K * m : 1)
                            * sizeof(uint64_t));
        if (rows == NULL) {
            PyErr_NoMemory();
            goto done;
        }
        for (k = 0; k < K; k++) {
            PyObject *perm = PySequence_Fast(
                PySequence_Fast_GET_ITEM(outer, k),
                "ordering must be a sequence");
            uint64_t *out = rows + k * m;
            if (perm == NULL)
                goto done;
            if (PySequence_Fast_GET_SIZE(perm) != n) {
                Py_DECREF(perm);
                PyErr_SetString(PyExc_ValueError,
                                "orbit_hash_state: ordering length != n");
                goto done;
            }
            for (i = 0; i < n; i++) {
                long q = PyLong_AsLong(PySequence_Fast_GET_ITEM(perm, i));
                if ((q == -1 && PyErr_Occurred()) || q < 0 || q >= n) {
                    Py_DECREF(perm);
                    if (!PyErr_Occurred())
                        PyErr_SetString(
                            PyExc_ValueError,
                            "orbit_hash_state: ordering entry out of range");
                    goto done;
                }
                src_shift[i] = n - 1 - (int)q;
            }
            Py_DECREF(perm);
            /* row[j] = sum_i bits[perm[i], j] << (n-1-i): the permuted
             * index value of element j under this qubit ordering */
            for (j = 0; j < m; j++) {
                uint64_t v = 0;
                uint64_t x = (uint64_t)idx[j];
                for (i = 0; i < n; i++)
                    v |= ((x >> src_shift[i]) & 1)
                         << (uint64_t)(n - 1 - i);
                out[j] = v;
            }
        }
        rows_ptr = rows;
    }
    hash_o = orbit_hash_core(rows_ptr, K, m, hp, H, qamp);
    if (hash_o != NULL) {
        PyObject *nh = PyLong_FromSsize_t(H);
        if (nh != NULL)
            res = PyTuple_New(2);
        if (res != NULL) {
            PyTuple_SET_ITEM(res, 0, hash_o);
            PyTuple_SET_ITEM(res, 1, nh);
        }
        else {
            Py_DECREF(hash_o);
            Py_XDECREF(nh);
        }
    }
done:
    Py_XDECREF(outer);
    PyMem_Free(hp);
    PyMem_Free(rows);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&qamp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* sig_tags(n, idx, absamp) -> list[int]                               */
/* ------------------------------------------------------------------ */

static PyObject *
fc_sig_tags(PyObject *self, PyObject *args)
{
    int n, q;
    PyObject *idx_o, *absamp_o, *res = NULL;
    Py_buffer idx_b, absamp_b;
    Py_ssize_t j, m;
    const int64_t *idx;
    const double *absamp;
    uint64_t *mixed = NULL;
    uint64_t total = 0;

    if (!PyArg_ParseTuple(args, "iOO", &n, &idx_o, &absamp_o))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(absamp_o, &absamp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    absamp = (const double *)absamp_b.buf;
    mixed = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(uint64_t));
    if (mixed == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (j = 0; j < m; j++) {
        mixed[j] = mix_a(dbl_bits(absamp[j]));
        total += mixed[j];
    }
    res = PyList_New(n);
    if (res == NULL)
        goto done;
    for (q = 0; q < n; q++) {
        int shift = n - 1 - q;
        uint64_t colsum = 0, flip, tag;
        for (j = 0; j < m; j++) {
            if ((idx[j] >> shift) & 1)
                colsum += mixed[j];
        }
        flip = total - colsum;
        tag = colsum < flip ? colsum : flip;
        {
            PyObject *v = PyLong_FromUnsignedLongLong(tag);
            if (v == NULL) {
                Py_CLEAR(res);
                goto done;
            }
            PyList_SET_ITEM(res, q, v);
        }
    }
done:
    PyMem_Free(mixed);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&absamp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* wl_pair_ids(n, idx, ranks) -> list[list[int]]                       */
/* ------------------------------------------------------------------ */

static PyObject *
fc_wl_pair_ids(PyObject *self, PyObject *args)
{
    int n, q, p, w, flip;
    PyObject *idx_o, *ranks_o, *res = NULL;
    Py_buffer idx_b, ranks_b;
    Py_ssize_t j, m;
    const int64_t *idx, *ranks;
    int64_t maxrank = 0, width;
    int64_t *table = NULL, *bestbuf = NULL;
    unsigned char *bits = NULL;

    if (!PyArg_ParseTuple(args, "iOO", &n, &idx_o, &ranks_o))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(ranks_o, &ranks_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    ranks = (const int64_t *)ranks_b.buf;
    for (j = 0; j < m; j++)
        if (ranks[j] > maxrank)
            maxrank = ranks[j];
    width = 4 * (maxrank + 1);

    bits = PyMem_Malloc((size_t)(n * m + 1));
    table = PyMem_Calloc((size_t)(n * n * width + 1), sizeof(int64_t));
    bestbuf = PyMem_Malloc((size_t)(width + 1) * sizeof(int64_t));
    if (bits == NULL || table == NULL || bestbuf == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (q = 0; q < n; q++) {
        int shift = n - 1 - q;
        for (j = 0; j < m; j++)
            bits[q * m + j] = (unsigned char)((idx[j] >> shift) & 1);
    }
    /* count table over (|amp| rank, bit_q, bit_p) per ordered pair */
    for (q = 0; q < n; q++) {
        for (p = 0; p < n; p++) {
            int64_t *row = table + ((Py_ssize_t)q * n + p) * width;
            for (j = 0; j < m; j++)
                row[ranks[j] * 4 + bits[q * m + j] * 2 + bits[p * m + j]]++;
        }
    }
    res = PyList_New(n);
    if (res == NULL)
        goto done;
    for (q = 0; q < n; q++) {
        PyObject *inner = PyList_New(n);
        if (inner == NULL) {
            Py_CLEAR(res);
            goto done;
        }
        PyList_SET_ITEM(res, q, inner);
        for (p = 0; p < n; p++) {
            const int64_t *row = table + ((Py_ssize_t)q * n + p) * width;
            PyObject *blob, *hv;
            Py_hash_t hash;
            memcpy(bestbuf, row, (size_t)width * sizeof(int64_t));
            /* minimize over the four flip variants (column xor) */
            for (flip = 1; flip < 4; flip++) {
                int less = 0;
                for (w = 0; w < width; w++) {
                    int64_t v = row[w ^ flip];
                    if (v < bestbuf[w]) {
                        less = 1;
                        break;
                    }
                    if (v > bestbuf[w])
                        break;
                }
                if (less) {
                    for (w = 0; w < width; w++)
                        bestbuf[w] = row[w ^ flip];
                }
            }
            blob = PyBytes_FromStringAndSize((char *)bestbuf,
                                             (Py_ssize_t)width * 8);
            if (blob == NULL) {
                Py_CLEAR(res);
                goto done;
            }
            hash = PyObject_Hash(blob);
            Py_DECREF(blob);
            hv = PyLong_FromSsize_t(hash);
            if (hv == NULL) {
                Py_CLEAR(res);
                goto done;
            }
            PyList_SET_ITEM(inner, p, hv);
        }
    }
done:
    PyMem_Free(bits);
    PyMem_Free(table);
    PyMem_Free(bestbuf);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&ranks_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* cell_symmetric(n, idx, qamp, cell) -> bool                          */
/* ------------------------------------------------------------------ */

static PyObject *
fc_cell_symmetric(PyObject *self, PyObject *args)
{
    int n, ok = 1;
    PyObject *idx_o, *qamp_o, *cell_o;
    Py_buffer idx_b, qamp_b;
    Py_ssize_t j, m, c, ncell;
    const int64_t *idx;
    const double *qamp;
    int64_t *cell = NULL;
    ij_pair *pairs = NULL;

    if (!PyArg_ParseTuple(args, "iOOO", &n, &idx_o, &qamp_o, &cell_o))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(qamp_o, &qamp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    qamp = (const double *)qamp_b.buf;
    cell = list_to_i64(cell_o, &ncell);
    if (cell == NULL) {
        PyBuffer_Release(&idx_b);
        PyBuffer_Release(&qamp_b);
        return NULL;
    }
    pairs = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(ij_pair));
    if (pairs == NULL) {
        PyErr_NoMemory();
        ok = -1;
        goto done;
    }
    for (c = 0; c + 1 < ncell && ok == 1; c++) {
        int sa = n - 1 - (int)cell[c];
        int sb = n - 1 - (int)cell[c + 1];
        int64_t both = ((int64_t)1 << sa) | ((int64_t)1 << sb);
        for (j = 0; j < m; j++) {
            int64_t diff = ((idx[j] >> sa) ^ (idx[j] >> sb)) & 1;
            pairs[j].v = idx[j] ^ (diff * both);
            pairs[j].j = j;
        }
        qsort(pairs, (size_t)m, sizeof(ij_pair), cmp_ij_pair);
        for (j = 0; j < m; j++) {
            if (pairs[j].v != idx[j] || qamp[pairs[j].j] != qamp[j]) {
                ok = 0;
                break;
            }
        }
    }
done:
    PyMem_Free(cell);
    PyMem_Free(pairs);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&qamp_b);
    if (ok < 0)
        return NULL;
    if (ok)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

/* ------------------------------------------------------------------ */
/* pairs_singles(n, idx, amp, tshift)                                  */
/*   -> (i0 list, a0 list, a1 list, singles list)                      */
/* ------------------------------------------------------------------ */

static PyObject *
fc_pairs_singles(PyObject *self, PyObject *args)
{
    int n, tshift;
    PyObject *idx_o, *amp_o;
    PyObject *i0 = NULL, *a0 = NULL, *a1 = NULL, *singles = NULL,
             *res = NULL;
    Py_buffer idx_b, amp_b;
    Py_ssize_t j, m;
    const int64_t *idx;
    const double *amp;
    int64_t tmask;

    if (!PyArg_ParseTuple(args, "iOOi", &n, &idx_o, &amp_o, &tshift))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(amp_o, &amp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    amp = (const double *)amp_b.buf;
    tmask = (int64_t)1 << tshift;

    i0 = PyList_New(0);
    a0 = PyList_New(0);
    a1 = PyList_New(0);
    singles = PyList_New(0);
    if (i0 == NULL || a0 == NULL || a1 == NULL || singles == NULL)
        goto done;
    for (j = 0; j < m; j++) {
        int64_t partner = idx[j] ^ tmask;
        /* binary search for the partner in the sorted index set */
        Py_ssize_t lo = 0, hi = m;
        int found;
        while (lo < hi) {
            Py_ssize_t mid = (lo + hi) / 2;
            if (idx[mid] < partner)
                lo = mid + 1;
            else
                hi = mid;
        }
        found = lo < m && idx[lo] == partner;
        if (!found) {
            PyObject *v = PyLong_FromLongLong(idx[j]);
            if (v == NULL || PyList_Append(singles, v) < 0) {
                Py_XDECREF(v);
                goto done;
            }
            Py_DECREF(v);
        }
        else if (!(idx[j] & tmask)) {
            PyObject *vi = PyLong_FromLongLong(idx[j]);
            PyObject *v0 = PyFloat_FromDouble(amp[j]);
            PyObject *v1 = PyFloat_FromDouble(amp[lo]);
            if (vi == NULL || v0 == NULL || v1 == NULL ||
                    PyList_Append(i0, vi) < 0 ||
                    PyList_Append(a0, v0) < 0 ||
                    PyList_Append(a1, v1) < 0) {
                Py_XDECREF(vi);
                Py_XDECREF(v0);
                Py_XDECREF(v1);
                goto done;
            }
            Py_DECREF(vi);
            Py_DECREF(v0);
            Py_DECREF(v1);
        }
    }
    res = PyTuple_Pack(4, i0, a0, a1, singles);
done:
    Py_XDECREF(i0);
    Py_XDECREF(a0);
    Py_XDECREF(a1);
    Py_XDECREF(singles);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&amp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* merge_reps_codes(n, i0, singles, other)                             */
/*   -> (reps list, pcodes list, scodes list)                          */
/* ------------------------------------------------------------------ */

static PyObject *
fc_merge_reps_codes(PyObject *self, PyObject *args)
{
    int n;
    PyObject *i0_o, *singles_o, *other_o, *res = NULL;
    Py_ssize_t P, S, O, total, oi, j, r;
    int64_t *i0 = NULL, *singles = NULL, *other = NULL;
    unsigned char *cols = NULL;  /* accepted columns, row-major */
    int64_t reps_q[64];
    Py_ssize_t nreps = 0;
    PyObject *reps_l = NULL, *pcodes_l = NULL, *scodes_l = NULL;

    if (!PyArg_ParseTuple(args, "iOOO", &n, &i0_o, &singles_o, &other_o))
        return NULL;
    i0 = list_to_i64(i0_o, &P);
    if (i0 == NULL)
        return NULL;
    singles = list_to_i64(singles_o, &S);
    if (singles == NULL)
        goto done;
    other = list_to_i64(other_o, &O);
    if (other == NULL)
        goto done;
    total = P + S;
    cols = PyMem_Malloc((size_t)((O ? O : 1) * (total ? total : 1) + 1));
    if (cols == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (oi = 0; oi < O; oi++) {
        int q = (int)other[oi];
        int shift = n - 1 - q;
        unsigned char *col = cols + nreps * total;
        unsigned char first, any = 0;
        int dup = 0;
        for (j = 0; j < total; j++) {
            int64_t v = j < P ? i0[j] : singles[j - P];
            col[j] = (unsigned char)((v >> shift) & 1);
        }
        /* complement-normalize: first bit 0 */
        first = col[0];
        if (first) {
            for (j = 0; j < total; j++)
                col[j] ^= 1;
        }
        for (j = 0; j < total; j++)
            any |= col[j];
        if (!any)
            continue;  /* constant column: never splits anything */
        for (r = 0; r < nreps; r++) {
            if (memcmp(cols + r * total, col, (size_t)total) == 0) {
                dup = 1;
                break;
            }
        }
        if (dup)
            continue;  /* duplicate/complement column of an earlier qubit */
        reps_q[nreps++] = q;
        if (nreps >= 64)
            break;  /* codes are 64-bit; n <= 62 keeps this unreachable */
    }
    reps_l = PyList_New(nreps);
    pcodes_l = PyList_New(P);
    scodes_l = PyList_New(S);
    if (reps_l == NULL || pcodes_l == NULL || scodes_l == NULL)
        goto done;
    for (r = 0; r < nreps; r++) {
        PyObject *v = PyLong_FromLongLong(reps_q[r]);
        if (v == NULL)
            goto done;
        PyList_SET_ITEM(reps_l, r, v);
    }
    for (j = 0; j < P; j++) {
        int64_t code = 0;
        for (r = 0; r < nreps; r++)
            code |= ((i0[j] >> (n - 1 - reps_q[r])) & 1) << r;
        PyObject *v = PyLong_FromLongLong(code);
        if (v == NULL)
            goto done;
        PyList_SET_ITEM(pcodes_l, j, v);
    }
    for (j = 0; j < S; j++) {
        int64_t code = 0;
        for (r = 0; r < nreps; r++)
            code |= ((singles[j] >> (n - 1 - reps_q[r])) & 1) << r;
        PyObject *v = PyLong_FromLongLong(code);
        if (v == NULL)
            goto done;
        PyList_SET_ITEM(scodes_l, j, v);
    }
    res = PyTuple_Pack(3, reps_l, pcodes_l, scodes_l);
done:
    Py_XDECREF(reps_l);
    Py_XDECREF(pcodes_l);
    Py_XDECREF(scodes_l);
    PyMem_Free(i0);
    PyMem_Free(singles);
    PyMem_Free(other);
    PyMem_Free(cols);
    return res;
}

/* ------------------------------------------------------------------ */
/* merge_walk(pcodes, scodes, a0, a1, num_reps, kmax, rtol)            */
/*   -> list[(smask, ref, direction)]                                  */
/* ------------------------------------------------------------------ */

/* growable open-addressing set of (members..., direction) dedupe keys */
typedef struct {
    uint64_t *hashes;    /* table of key hashes; 0 = empty slot */
    Py_ssize_t *offsets; /* parallel: arena offset of the stored key */
    size_t mask, used;
    int64_t *arena;      /* concatenated keys: len, dir, members... */
    size_t arena_used, arena_cap;
} dedupe_set;

static uint64_t
dedupe_hash(const int64_t *members, Py_ssize_t count, int direction)
{
    uint64_t h = 1469598103934665603ULL;
    Py_ssize_t i;
    h ^= (uint64_t)direction;
    h *= 1099511628211ULL;
    for (i = 0; i < count; i++) {
        h ^= (uint64_t)members[i];
        h *= 1099511628211ULL;
    }
    return h ? h : 1;  /* 0 marks an empty slot */
}

static int
dedupe_grow(dedupe_set *ds)
{
    size_t newmask = ds->mask * 2 + 1, i;
    uint64_t *nh = PyMem_Calloc(newmask + 1, sizeof(uint64_t));
    Py_ssize_t *no = PyMem_Malloc((newmask + 1) * sizeof(Py_ssize_t));
    if (nh == NULL || no == NULL) {
        PyMem_Free(nh);
        PyMem_Free(no);
        PyErr_NoMemory();
        return -1;
    }
    for (i = 0; i <= ds->mask; i++) {
        if (ds->hashes[i]) {
            size_t slot = (size_t)ds->hashes[i] & newmask;
            while (nh[slot])
                slot = (slot + 1) & newmask;
            nh[slot] = ds->hashes[i];
            no[slot] = ds->offsets[i];
        }
    }
    PyMem_Free(ds->hashes);
    PyMem_Free(ds->offsets);
    ds->hashes = nh;
    ds->offsets = no;
    ds->mask = newmask;
    return 0;
}

/* returns 1 if (members, direction) was already present, 0 if inserted,
 * -1 on allocation failure */
static int
dedupe_check_add(dedupe_set *ds, const int64_t *members, Py_ssize_t count,
                 int direction)
{
    uint64_t h = dedupe_hash(members, count, direction);
    size_t slot = (size_t)h & ds->mask;
    while (ds->hashes[slot]) {
        if (ds->hashes[slot] == h) {
            const int64_t *key = ds->arena + ds->offsets[slot];
            if (key[0] == count && key[1] == direction &&
                    memcmp(key + 2, members,
                           (size_t)count * sizeof(int64_t)) == 0)
                return 1;
        }
        slot = (slot + 1) & ds->mask;
    }
    /* insert */
    if ((ds->arena_used + (size_t)count + 2) > ds->arena_cap) {
        size_t newcap = ds->arena_cap * 2;
        int64_t *na;
        while (newcap < ds->arena_used + (size_t)count + 2)
            newcap *= 2;
        na = PyMem_Realloc(ds->arena, newcap * sizeof(int64_t));
        if (na == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        ds->arena = na;
        ds->arena_cap = newcap;
    }
    ds->arena[ds->arena_used] = count;
    ds->arena[ds->arena_used + 1] = direction;
    memcpy(ds->arena + ds->arena_used + 2, members,
           (size_t)count * sizeof(int64_t));
    ds->hashes[slot] = h;
    ds->offsets[slot] = (Py_ssize_t)ds->arena_used;
    ds->arena_used += (size_t)count + 2;
    ds->used++;
    if (ds->used * 2 > ds->mask)
        return dedupe_grow(ds);
    return 0;
}

static PyObject *
fc_merge_walk(PyObject *self, PyObject *args)
{
    PyObject *pcodes_o, *scodes_o, *a0_o, *a1_o, *res = NULL;
    int num_reps, kmax, k;
    double rtol;
    Py_ssize_t P, S, na0, na1, p, s, b, i;
    int64_t *pcl = NULL, *scl = NULL;
    double *a0 = NULL, *a1 = NULL;
    /* per-subset bucket state */
    Py_ssize_t *bucket_head = NULL, *bucket_tail = NULL, *nxt = NULL;
    int64_t *bucket_code = NULL, *members = NULL;
    /* code -> bucket-id open map with generation stamps */
    size_t cmask = 0;
    int64_t *ck = NULL, *cgen = NULL;
    Py_ssize_t *cv = NULL;
    /* masked single-code set with generation stamps */
    size_t smask_cap = 0;
    int64_t *sk = NULL, *sgen = NULL;
    int64_t gen = 0;
    int combo[64];
    dedupe_set ds = {NULL, NULL, 0, 0, NULL, 0, 0};

    if (!PyArg_ParseTuple(args, "OOOOiid", &pcodes_o, &scodes_o, &a0_o,
                          &a1_o, &num_reps, &kmax, &rtol))
        return NULL;
    pcl = list_to_i64(pcodes_o, &P);
    if (pcl == NULL)
        return NULL;
    scl = list_to_i64(scodes_o, &S);
    if (scl == NULL)
        goto done;
    a0 = list_to_f64(a0_o, &na0);
    if (a0 == NULL)
        goto done;
    a1 = list_to_f64(a1_o, &na1);
    if (a1 == NULL)
        goto done;

    bucket_head = PyMem_Malloc((size_t)(P + 1) * sizeof(Py_ssize_t));
    bucket_tail = PyMem_Malloc((size_t)(P + 1) * sizeof(Py_ssize_t));
    nxt = PyMem_Malloc((size_t)(P + 1) * sizeof(Py_ssize_t));
    bucket_code = PyMem_Malloc((size_t)(P + 1) * sizeof(int64_t));
    members = PyMem_Malloc((size_t)(P + 1) * sizeof(int64_t));
    cmask = 8;
    while (cmask < (size_t)P * 2 + 2)
        cmask *= 2;
    cmask -= 1;
    ck = PyMem_Malloc((cmask + 1) * sizeof(int64_t));
    cgen = PyMem_Calloc(cmask + 1, sizeof(int64_t));
    cv = PyMem_Malloc((cmask + 1) * sizeof(Py_ssize_t));
    smask_cap = 8;
    while (smask_cap < (size_t)S * 2 + 2)
        smask_cap *= 2;
    smask_cap -= 1;
    sk = PyMem_Malloc((smask_cap + 1) * sizeof(int64_t));
    sgen = PyMem_Calloc(smask_cap + 1, sizeof(int64_t));
    ds.mask = 255;
    ds.hashes = PyMem_Calloc(ds.mask + 1, sizeof(uint64_t));
    ds.offsets = PyMem_Malloc((ds.mask + 1) * sizeof(Py_ssize_t));
    ds.arena_cap = 1024;
    ds.arena = PyMem_Malloc(ds.arena_cap * sizeof(int64_t));
    if (bucket_head == NULL || bucket_tail == NULL || nxt == NULL ||
            bucket_code == NULL || members == NULL || ck == NULL ||
            cgen == NULL || cv == NULL || sk == NULL || sgen == NULL ||
            ds.hashes == NULL || ds.offsets == NULL || ds.arena == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    res = PyList_New(0);
    if (res == NULL)
        goto done;

    for (k = 0; k <= kmax; k++) {
        int have_combo = 1;
        for (i = 0; i < k; i++)
            combo[i] = (int)i;
        while (have_combo) {
            int64_t smask = 0;
            Py_ssize_t nbuckets = 0;
            for (i = 0; i < k; i++)
                smask |= (int64_t)1 << combo[i];
            gen++;
            /* bucket pairs by masked rep-code, first-occurrence order */
            for (p = 0; p < P; p++) {
                int64_t code = pcl[p] & smask;
                size_t slot = ((uint64_t)code * SM_ORBIT_MUL) & cmask;
                Py_ssize_t bid = -1;
                while (cgen[slot] == gen) {
                    if (ck[slot] == code) {
                        bid = cv[slot];
                        break;
                    }
                    slot = (slot + 1) & cmask;
                }
                if (bid < 0) {
                    bid = nbuckets++;
                    cgen[slot] = gen;
                    ck[slot] = code;
                    cv[slot] = bid;
                    bucket_code[bid] = code;
                    bucket_head[bid] = p;
                    bucket_tail[bid] = p;
                    nxt[p] = -1;
                }
                else {
                    nxt[bucket_tail[bid]] = p;
                    bucket_tail[bid] = p;
                    nxt[p] = -1;
                }
            }
            /* masked single codes */
            for (s = 0; s < S; s++) {
                int64_t code = scl[s] & smask;
                size_t slot = ((uint64_t)code * SM_ORBIT_MUL) & smask_cap;
                while (sgen[slot] == gen && sk[slot] != code)
                    slot = (slot + 1) & smask_cap;
                sgen[slot] = gen;
                sk[slot] = code;
            }
            for (b = 0; b < nbuckets; b++) {
                int64_t code = bucket_code[b];
                Py_ssize_t ref, nmem = 0;
                double ra0, ra1;
                int direction, in_singles = 0;
                size_t slot = ((uint64_t)code * SM_ORBIT_MUL) & smask_cap;
                while (sgen[slot] == gen) {
                    if (sk[slot] == code) {
                        in_singles = 1;
                        break;
                    }
                    slot = (slot + 1) & smask_cap;
                }
                if (in_singles)
                    continue;  /* the cube would split a lone index */
                for (p = bucket_head[b]; p >= 0; p = nxt[p])
                    members[nmem++] = p;
                ref = members[0];
                ra0 = a0[ref];
                ra1 = a1[ref];
                if (nmem > 1) {
                    double scale = fabs(ra0) + fabs(ra1);
                    int consistent = 1;
                    for (i = 1; i < nmem; i++) {
                        double pa0 = a0[members[i]];
                        double pa1 = a1[members[i]];
                        if (fabs(pa1 * ra0 - ra1 * pa0) >
                                (rtol * scale) * (fabs(pa0) + fabs(pa1))) {
                            consistent = 0;
                            break;
                        }
                    }
                    if (!consistent)
                        continue;
                }
                for (direction = 0; direction < 2; direction++) {
                    int dup = dedupe_check_add(&ds, members, nmem,
                                               direction);
                    if (dup < 0)
                        goto fail;
                    if (dup)
                        continue;  /* cheaper cube already found */
                    {
                        PyObject *t = Py_BuildValue(
                            "(Lni)", (long long)smask, ref, direction);
                        if (t == NULL || PyList_Append(res, t) < 0) {
                            Py_XDECREF(t);
                            goto fail;
                        }
                        Py_DECREF(t);
                    }
                }
            }
            /* advance to next combination (lexicographic) */
            if (k == 0) {
                have_combo = 0;
            }
            else {
                for (i = k - 1; i >= 0; i--) {
                    if (combo[i] != (int)i + num_reps - k)
                        break;
                }
                if (i < 0) {
                    have_combo = 0;
                }
                else {
                    combo[i]++;
                    for (i++; i < k; i++)
                        combo[i] = combo[i - 1] + 1;
                }
            }
        }
    }
    goto done;
fail:
    Py_CLEAR(res);
done:
    PyMem_Free(pcl);
    PyMem_Free(scl);
    PyMem_Free(a0);
    PyMem_Free(a1);
    PyMem_Free(bucket_head);
    PyMem_Free(bucket_tail);
    PyMem_Free(nxt);
    PyMem_Free(bucket_code);
    PyMem_Free(members);
    PyMem_Free(ck);
    PyMem_Free(cgen);
    PyMem_Free(cv);
    PyMem_Free(sk);
    PyMem_Free(sgen);
    PyMem_Free(ds.hashes);
    PyMem_Free(ds.offsets);
    PyMem_Free(ds.arena);
    return res;
}

/* ------------------------------------------------------------------ */
/* merge_apply(n, idx, amp, cmask, cval, tshift, theta, atol)          */
/*   -> (idx_bytes, amp_bytes)                                         */
/* ------------------------------------------------------------------ */

static PyObject *
fc_merge_apply(PyObject *self, PyObject *args)
{
    int n, tshift;
    long long cmask_ll, cval_ll;
    double theta, atol;
    PyObject *idx_o, *amp_o, *res = NULL;
    Py_buffer idx_b, amp_b;
    Py_ssize_t j, m, n0 = 0, n1 = 0, count = 0, p1 = 0, t;
    const int64_t *idx;
    const double *amp;
    int64_t cmask, cval, tmask;
    int64_t *g0i = NULL, *g1i = NULL;
    double *g0a = NULL, *g1a = NULL;
    unsigned char *matched = NULL;
    ia_pair *out = NULL;
    double c, s;

    if (!PyArg_ParseTuple(args, "iOOLLidd", &n, &idx_o, &amp_o, &cmask_ll,
                          &cval_ll, &tshift, &theta, &atol))
        return NULL;
    if (get_buf(idx_o, &idx_b, 0) < 0)
        return NULL;
    if (get_buf(amp_o, &amp_b, 0) < 0) {
        PyBuffer_Release(&idx_b);
        return NULL;
    }
    m = idx_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    amp = (const double *)amp_b.buf;
    cmask = (int64_t)cmask_ll;
    cval = (int64_t)cval_ll;
    tmask = (int64_t)1 << tshift;

    g0i = PyMem_Malloc((size_t)(m + 1) * sizeof(int64_t));
    g1i = PyMem_Malloc((size_t)(m + 1) * sizeof(int64_t));
    g0a = PyMem_Malloc((size_t)(m + 1) * sizeof(double));
    g1a = PyMem_Malloc((size_t)(m + 1) * sizeof(double));
    matched = PyMem_Calloc((size_t)(m + 1), 1);
    out = PyMem_Malloc((size_t)(2 * m + 1) * sizeof(ia_pair));
    if (g0i == NULL || g1i == NULL || g0a == NULL || g1a == NULL ||
            matched == NULL || out == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    for (j = 0; j < m; j++) {
        int64_t i = idx[j];
        if ((i & cmask) != cval) {
            out[count].v = i;
            out[count++].a = amp[j];
        }
        else if (i & tmask) {
            g1i[n1] = i ^ tmask;
            g1a[n1++] = amp[j];
        }
        else {
            g0i[n0] = i;
            g0a[n0++] = amp[j];
        }
    }
    c = cos(theta / 2.0);
    s = sin(theta / 2.0);
    /* g0i and g1i are each ascending (masking preserves sort order), so
     * partners resolve by a single merge-join */
    for (j = 0; j < n0; j++) {
        int64_t i = g0i[j];
        double a0v = g0a[j], a1v = 0.0, new0, new1;
        while (p1 < n1 && g1i[p1] < i)
            p1++;
        if (p1 < n1 && g1i[p1] == i) {
            a1v = g1a[p1];
            matched[p1] = 1;
            p1++;
        }
        new0 = c * a0v - s * a1v;
        new1 = s * a0v + c * a1v;
        if (fabs(new0) > atol) {
            out[count].v = i;
            out[count++].a = new0;
        }
        if (fabs(new1) > atol) {
            out[count].v = i | tmask;
            out[count++].a = new1;
        }
    }
    for (t = 0; t < n1; t++) {  /* lone |1> partners */
        int64_t i;
        double a1v, new0, new1;
        if (matched[t])
            continue;
        i = g1i[t];
        a1v = g1a[t];
        new0 = c * 0.0 - s * a1v;
        new1 = s * 0.0 + c * a1v;
        if (fabs(new0) > atol) {
            out[count].v = i;
            out[count++].a = new0;
        }
        if (fabs(new1) > atol) {
            out[count].v = i | tmask;
            out[count++].a = new1;
        }
    }
    qsort(out, (size_t)count, sizeof(ia_pair), cmp_ia_pair);
    {
        PyObject *ib = PyBytes_FromStringAndSize(NULL, count * 8);
        PyObject *ab = PyBytes_FromStringAndSize(NULL, count * 8);
        if (ib != NULL && ab != NULL) {
            int64_t *ip = (int64_t *)PyBytes_AS_STRING(ib);
            double *ap = (double *)PyBytes_AS_STRING(ab);
            for (j = 0; j < count; j++) {
                ip[j] = out[j].v;
                ap[j] = out[j].a;
            }
            res = PyTuple_Pack(2, ib, ab);
        }
        Py_XDECREF(ib);
        Py_XDECREF(ab);
    }
done:
    PyMem_Free(g0i);
    PyMem_Free(g1i);
    PyMem_Free(g0a);
    PyMem_Free(g1a);
    PyMem_Free(matched);
    PyMem_Free(out);
    PyBuffer_Release(&idx_b);
    PyBuffer_Release(&amp_b);
    return res;
}

/* ------------------------------------------------------------------ */
/* cx_batch(n, idx, amp, qamp, controls, phases, targets,              */
/*          out_idx_2d, out_amp_2d, out_qamp_2d) -> list[payload]      */
/* ------------------------------------------------------------------ */

static PyObject *
fc_cx_batch(PyObject *self, PyObject *args)
{
    int n;
    PyObject *idx_o, *amp_o, *qamp_o, *c_o, *p_o, *t_o;
    PyObject *oi_o, *oa_o, *oq_o, *res = NULL;
    Py_buffer idx_b, amp_b, qamp_b, c_b, p_b, t_b, oi_b, oa_b, oq_b;
    Py_ssize_t j, m, K, k;
    const int64_t *idx, *controls, *phases, *targets;
    const double *amp, *qamp;
    int64_t *oi;
    double *oa, *oq;
    ij_pair *pairs = NULL;
    int nbuf = 0;
    Py_buffer *bufs[9] = {&idx_b, &amp_b, &qamp_b, &c_b, &p_b, &t_b,
                          &oi_b, &oa_b, &oq_b};

    if (!PyArg_ParseTuple(args, "iOOOOOOOOO", &n, &idx_o, &amp_o, &qamp_o,
                          &c_o, &p_o, &t_o, &oi_o, &oa_o, &oq_o))
        return NULL;
    {
        PyObject *objs[9] = {idx_o, amp_o, qamp_o, c_o, p_o, t_o,
                             oi_o, oa_o, oq_o};
        for (nbuf = 0; nbuf < 9; nbuf++) {
            if (get_buf(objs[nbuf], bufs[nbuf], nbuf >= 6) < 0)
                goto release;
        }
    }
    m = idx_b.len / 8;
    K = c_b.len / 8;
    idx = (const int64_t *)idx_b.buf;
    amp = (const double *)amp_b.buf;
    qamp = (const double *)qamp_b.buf;
    controls = (const int64_t *)c_b.buf;
    phases = (const int64_t *)p_b.buf;
    targets = (const int64_t *)t_b.buf;
    oi = (int64_t *)oi_b.buf;
    oa = (double *)oa_b.buf;
    oq = (double *)oq_b.buf;

    pairs = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(ij_pair));
    if (pairs == NULL) {
        PyErr_NoMemory();
        goto release;
    }
    res = PyList_New(K);
    if (res == NULL)
        goto release;
    for (k = 0; k < K; k++) {
        int cshift = n - 1 - (int)controls[k];
        int64_t phase = phases[k];
        int64_t tmask = (int64_t)1 << (n - 1 - (int)targets[k]);
        int64_t *row_i = oi + k * m;
        double *row_a = oa + k * m;
        double *row_q = oq + k * m;
        PyObject *payload;
        for (j = 0; j < m; j++) {
            int64_t v = idx[j];
            if (((v >> cshift) & 1) == phase)
                v ^= tmask;
            pairs[j].v = v;
            pairs[j].j = j;
        }
        qsort(pairs, (size_t)m, sizeof(ij_pair), cmp_ij_pair);
        for (j = 0; j < m; j++) {
            row_i[j] = pairs[j].v;
            row_a[j] = amp[pairs[j].j];
            row_q[j] = qamp[pairs[j].j];
        }
        payload = build_payload(n, row_i, row_q, m);
        if (payload == NULL) {
            Py_CLEAR(res);
            goto release;
        }
        PyList_SET_ITEM(res, k, payload);
    }
release:
    PyMem_Free(pairs);
    while (nbuf > 0)
        PyBuffer_Release(bufs[--nbuf]);
    return res;
}

/* ------------------------------------------------------------------ */
/* U64Map: insertion-ordered open-addressing map, uint64 -> object     */
/* ------------------------------------------------------------------ */

typedef struct {
    uint64_t key;
    PyObject *keyobj;  /* original Python int (dict-compatible keys()) */
    PyObject *val;     /* NULL = tombstone */
} u64_entry;

typedef struct {
    PyObject_HEAD
    u64_entry *entries;      /* append-only log, order = insertion */
    Py_ssize_t nentries, cap_entries, live;
    Py_ssize_t *index;       /* slot -> entry idx; -1 empty, -2 dummy */
    size_t mask, fill;       /* fill = used + tombstoned slots */
} U64MapObject;

static int
u64map_rebuild(U64MapObject *self, size_t minsize)
{
    size_t newsize = 8;
    Py_ssize_t i, w = 0;
    Py_ssize_t *nindex;
    while (newsize < minsize)
        newsize *= 2;
    nindex = PyMem_Malloc(newsize * sizeof(Py_ssize_t));
    if (nindex == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (i = 0; i < (Py_ssize_t)newsize; i++)
        nindex[i] = -1;
    /* compact the log (dropping tombstones, order preserved) and
     * reindex */
    for (i = 0; i < self->nentries; i++) {
        if (self->entries[i].val == NULL)
            continue;
        self->entries[w] = self->entries[i];
        {
            uint64_t key = self->entries[w].key;
            size_t slot = (size_t)key & (newsize - 1);
            uint64_t perturb = key;
            while (nindex[slot] != -1) {
                perturb >>= 5;
                slot = (slot * 5 + perturb + 1) & (newsize - 1);
            }
            nindex[slot] = w;
        }
        w++;
    }
    self->nentries = w;
    self->live = w;
    PyMem_Free(self->index);
    self->index = nindex;
    self->mask = newsize - 1;
    self->fill = (size_t)w;
    return 0;
}

/* find the entry for key; returns entry idx or -1, sets *slot_out to the
 * insertion slot (first tombstone on the probe path, else the empty
 * slot) */
static Py_ssize_t
u64map_probe(U64MapObject *self, uint64_t key, Py_ssize_t *slot_out)
{
    size_t slot = (size_t)key & self->mask;
    uint64_t perturb = key;
    Py_ssize_t freeslot = -1;
    for (;;) {
        Py_ssize_t e = self->index[slot];
        if (e == -1) {
            if (slot_out)
                *slot_out = freeslot >= 0 ? freeslot : (Py_ssize_t)slot;
            return -1;
        }
        if (e == -2) {
            if (freeslot < 0)
                freeslot = (Py_ssize_t)slot;
        }
        else if (self->entries[e].key == key) {
            if (slot_out)
                *slot_out = (Py_ssize_t)slot;
            return e;
        }
        perturb >>= 5;
        slot = (slot * 5 + perturb + 1) & self->mask;
    }
}

static int
u64map_key_from_obj(PyObject *keyobj, uint64_t *out)
{
    uint64_t key = PyLong_AsUnsignedLongLongMask(keyobj);
    if (key == (uint64_t)-1 && PyErr_Occurred())
        return -1;
    *out = key;
    return 0;
}

static PyObject *
u64map_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    U64MapObject *self = (U64MapObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->entries = NULL;
    self->nentries = self->cap_entries = self->live = 0;
    self->index = PyMem_Malloc(8 * sizeof(Py_ssize_t));
    if (self->index == NULL) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    for (int i = 0; i < 8; i++)
        self->index[i] = -1;
    self->mask = 7;
    self->fill = 0;
    return (PyObject *)self;
}

static int
u64map_traverse(U64MapObject *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    for (i = 0; i < self->nentries; i++) {
        Py_VISIT(self->entries[i].keyobj);
        Py_VISIT(self->entries[i].val);
    }
    return 0;
}

static int
u64map_clear_impl(U64MapObject *self)
{
    Py_ssize_t i, count = self->nentries;
    self->nentries = 0;
    self->live = 0;
    for (i = 0; i < count; i++) {
        Py_CLEAR(self->entries[i].keyobj);
        Py_CLEAR(self->entries[i].val);
    }
    return 0;
}

static void
u64map_dealloc(U64MapObject *self)
{
    PyObject_GC_UnTrack(self);
    u64map_clear_impl(self);
    PyMem_Free(self->entries);
    PyMem_Free(self->index);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
u64map_length(U64MapObject *self)
{
    return self->live;
}

static int
u64map_ass_subscript(U64MapObject *self, PyObject *keyobj, PyObject *val)
{
    uint64_t key;
    Py_ssize_t e, slot;
    if (u64map_key_from_obj(keyobj, &key) < 0)
        return -1;
    e = u64map_probe(self, key, &slot);
    if (val == NULL) {  /* delete */
        if (e < 0 || self->entries[e].val == NULL) {
            PyErr_SetObject(PyExc_KeyError, keyobj);
            return -1;
        }
        Py_CLEAR(self->entries[e].keyobj);
        Py_CLEAR(self->entries[e].val);
        self->index[slot] = -2;
        self->live--;
        if (self->nentries > 64 && self->live * 2 < self->nentries)
            return u64map_rebuild(self, (size_t)self->live * 4);
        return 0;
    }
    if (e >= 0) {  /* overwrite in place: insertion position kept */
        Py_INCREF(val);
        Py_SETREF(self->entries[e].val, val);
        return 0;
    }
    if (self->nentries >= self->cap_entries) {
        Py_ssize_t newcap = self->cap_entries ? self->cap_entries * 2 : 16;
        u64_entry *ne = PyMem_Realloc(self->entries,
                                      (size_t)newcap * sizeof(u64_entry));
        if (ne == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->entries = ne;
        self->cap_entries = newcap;
    }
    self->entries[self->nentries].key = key;
    Py_INCREF(keyobj);
    self->entries[self->nentries].keyobj = keyobj;
    Py_INCREF(val);
    self->entries[self->nentries].val = val;
    if (self->index[slot] == -1)
        self->fill++;
    self->index[slot] = self->nentries;
    self->nentries++;
    self->live++;
    if ((self->fill + 1) * 3 >= (self->mask + 1) * 2)
        return u64map_rebuild(self, (size_t)self->live * 4);
    return 0;
}

static PyObject *
u64map_subscript(U64MapObject *self, PyObject *keyobj)
{
    uint64_t key;
    Py_ssize_t e;
    if (u64map_key_from_obj(keyobj, &key) < 0)
        return NULL;
    e = u64map_probe(self, key, NULL);
    if (e < 0 || self->entries[e].val == NULL) {
        PyErr_SetObject(PyExc_KeyError, keyobj);
        return NULL;
    }
    Py_INCREF(self->entries[e].val);
    return self->entries[e].val;
}

static PyObject *
u64map_get(U64MapObject *self, PyObject *args)
{
    PyObject *keyobj, *def = Py_None;
    uint64_t key;
    Py_ssize_t e;
    if (!PyArg_ParseTuple(args, "O|O", &keyobj, &def))
        return NULL;
    if (u64map_key_from_obj(keyobj, &key) < 0)
        return NULL;
    e = u64map_probe(self, key, NULL);
    if (e < 0 || self->entries[e].val == NULL) {
        Py_INCREF(def);
        return def;
    }
    Py_INCREF(self->entries[e].val);
    return self->entries[e].val;
}

static int
u64map_contains(U64MapObject *self, PyObject *keyobj)
{
    uint64_t key;
    Py_ssize_t e;
    if (u64map_key_from_obj(keyobj, &key) < 0)
        return -1;
    e = u64map_probe(self, key, NULL);
    return e >= 0 && self->entries[e].val != NULL;
}

/* which: 0 = keys, 1 = values, 2 = items */
static PyObject *
u64map_collect(U64MapObject *self, int which)
{
    PyObject *res = PyList_New(self->live);
    Py_ssize_t i, w = 0;
    if (res == NULL)
        return NULL;
    for (i = 0; i < self->nentries; i++) {
        PyObject *item;
        if (self->entries[i].val == NULL)
            continue;
        if (which == 0) {
            item = self->entries[i].keyobj;
            Py_INCREF(item);
        }
        else if (which == 1) {
            item = self->entries[i].val;
            Py_INCREF(item);
        }
        else {
            item = PyTuple_Pack(2, self->entries[i].keyobj,
                                self->entries[i].val);
            if (item == NULL) {
                Py_DECREF(res);
                return NULL;
            }
        }
        PyList_SET_ITEM(res, w++, item);
    }
    return res;
}

static PyObject *
u64map_keys(U64MapObject *self, PyObject *noargs)
{
    return u64map_collect(self, 0);
}

static PyObject *
u64map_values(U64MapObject *self, PyObject *noargs)
{
    return u64map_collect(self, 1);
}

static PyObject *
u64map_items(U64MapObject *self, PyObject *noargs)
{
    return u64map_collect(self, 2);
}

static PyObject *
u64map_iter(U64MapObject *self)
{
    PyObject *keys = u64map_collect(self, 0);
    PyObject *it;
    if (keys == NULL)
        return NULL;
    it = PyObject_GetIter(keys);
    Py_DECREF(keys);
    return it;
}

static PyMethodDef u64map_methods[] = {
    {"get", (PyCFunction)u64map_get, METH_VARARGS,
     "get(key, default=None) -> value"},
    {"keys", (PyCFunction)u64map_keys, METH_NOARGS,
     "keys() -> list (insertion order)"},
    {"values", (PyCFunction)u64map_values, METH_NOARGS,
     "values() -> list (insertion order)"},
    {"items", (PyCFunction)u64map_items, METH_NOARGS,
     "items() -> list of (key, value) (insertion order)"},
    {NULL, NULL, 0, NULL},
};

static PyMappingMethods u64map_as_mapping = {
    (lenfunc)u64map_length,
    (binaryfunc)u64map_subscript,
    (objobjargproc)u64map_ass_subscript,
};

static PySequenceMethods u64map_as_sequence = {
    .sq_contains = (objobjproc)u64map_contains,
};

static PyTypeObject U64MapType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.core._fastcore.U64Map",
    .tp_basicsize = sizeof(U64MapObject),
    .tp_dealloc = (destructor)u64map_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Insertion-ordered open-addressing map from 64-bit ints "
              "to objects.",
    .tp_traverse = (traverseproc)u64map_traverse,
    .tp_clear = (inquiry)u64map_clear_impl,
    .tp_methods = u64map_methods,
    .tp_as_mapping = &u64map_as_mapping,
    .tp_as_sequence = &u64map_as_sequence,
    .tp_iter = (getiterfunc)u64map_iter,
    .tp_new = u64map_new,
};

/* ------------------------------------------------------------------ */
/* module                                                              */
/* ------------------------------------------------------------------ */

static PyMethodDef fastcore_methods[] = {
    {"splitmix_constants", fc_splitmix_constants, METH_NOARGS,
     "Compiled-in splitmix64 constants (anti-drift check)."},
    {"quantize", fc_quantize, METH_VARARGS,
     "quantize(src, dst, scale): np.round twin with -0.0 -> 0.0."},
    {"payload", fc_payload, METH_VARARGS,
     "payload(n, idx, qamp) -> bytes."},
    {"column_counts", fc_column_counts, METH_VARARGS,
     "column_counts(n, idx) -> list of per-qubit column weights."},
    {"entangled_qubits", fc_entangled_qubits, METH_VARARGS,
     "entangled_qubits(n, idx, amp) -> tuple of non-separable qubits."},
    {"pin_separable", fc_pin_separable, METH_VARARGS,
     "pin_separable(n, idx, amp, counts) -> None | (idx_b, amp_b)."},
    {"orbit_hash", fc_orbit_hash, METH_VARARGS,
     "orbit_hash(rows_2d_u64, heavy_pos, qamp) -> 128-bit int."},
    {"orbit_hash_state", fc_orbit_hash_state, METH_VARARGS,
     "orbit_hash_state(n, idx, qamp, tie_cap, orderings|None)"
     " -> (128-bit int, num_heavy)."},
    {"sig_tags", fc_sig_tags, METH_VARARGS,
     "sig_tags(n, idx, absamp) -> flip-invariant qubit signature tags."},
    {"wl_pair_ids", fc_wl_pair_ids, METH_VARARGS,
     "wl_pair_ids(n, idx, ranks) -> n x n flip-minimized pair-table ids."},
    {"cell_symmetric", fc_cell_symmetric, METH_VARARGS,
     "cell_symmetric(n, idx, qamp, cell) -> bool."},
    {"pairs_singles", fc_pairs_singles, METH_VARARGS,
     "pairs_singles(n, idx, amp, tshift) -> (i0, a0, a1, singles)."},
    {"merge_reps_codes", fc_merge_reps_codes, METH_VARARGS,
     "merge_reps_codes(n, i0, singles, other) -> (reps, pcodes, scodes)."},
    {"merge_walk", fc_merge_walk, METH_VARARGS,
     "merge_walk(pcodes, scodes, a0, a1, num_reps, kmax, rtol) -> "
     "list of (smask, ref, direction)."},
    {"merge_apply", fc_merge_apply, METH_VARARGS,
     "merge_apply(n, idx, amp, cmask, cval, tshift, theta, atol) -> "
     "(idx_bytes, amp_bytes)."},
    {"cx_batch", fc_cx_batch, METH_VARARGS,
     "cx_batch(n, idx, amp, qamp, controls, phases, targets, oi, oa, oq) "
     "-> list of payloads."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fastcore_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core._fastcore",
    "Native hot-loop kernels (bit-identical twins of core/kernel.py).",
    -1,
    fastcore_methods,
};

PyMODINIT_FUNC
PyInit__fastcore(void)
{
    PyObject *mod;
    if (PyType_Ready(&U64MapType) < 0)
        return NULL;
    mod = PyModule_Create(&fastcore_module);
    if (mod == NULL)
        return NULL;
    Py_INCREF(&U64MapType);
    if (PyModule_AddObject(mod, "U64Map", (PyObject *)&U64MapType) < 0) {
        Py_DECREF(&U64MapType);
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}

"""Equivalence-class counting for uniform states (paper Table III).

Table III reports, for 4-qubit uniform states of cardinality ``m``, the raw
graph size ``|V_G| = C(16, m)`` and the compressed sizes ``|V_G / U(2)|``
and ``|V_G / P U(2)|`` under the canonicalization of Sec. V-B.

Exact class counts depend on how complete the canonicalization is; ours is
sound (never merges inequivalent states) but, like the paper's, heuristic —
EXPERIMENTS.md compares both sets of numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

from repro.constants import DEFAULT_TIE_CAP
from repro.core.canonical import CanonLevel, canonical_key
from repro.states.qstate import QState

__all__ = ["CanonicalCountRow", "count_canonical_uniform_states",
           "canonical_count_table"]


@dataclass(frozen=True)
class CanonicalCountRow:
    """One row of Table III."""

    cardinality: int
    raw: int
    u2: int
    pu2: int


def count_canonical_uniform_states(num_qubits: int, cardinality: int,
                                   tie_cap: int = DEFAULT_TIE_CAP,
                                   perm_cap: int = 5040) -> CanonicalCountRow:
    """Count canonical classes of uniform states with the given cardinality.

    Enumerates all ``C(2**n, m)`` index sets, so keep ``n`` small (the
    paper uses ``n = 4``).
    """
    dim = 1 << num_qubits
    raw = math.comb(dim, cardinality)
    u2_keys: set = set()
    pu2_keys: set = set()
    for indices in combinations(range(dim), cardinality):
        state = QState.uniform(num_qubits, indices)
        u2_keys.add(canonical_key(state, CanonLevel.U2, tie_cap=tie_cap))
        pu2_keys.add(canonical_key(state, CanonLevel.PU2, tie_cap=tie_cap,
                                   perm_cap=perm_cap))
    return CanonicalCountRow(cardinality=cardinality, raw=raw,
                             u2=len(u2_keys), pu2=len(pu2_keys))


def canonical_count_table(num_qubits: int = 4, max_cardinality: int = 8,
                          tie_cap: int = DEFAULT_TIE_CAP, perm_cap: int = 5040
                          ) -> list[CanonicalCountRow]:
    """All rows ``m = 1 .. max_cardinality`` of Table III."""
    return [count_canonical_uniform_states(num_qubits, m,
                                           tie_cap=tie_cap,
                                           perm_cap=perm_cap)
            for m in range(1, max_cardinality + 1)]

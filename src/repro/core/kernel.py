"""Packed-array search kernel for the A* hot path.

The paper's tractability argument rests on the sparse ``n x m`` bit-matrix
encoding, but the seed implementation materialized every search node as a
Python dict and re-sorted it on each ``key()`` call.  This module is the
array-native twin of :mod:`repro.states.qstate` + :mod:`repro.core.transitions`
built for the search inner loop:

* :class:`PackedState` — a state as a sorted 64-bit index array plus an
  aligned float64 amplitude array, with the quantized amplitudes, the
  ``n x m`` bit matrix, and a 64-bit structural hash computed once.
* :class:`StatePool` — an interning pool: each distinct (quantized) state is
  materialized exactly once per search, so equality is identity and every
  per-state memo becomes an O(1) identity-keyed lookup.
* Vectorized successor enumeration — ``enumerate_cx_packed`` reads the bit
  matrix column-wise; ``enumerate_merges_packed`` prunes the control-cube
  lattice down to the qubit columns that actually distinguish the pair set
  (pattern-lattice pruning) and buckets pairs by precomputed bit codes.
  Both are proven move-set-identical to the reference enumeration in
  :mod:`repro.core.transitions` by the property tests in
  ``tests/test_kernel.py``.
* Canonicalization support — separable-qubit pinning and the X-flip /
  permutation minimization run as one batched array computation over all
  candidate orderings and translations.  The construction applies exactly
  the free transformations of :mod:`repro.core.canonical` (same class
  partition under the same caps, property-tested for soundness), but
  breaks representative ties kernel-natively, so kernel keys and legacy
  keys live in separate namespaces.
* :class:`HashKeyedMap` / :class:`BoundedCache` — the search-side containers:
  ``best_g`` keyed by the 64-bit canonical hash with an explicit collision
  spill, and size-capped FIFO caches that report hit rates.

Indices use ``int64`` (62 usable qubit bits — far beyond any representable
sparse working set); quantization matches :func:`repro.constants.quantize`
elementwise via ``np.round``.

Enumeration and move-application arithmetic mirrors the reference
implementations operation-for-operation, so move sets, amplitudes, and
merge angles are bit-identical to the legacy path — the property tests in
``tests/test_kernel.py`` assert it, and the A* differential test asserts
that both paths prove the same optimal CNOT counts.
"""

from __future__ import annotations

import math
from itertools import combinations, islice, permutations
from itertools import product as iter_product
from time import perf_counter as _perf_counter

import numpy as np

from repro.constants import (
    AMP_DECIMALS,
    ATOL,
    MERGE_RATIO_RTOL,
)
from repro.core import fastcore as _fastcore
from repro.core.canonical import CanonLevel
from repro.core.moves import CXMove, MergeMove, Move, XMove, merge_angle
from repro.core.splitmix import (
    GOLDEN,
    MIX_A1,
    MIX_A2,
    MIX_B1,
    MIX_B2,
    ORBIT_MUL,
    U64_MASK,
)
from repro.states.qstate import QState

__all__ = [
    "PackedState",
    "StatePool",
    "CanonKey",
    "CanonContext",
    "HashKeyedMap",
    "BoundedCache",
    "state_hash64",
    "quantize_array",
    "enumerate_cx_packed",
    "enumerate_merges_packed",
    "successors_packed",
    "apply_move_packed",
    "entangled_qubits_packed",
    "num_entangled_packed",
    "entanglement_h_packed",
    "canonical_key_packed",
]


def state_hash64(payload: bytes) -> int:
    """64-bit structural hash of a serialized state (stable per process).

    Uses the interpreter's SipHash over the payload bytes — the cheapest
    strong 64-bit hash available and stable for the lifetime of a search.
    Module-level so tests can monkeypatch it to force collisions and verify
    the collision fallbacks in :class:`StatePool` and :class:`HashKeyedMap`.
    """
    return hash(payload)


_QUANT_SCALE = 10.0 ** AMP_DECIMALS


def quantize_array(amp: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.constants.quantize` (with ``-0.0 -> 0.0``).

    The compiled path computes ``rint(x * scale) / scale`` per element —
    verified bit-identical to ``np.round`` (the division form; a
    multiply-by-reciprocal variant is *not* identical).
    """
    fc = _fastcore.active
    if fc is not None:
        q = np.empty_like(amp)
        fc.quantize(amp, q, _QUANT_SCALE)
        return q
    q = np.round(amp, AMP_DECIMALS)
    q[q == 0.0] = 0.0
    return q


def _payload(num_qubits: int, idx: np.ndarray, qamp: np.ndarray) -> bytes:
    fc = _fastcore.active
    if fc is not None:
        return fc.payload(num_qubits, idx, qamp)
    return num_qubits.to_bytes(2, "little") + idx.tobytes() + qamp.tobytes()


# ----------------------------------------------------------------------
# Packed state + interning pool
# ----------------------------------------------------------------------

class PackedState:
    """One interned sparse state: sorted index array + aligned amplitudes.

    Instances are only created by :class:`StatePool`, which guarantees one
    object per distinct quantized state, so ``a is b`` is the equality fast
    path and ``hash()`` returns the precomputed 64-bit structural hash.
    """

    __slots__ = ("n", "idx", "amp", "qamp", "payload", "hash64",
                 "_bits", "_counts", "_entangled")

    def __init__(self, n: int, idx: np.ndarray, amp: np.ndarray,
                 qamp: np.ndarray, payload: bytes, hash64: int):
        self.n = n
        self.idx = idx
        self.amp = amp
        self.qamp = qamp
        self.payload = payload
        self.hash64 = hash64
        self._bits: np.ndarray | None = None
        self._counts: list[int] | None = None
        self._entangled: tuple[int, ...] | None = None

    @property
    def m(self) -> int:
        """Cardinality ``m = |S(psi)|``."""
        return len(self.idx)

    @property
    def bits(self) -> np.ndarray:
        """The paper's ``n x m`` bit matrix (row ``q`` = column of qubit
        ``q`` across the sorted index set), computed once."""
        if self._bits is None:
            shifts = np.arange(self.n - 1, -1, -1,
                               dtype=np.int64)[:, None]
            self._bits = ((self.idx[None, :] >> shifts) & 1).astype(np.int64)
        return self._bits

    @property
    def column_counts(self) -> list[int]:
        """Per-qubit column weight of the bit matrix, computed once.

        Derived from the index list directly (not via :attr:`bits`), so
        states that are generated but never expanded — the bulk of any A*
        frontier — never materialize the bit matrix at all.
        """
        if self._counts is None:
            if self._bits is not None:
                self._counts = self._bits.sum(axis=1).tolist()
            else:
                fc = _fastcore.active
                if fc is not None:
                    self._counts = fc.column_counts(self.n, self.idx)
                else:
                    il = self.idx.tolist()
                    self._counts = [
                        sum((i >> shift) & 1 for i in il)
                        for shift in range(self.n - 1, -1, -1)]
        return self._counts

    def to_qstate(self) -> QState:
        """Rebuild the dict-backed view (raw amplitudes, no re-validation)."""
        return QState.from_packed(self.n, self.idx, self.amp)

    def __hash__(self) -> int:
        return self.hash64

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, PackedState):
            return NotImplemented
        return self.n == other.n and self.payload == other.payload

    def __repr__(self) -> str:
        return f"PackedState(n={self.n}, m={self.m})"


class StatePool:
    """Interning pool keyed by the 64-bit structural hash.

    Hash collisions chain into a short list and are resolved by payload
    comparison, so two distinct states never alias even if the 64-bit hash
    collides (exercised by the regression test that pins the hash).
    """

    __slots__ = ("_table", "interned", "hits", "hash_collisions")

    def __init__(self) -> None:
        self._table: dict[int, object] = {}
        self.interned = 0
        self.hits = 0
        self.hash_collisions = 0

    def __len__(self) -> int:
        return self.interned

    def intern(self, n: int, idx: np.ndarray, amp: np.ndarray,
               qamp: np.ndarray | None = None) -> PackedState:
        """Return the unique :class:`PackedState` for sorted ``(idx, amp)``.

        ``qamp`` may be supplied when the caller already holds the quantized
        amplitudes (e.g. a CX/X move only permutes the parent's), skipping
        the per-intern rounding pass.
        """
        if qamp is None:
            qamp = quantize_array(amp)
        payload = _payload(n, idx, qamp)
        return self._intern(n, idx, amp, qamp, payload, copy=False)

    def intern_payload(self, n: int, idx: np.ndarray, amp: np.ndarray,
                       qamp: np.ndarray, payload: bytes) -> PackedState:
        """Like :meth:`intern` for callers holding a precomputed payload
        over scratch-buffer rows.

        The arrays are only copied out of the scratch when the state is
        actually new — the batched CX expansion reuses one ``(K, m)``
        scratch for all moves of an expansion, and most rows dedupe.
        """
        return self._intern(n, idx, amp, qamp, payload, copy=True)

    def _intern(self, n: int, idx: np.ndarray, amp: np.ndarray,
                qamp: np.ndarray, payload: bytes, copy: bool) -> PackedState:
        h = state_hash64(payload)
        entry = self._table.get(h)
        if entry is None:
            if copy:
                idx, amp, qamp = idx.copy(), amp.copy(), qamp.copy()
            state = PackedState(n, idx, amp, qamp, payload, h)
            self._table[h] = state
            self.interned += 1
            return state
        if isinstance(entry, PackedState):
            if entry.n == n and entry.payload == payload:
                self.hits += 1
                return entry
            chain = [entry]
            self._table[h] = chain
            self.hash_collisions += 1
        else:
            chain = entry  # type: ignore[assignment]
            for state in chain:
                if state.n == n and state.payload == payload:
                    self.hits += 1
                    return state
            self.hash_collisions += 1
        if copy:
            idx, amp, qamp = idx.copy(), amp.copy(), qamp.copy()
        state = PackedState(n, idx, amp, qamp, payload, h)
        chain.append(state)
        self.interned += 1
        return state

    def from_qstate(self, state: QState) -> PackedState:
        """Bridge a dict-backed state into the pool."""
        idx, amp = state.packed_arrays()
        return self.intern(state.num_qubits, idx, amp)


# ----------------------------------------------------------------------
# Search-side containers
# ----------------------------------------------------------------------

class BoundedCache:
    """Insertion-ordered cache with size-capped FIFO eviction + hit stats."""

    __slots__ = ("cap", "data", "hits", "misses", "evictions")

    def __init__(self, cap: int):
        self.cap = max(1, int(cap))
        self.data: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        val = self.data.get(key)
        if val is None:
            self.misses += 1
        else:
            self.hits += 1
        return val

    def put(self, key, value) -> None:
        if len(self.data) >= self.cap:
            drop = max(1, self.cap // 8)
            for stale in list(islice(iter(self.data), drop)):
                del self.data[stale]
            self.evictions += drop
        self.data[key] = value


class CanonKey:
    """Canonical-class key: a 64-bit lookup hash plus full identity data.

    ``h`` is the 64-bit fast-lookup hash; ``full`` carries the complete
    identity — the exact serialized state payload at ``CanonLevel.NONE``,
    or the 128-bit orbit hash (as an int) for the U2/PU2 levels (see
    :class:`CanonContext` for the collision discussion).  Equality always
    compares ``full``, so the 64-bit hash never merges keys on its own.
    """

    __slots__ = ("n", "h", "full")

    def __init__(self, n: int, h: int, full):
        self.n = n
        self.h = h
        self.full = full

    def __hash__(self) -> int:
        return self.h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CanonKey):
            return NotImplemented
        return self.n == other.n and self.full == other.full

    def __repr__(self) -> str:
        return f"CanonKey(n={self.n}, h={self.h:#018x})"


class HashKeyedMap:
    """Map keyed by the 64-bit hash of a :class:`CanonKey`.

    The primary map is int-keyed (cheapest possible lookup — the native
    ``U64Map`` when the extension is loaded, a plain dict otherwise); a
    genuine 64-bit collision spills the newcomer into a secondary dict
    keyed by the full :class:`CanonKey`, preserving exact-map semantics.
    """

    __slots__ = ("_primary", "_spill", "collisions")

    def __init__(self) -> None:
        fc = _fastcore.active
        self._primary = fc.U64Map() if fc is not None else {}
        self._spill: dict[CanonKey, object] = {}
        self.collisions = 0

    def __len__(self) -> int:
        return len(self._primary) + len(self._spill)

    def get(self, key: CanonKey, default=None):
        entry = self._primary.get(key.h)
        if entry is None:
            return default
        holder, value = entry
        if holder is key or holder == key:
            return value
        return self._spill.get(key, default)

    def put(self, key: CanonKey, value) -> None:
        entry = self._primary.get(key.h)
        if entry is None:
            self._primary[key.h] = (key, value)
            return
        holder, _ = entry
        if holder is key or holder == key:
            self._primary[key.h] = (holder, value)
            return
        if key not in self._spill:
            # count distinct spilled keys, not re-puts of already-spilled
            # ones — re-putting is an update, not a new collision
            self.collisions += 1
        self._spill[key] = value


# ----------------------------------------------------------------------
# Vectorized state transforms
# ----------------------------------------------------------------------

def apply_x_packed(pool: StatePool, ps: PackedState, qubit: int) -> PackedState:
    mask = 1 << (ps.n - 1 - qubit)
    out = ps.idx ^ mask
    order = np.argsort(out)
    # an X move permutes amplitudes, so the parent's quantized values carry
    return pool.intern(ps.n, out[order], ps.amp[order], ps.qamp[order])


def apply_cx_packed(pool: StatePool, ps: PackedState, control: int,
                    target: int, phase: int) -> PackedState:
    n = ps.n
    cshift = n - 1 - control
    tmask = 1 << (n - 1 - target)
    flip = ((ps.idx >> cshift) & 1) == phase
    out = np.where(flip, ps.idx ^ tmask, ps.idx)
    order = np.argsort(out)
    return pool.intern(n, out[order], ps.amp[order], ps.qamp[order])


def _cx_move_arrays(moves: list[CXMove]
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(controls, phases, targets)`` int64 arrays of a CX move list."""
    controls = np.fromiter((mv.control for mv in moves), dtype=np.int64,
                           count=len(moves))
    phases = np.fromiter((mv.phase for mv in moves), dtype=np.int64,
                         count=len(moves))
    targets = np.fromiter((mv.target for mv in moves), dtype=np.int64,
                          count=len(moves))
    return controls, phases, targets


def _batch_cx_successors(pool: StatePool, ps: PackedState,
                         moves: list[CXMove],
                         arrays: tuple[np.ndarray, np.ndarray,
                                       np.ndarray] | None = None
                         ) -> list[PackedState]:
    """Apply every CX move of one expansion in a single array pass.

    One ``where`` / ``argsort`` / ``take_along_axis`` over the ``(K, m)``
    move-by-index matrix replaces ``K`` per-move NumPy round trips; the
    per-row results are interned individually (CX permutes amplitudes, so
    the parent's quantized values are reused).  With the native extension
    the whole pass — flip, sort, gather, payload serialization — runs in C
    over one reused ``(K, m)`` scratch, and the bit matrix is never
    materialized.
    """
    n = ps.n
    if arrays is None:
        arrays = _cx_move_arrays(moves)
    controls, phases, targets = arrays
    fc = _fastcore.active
    if fc is not None:
        num_moves, m = len(moves), ps.m
        oi = np.empty((num_moves, m), dtype=np.int64)
        oa = np.empty((num_moves, m), dtype=np.float64)
        oq = np.empty((num_moves, m), dtype=np.float64)
        payloads = fc.cx_batch(n, ps.idx, ps.amp, ps.qamp,
                               controls, phases, targets, oi, oa, oq)
        return [pool.intern_payload(n, oi[k], oa[k], oq[k], payloads[k])
                for k in range(num_moves)]
    idx, bits = ps.idx, ps.bits
    flip = bits[controls] == phases[:, None]            # (K, m)
    tmasks = np.int64(1) << (n - 1 - targets)
    out = np.where(flip, idx[None, :] ^ tmasks[:, None], idx[None, :])
    order = np.argsort(out, axis=1)
    sorted_idx = np.take_along_axis(out, order, axis=1)
    amps = ps.amp[order]
    qamps = ps.qamp[order]
    return [pool.intern(n, sorted_idx[k], amps[k], qamps[k])
            for k in range(len(moves))]


#: Below this cardinality the scalar merge application beats the NumPy one.
_SCALAR_MERGE_LIMIT = 64


def _merge_arrays_scalar(ps: PackedState, cmask: int, cval: int,
                         target: int, theta: float
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Plain-Python merge application for sparse cardinalities.

    Arithmetic is operation-identical to the NumPy path (same ``c*a0 -
    s*a1`` expressions on the same float64 values), so the two paths
    produce bit-identical states and may be mixed freely.
    """
    n = ps.n
    tmask = 1 << (n - 1 - target)
    out: list[tuple[int, float]] = []
    group0: dict[int, float] = {}
    group1: dict[int, float] = {}
    for i, a in zip(ps.idx.tolist(), ps.amp.tolist()):
        if (i & cmask) != cval:
            out.append((i, a))
        elif i & tmask:
            group1[i ^ tmask] = a
        else:
            group0[i] = a
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    for i, a0 in group0.items():
        a1 = group1.pop(i, 0.0)
        new0 = c * a0 - s * a1
        new1 = s * a0 + c * a1
        if abs(new0) > ATOL:
            out.append((i, new0))
        if abs(new1) > ATOL:
            out.append((i | tmask, new1))
    for i, a1 in group1.items():  # lone |1> partners
        new0 = c * 0.0 - s * a1
        new1 = s * 0.0 + c * a1
        if abs(new0) > ATOL:
            out.append((i, new0))
        if abs(new1) > ATOL:
            out.append((i | tmask, new1))
    out.sort()
    m = len(out)
    idx_arr = np.fromiter((i for i, _ in out), dtype=np.int64, count=m)
    amp_arr = np.fromiter((a for _, a in out), dtype=np.float64, count=m)
    return idx_arr, amp_arr


def _merge_arrays_numpy(ps: PackedState, cmask: int, cval: int,
                        target: int, theta: float
                        ) -> tuple[np.ndarray, np.ndarray]:
    """NumPy merge application for dense cardinalities."""
    n = ps.n
    idx, amp = ps.idx, ps.amp
    if cmask:
        sel = (idx & cmask) == cval
        keep_idx, keep_amp = idx[~sel], amp[~sel]
        ci, ca = idx[sel], amp[sel]
    else:
        keep_idx = idx[:0]
        keep_amp = amp[:0]
        ci, ca = idx, amp
    tshift = n - 1 - target
    tmask = 1 << tshift
    b1 = ((ci >> tshift) & 1).astype(bool)
    partner = ci ^ tmask
    if len(ci):
        pos = np.searchsorted(ci, partner)
        pos_c = np.minimum(pos, len(ci) - 1)
        found = ci[pos_c] == partner
    else:
        pos_c = np.zeros(0, dtype=np.int64)
        found = np.zeros(0, dtype=bool)
    m0 = ~b1
    a1_of_m0 = np.where(found[m0], ca[pos_c[m0]], 0.0)
    lone1 = b1 & ~found
    i0 = np.concatenate([ci[m0], partner[lone1]])
    a0 = np.concatenate([ca[m0], np.zeros(int(lone1.sum()))])
    a1 = np.concatenate([a1_of_m0, ca[lone1]])
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    new0 = c * a0 - s * a1
    new1 = s * a0 + c * a1
    k0 = np.abs(new0) > ATOL
    k1 = np.abs(new1) > ATOL
    out_idx = np.concatenate([keep_idx, i0[k0], i0[k1] ^ tmask])
    out_amp = np.concatenate([keep_amp, new0[k0], new1[k1]])
    order = np.argsort(out_idx)
    return out_idx[order], out_amp[order]


def _merge_arrays(ps: PackedState, controls: tuple[tuple[int, int], ...],
                  target: int, theta: float
                  ) -> tuple[np.ndarray, np.ndarray]:
    """``(idx, amp)`` of a merge result, not yet interned.

    Kept separate from the interning wrapper so the frontier-batched
    expansion can quantize all merge results of one expansion in a single
    array pass before interning.
    """
    n = ps.n
    cmask = 0
    cval = 0
    for q, p in controls:
        shift = n - 1 - q
        cmask |= 1 << shift
        cval |= p << shift
    fc = _fastcore.active
    if fc is not None:
        ib, ab = fc.merge_apply(n, ps.idx, ps.amp, cmask, cval,
                                n - 1 - target, theta, ATOL)
        return (np.frombuffer(ib, dtype=np.int64),
                np.frombuffer(ab, dtype=np.float64))
    if ps.m <= _SCALAR_MERGE_LIMIT:
        return _merge_arrays_scalar(ps, cmask, cval, target, theta)
    return _merge_arrays_numpy(ps, cmask, cval, target, theta)


def apply_merge_packed(pool: StatePool, ps: PackedState,
                       controls: tuple[tuple[int, int], ...], target: int,
                       theta: float) -> PackedState:
    """Vectorized twin of :func:`repro.core.moves.apply_controlled_ry`."""
    idx, amp = _merge_arrays(ps, controls, target, theta)
    return pool.intern(ps.n, idx, amp)


def apply_move_packed(pool: StatePool, ps: PackedState,
                      move: Move) -> PackedState:
    """Apply any backward move to a packed state (vectorized dispatch)."""
    if isinstance(move, CXMove):
        return apply_cx_packed(pool, ps, move.control, move.target, move.phase)
    if isinstance(move, MergeMove):
        return apply_merge_packed(pool, ps, move.controls, move.target,
                                  move.theta)
    if isinstance(move, XMove):
        return apply_x_packed(pool, ps, move.qubit)
    return pool.from_qstate(move.apply(ps.to_qstate()))


# ----------------------------------------------------------------------
# Separability / heuristic
# ----------------------------------------------------------------------

def _ratio_balanced(idx: np.ndarray, amp: np.ndarray, shift: int
                    ) -> float | None:
    """Cofactor proportionality for a qubit whose column is balanced.

    Mirrors the tail of :func:`repro.states.analysis._cofactor_ratio`: the
    two cofactor index sets must match and the amplitude ratios agree with
    the first one to ``1e-8`` relative tolerance.  Runs as plain Python
    loops — at sparse cardinalities the array round trips cost more than
    the arithmetic they replace.
    """
    bit = 1 << shift
    i0: list[int] = []
    a0: list[float] = []
    i1: list[int] = []
    a1: list[float] = []
    for i, a in zip(idx.tolist(), amp.tolist()):
        if i & bit:
            i1.append(i ^ bit)
            a1.append(a)
        else:
            i0.append(i)
            a0.append(a)
    if i0 != i1:
        return None
    ref = a1[0] / a0[0]
    tol = 1e-8 * max(1.0, abs(ref))
    for x, y in zip(a0, a1):
        if abs(y / x - ref) > tol:
            return None
    return ref


def entangled_qubits_packed(ps: PackedState) -> tuple[int, ...]:
    """The non-separable qubits (cached on the interned object).

    The topology-aware heuristic needs the *set*, not just the count —
    its matching bound lives on the coupling subgraph these qubits induce.
    """
    if ps._entangled is None:
        fc = _fastcore.active
        if fc is not None:
            ps._entangled = fc.entangled_qubits(ps.n, ps.idx, ps.amp)
            return ps._entangled
        counts = ps.column_counts
        m = ps.m
        entangled = []
        for q, ones in enumerate(counts):
            if ones == 0 or ones == m:
                continue  # pinned at |0> / |1>: separable
            if 2 * ones != m or _ratio_balanced(
                    ps.idx, ps.amp, ps.n - 1 - q) is None:
                entangled.append(q)
        ps._entangled = tuple(entangled)
    return ps._entangled


def num_entangled_packed(ps: PackedState) -> int:
    """Count of non-separable qubits (cached on the interned object)."""
    return len(entangled_qubits_packed(ps))


def entanglement_h_packed(ps: PackedState) -> float:
    """The paper's admissible ``ceil(k/2)`` bound on a packed state."""
    return float((num_entangled_packed(ps) + 1) // 2)


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------

def _pin_separable_arrays(ps: PackedState
                          ) -> tuple[np.ndarray, np.ndarray, bool]:
    """Array twin of :func:`repro.core.canonical.pin_separable_qubits`.

    Returns ``(idx, amp, pinned_any)``; when nothing was pinned the input
    arrays are returned as-is so the caller can keep reusing the state's
    cached bit matrix.  The first sweep runs off the cached column counts,
    which rejects the (typical) nothing-separable state in one pass of
    integer comparisons.
    """
    n = ps.n
    idx, amp = ps.idx, ps.amp
    fc = _fastcore.active
    if fc is not None:
        res = fc.pin_separable(n, idx, amp, ps.column_counts)
        if res is None:
            return idx, amp, False
        ib, ab = res
        return (np.frombuffer(ib, dtype=np.int64),
                np.frombuffer(ab, dtype=np.float64), True)
    counts = ps.column_counts
    changed = True
    pinned_any = False
    while changed:
        changed = False
        m = len(idx)
        for q in range(n):
            shift = n - 1 - q
            if counts is not None:
                ones = counts[q]
            else:
                ones = int(((idx >> shift) & 1).sum())
            if ones == 0:
                continue  # already pinned at |0>
            if ones == m:
                out = idx ^ (1 << shift)
                order = np.argsort(out)
                idx, amp = out[order], amp[order]
                changed = pinned_any = True
                counts = None  # stale after any change
                continue
            if 2 * ones != m:
                continue  # entangled
            ratio = _ratio_balanced(idx, amp, shift)
            if ratio is None:
                continue  # entangled
            scale = math.sqrt(1.0 + ratio * ratio)
            keep = ((idx >> shift) & 1) == 0
            idx, amp = idx[keep], amp[keep] * scale
            changed = pinned_any = True
            counts = None
            m = len(idx)
    return idx, amp, pinned_any


def _rowwise_less(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise-lexicographic ``a[r] < b[r]`` over matching 2-D rows."""
    neq = a != b
    any_neq = neq.any(axis=1)
    first = np.argmax(neq, axis=1)
    rows = np.arange(len(a))
    return any_neq & (a[rows, first] < b[rows, first])


def _cell_symmetric_arrays(idx: np.ndarray, qamp: np.ndarray, n: int,
                           cell: list[int]) -> bool:
    """Array twin of ``canonical._cell_symmetric``: exact invariance under
    every adjacent transposition of the cell (hence its full symmetric
    group).

    The test is a *shortcut*, not a class decision: when it fires, the one
    emitted ordering produces the same minimized key as enumerating every
    intra-cell permutation would (a U(2)-symmetric cell makes all of them
    equivalent), so class members that fail the exact test and enumerate
    instead still arrive at the identical key.  It must never be used to
    steer anything else (e.g. whether refinement runs) — that would leak
    its flip-sensitivity into the class partition."""
    fc = _fastcore.active
    if fc is not None:
        return fc.cell_symmetric(n, idx, qamp, list(cell))
    for a, b in zip(cell, cell[1:]):
        sa = n - 1 - a
        sb = n - 1 - b
        diff = ((idx >> sa) ^ (idx >> sb)) & 1
        swapped = idx ^ (diff * ((1 << sa) | (1 << sb)))
        order = np.argsort(swapped)
        if not np.array_equal(swapped[order], idx):
            return False
        if not np.array_equal(qamp[order], qamp):
            return False
    return True


def _partition_of(tags: list) -> list[tuple[int, ...]]:
    groups: dict = {}
    for q, tag in enumerate(tags):
        groups.setdefault(tag, []).append(q)
    return sorted(tuple(cell) for cell in groups.values())


def _wl_refine(idx: np.ndarray, bits: np.ndarray, ranks: np.ndarray, n: int,
               sig_tags: list) -> list[int]:
    """Iterated pairwise refinement of the qubit-signature partition.

    The analogue of ``canonical._pair_signature`` pushed to a fixpoint
    (Weisfeiler-Lehman style): for every ordered qubit pair, a count table
    over ``(|amp| rank, bit_a, bit_b)`` minimized over the four flip
    combinations; each round re-tags a qubit with the sorted multiset of
    ``(pair table, partner tag)`` blobs.  Every ingredient is permutation-
    and flip-covariant, so the final tags are class invariants — refining
    cells with them never splits an equivalence class, it only shrinks the
    candidate-ordering enumeration.
    """
    fc = _fastcore.active
    if fc is not None:
        pair_ids = fc.wl_pair_ids(n, idx, ranks)
    else:
        width = 4 * (int(ranks.max()) + 1)
        key3 = (ranks[None, None, :] * 4 + bits[:, None, :] * 2
                + bits[None, :, :])
        pair_base = (np.arange(n * n) * width).reshape(n, n, 1)
        table = np.bincount((pair_base + key3).ravel(),
                            minlength=n * n * width).reshape(n, n, width)
        cols = np.arange(width)
        best = table
        for flip in (1, 2, 3):
            variant = table[..., cols ^ flip]
            less = _rowwise_less(variant.reshape(-1, width),
                                 best.reshape(-1, width)).reshape(n, n)
            best = np.where(less[..., None], variant, best)
        # Content-derived integer tags: equal content always hashes
        # equally, so tag equality — and the final sort of cells by tag —
        # is class covariant.  (Only within-process stability is needed;
        # keys never leave the search.)
        pair_ids = [[hash(best[q, p].tobytes()) for p in range(n)]
                    for q in range(n)]
    tags = [hash(tag) for tag in sig_tags]
    partition = _partition_of(tags)
    for _round in range(n):
        new_tags = []
        for q in range(n):
            rows = sorted((pair_ids[q][p], tags[p])
                          for p in range(n) if p != q)
            new_tags.append(hash((tags[q], tuple(rows))))
        new_partition = _partition_of(new_tags)
        tags = new_tags
        if new_partition == partition:
            break  # stable: further rounds cannot split anything
        partition = new_partition
    return tags


def _dense_ranks(absamp: np.ndarray) -> np.ndarray:
    """Dense integer ranks of ``absamp`` (order- and equality-preserving)."""
    if (absamp == absamp[0]).all():
        # uniform-magnitude state (the whole Dicke family): one rank
        return np.zeros(len(absamp), dtype=np.int64)
    order = np.argsort(absamp, kind="stable")
    sorted_vals = absamp[order]
    steps = np.empty(len(absamp), dtype=np.int64)
    steps[0] = 0
    np.cumsum(sorted_vals[1:] != sorted_vals[:-1], out=steps[1:])
    ranks = np.empty(len(absamp), dtype=np.int64)
    ranks[order] = steps
    return ranks


#: Refine the tie partition whenever the ordering enumeration would touch
#: more candidate elements than this (orderings x masks x entries).
_REFINE_WORK_LIMIT = 600


def _orderings_packed(idx: np.ndarray, qamp: np.ndarray, n: int,
                      perm_cap: int, bits: np.ndarray | None,
                      absamp: np.ndarray,
                      num_heavy: int = 1) -> list[list[int]]:
    """Candidate qubit orderings (vectorized analogue of
    ``canonical._permutation_candidates``).

    Same construction — flip-invariant qubit signatures, pairwise
    refinement of oversized tied cells, symmetric-cell shortcut, capped
    enumeration inside residual ties — with every fingerprint a count
    table (an exact stand-in for the reference's sorted multisets) and
    cells ordered by byte serialization (a kernel-native but equally
    class-invariant total order)."""
    m = len(idx)
    fc = _fastcore.active
    # fast path: pairwise-distinct flip-invariant column weights already
    # order the qubits completely — no histograms, no ties, one ordering
    if bits is None:
        counts = fc.column_counts(n, idx)
        weights = [c if 2 * c <= m else m - c for c in counts]
    else:
        counts = bits.sum(axis=1)
        weights = np.minimum(counts, m - counts).tolist()
    if len(set(weights)) == n:
        return [sorted(range(n), key=weights.__getitem__)]
    # per-qubit signature: commutative hash of the column's |amp| multiset,
    # flip-normalized by taking the smaller of (bit=1 sum, bit=0 sum).
    # A hash tie can only merge cells — covariant, hence still sound; the
    # enumeration below just visits a few extra orderings.
    if fc is not None:
        sig_tags = fc.sig_tags(n, idx, absamp)
    else:
        with np.errstate(over="ignore"):
            mixed = _mix64(absamp.view(np.uint64), _MIX_A1, _MIX_A2)
            column_sums = bits.astype(np.uint64) @ mixed
            total = mixed.sum()
            flip_sums = total - column_sums
        sig_tags = [min(int(a), int(b))
                    for a, b in zip(column_sums.tolist(), flip_sums.tolist())]

    cells: dict[int, list[int]] = {}
    for q in range(n):
        cells.setdefault(sig_tags[q], []).append(q)

    product = 1
    for cell in cells.values():
        for i in range(2, len(cell) + 1):
            product *= i
    small = product <= perm_cap
    est_work = min(product, perm_cap) * num_heavy * m
    if n > 2 and (not small or est_work > _REFINE_WORK_LIMIT) and \
            product > 1:
        # Iterated pairwise refinement splits most oversized ties, so the
        # capped permutation enumeration below rarely fires.  The trigger
        # (tie structure, heavy-mask count, cardinality) is a class
        # invariant; per-cell shortcuts below must not feed back into it.
        ranks = _dense_ranks(absamp)
        tags = _wl_refine(idx, bits, ranks, n, sig_tags)
        refined: dict[bytes, list[int]] = {}
        for q in range(n):
            refined.setdefault(tags[q], []).append(q)
        cells = refined
    ordered_cells = [cells[tag] for tag in sorted(cells)]

    per_cell_options: list[list[tuple[int, ...]]] = []
    multi = False
    total = 1
    probe_symmetry = not small or est_work > _REFINE_WORK_LIMIT // 2
    for cell in ordered_cells:
        if len(cell) == 1:
            per_cell_options.append([tuple(cell)])
            continue
        # Enumerating a symmetric cell's orderings is harmless (the orbit
        # hash deduplicates equivalent orderings), so the exact-symmetry
        # probe is only worth its cost when the cube would be expensive.
        if probe_symmetry and _cell_symmetric_arrays(idx, qamp, n, cell):
            per_cell_options.append([tuple(cell)])
            continue
        budget = max(1, perm_cap // total)
        options = list(islice(permutations(cell), budget))
        per_cell_options.append(options)
        total *= len(options)
        multi = True

    if not multi:
        return [[q for cell in ordered_cells for q in cell]]
    candidates: list[list[int]] = []
    for combo in iter_product(*per_cell_options):
        candidates.append([q for part in combo for q in part])
        if len(candidates) >= perm_cap:
            break
    return candidates


_IDENTITY_ORDERING: dict[int, list[int]] = {}


def _identity(n: int) -> list[int]:
    ordering = _IDENTITY_ORDERING.get(n)
    if ordering is None:
        ordering = _IDENTITY_ORDERING[n] = list(range(n))
    return ordering


# splitmix64 finalizer constants for the two independent orbit-hash lanes,
# single-sourced from repro.core.splitmix (shared with the C extension)
_MIX_A1 = np.uint64(MIX_A1)
_MIX_A2 = np.uint64(MIX_A2)
_MIX_B1 = np.uint64(MIX_B1)
_MIX_B2 = np.uint64(MIX_B2)
_GOLDEN = np.uint64(GOLDEN)
_ORBIT_MUL = np.uint64(ORBIT_MUL)
_U64 = U64_MASK


def _mix64(z: np.ndarray, c1: np.uint64, c2: np.uint64) -> np.ndarray:
    """Vectorized splitmix64-style finalizer (wraps modulo 2^64)."""
    z = (z + _GOLDEN) & np.uint64(_U64)
    z = ((z ^ (z >> np.uint64(30))) * c1)
    z = ((z ^ (z >> np.uint64(27))) * c2)
    return z ^ (z >> np.uint64(31))


def _mix_scalar_a(z: int, _g=GOLDEN, _c1=MIX_A1, _c2=MIX_A2) -> int:
    """Scalar twin of :func:`_mix64` with lane-A constants (mod 2^64)."""
    z = (z + _g) & _U64
    z = ((z ^ (z >> 30)) * _c1) & _U64
    z = ((z ^ (z >> 27)) * _c2) & _U64
    return z ^ (z >> 31)


def _mix_scalar_b(z: int, _g=GOLDEN, _c1=MIX_B1, _c2=MIX_B2) -> int:
    """Scalar twin of :func:`_mix64` with lane-B constants (mod 2^64)."""
    z = (z + _g) & _U64
    z = ((z ^ (z >> 30)) * _c1) & _U64
    z = ((z ^ (z >> 27)) * _c2) & _U64
    return z ^ (z >> 31)


def _orbit_hash_scalar(permuted_rows: list[list[int]], heavy_pos: np.ndarray,
                       fb_plus: list[int], fb_minus: list[int],
                       neg_mask: list[bool]) -> int:
    """Scalar twin of the batched orbit hash for tiny candidate sets.

    Bit-for-bit identical to the NumPy path (all arithmetic mod 2^64, the
    splitmix rounds inlined), so mixing the two paths within one search —
    class members can take different paths when their candidate counts
    differ — still produces identical keys.
    """
    heavy = heavy_pos.tolist()
    # bind the shared splitmix constants as locals for the inlined rounds
    g, a1c, a2c = GOLDEN, MIX_A1, MIX_A2
    b1c, b2c, omul = MIX_B1, MIX_B2, ORBIT_MUL
    distinct = set()
    for row in permuted_rows:
        # covariant mask prefilter: keep translations minimizing the
        # second-smallest translated index (ties all kept)
        if len(row) > 1:
            best_second = None
            kept: list[int] = []
            for h, hp in enumerate(heavy):
                mask = row[hp]
                lo = hi = None
                for value in row:
                    t = value ^ mask
                    if lo is None or t < lo:
                        lo, hi = t, lo
                    elif hi is None or t < hi:
                        hi = t
                if best_second is None or hi < best_second:
                    best_second = hi
                    kept = [h]
                elif hi == best_second:
                    kept.append(h)
        else:
            kept = list(range(len(heavy)))
        acc_a = 0
        acc_b = 0
        for h in kept:
            mask = row[heavy[h]]
            fb = fb_minus if neg_mask[h] else fb_plus
            cand_a = 0
            cand_b = 0
            for j, value in enumerate(row):
                z = ((((value ^ mask) * omul) & _U64)
                     ^ fb[j])
                z = (z + g) & _U64
                z = ((z ^ (z >> 30)) * a1c) & _U64
                z = ((z ^ (z >> 27)) * a2c) & _U64
                a = z ^ (z >> 31)
                cand_a = (cand_a + a) & _U64
                z = (a + g) & _U64
                z = ((z ^ (z >> 30)) * b1c) & _U64
                z = ((z ^ (z >> 27)) * b2c) & _U64
                cand_b = (cand_b + (z ^ (z >> 31))) & _U64
            # finalize per candidate so sums do not telescope across the
            # candidate grouping (the star/non-star counterexample)
            acc_a = (acc_a + _mix_scalar_a(cand_a)) & _U64
            acc_b = (acc_b + _mix_scalar_b(cand_b)) & _U64
        distinct.add((acc_a, acc_b))
    total_a = 0
    total_b = 0
    for a, b in distinct:
        # finalize per ordering for the same reason, one level up
        total_a = (total_a + _mix_scalar_a(a)) & _U64
        total_b = (total_b + _mix_scalar_b(b)) & _U64
    return (total_a << 64) | total_b


#: Below this many candidate elements (orderings x masks x entries) the
#: scalar orbit hash beats the NumPy kernel-launch overhead.
_SCALAR_ORBIT_LIMIT = 64


def _orbit_hash(idx: np.ndarray, qamp: np.ndarray, absamp: np.ndarray,
                orderings: list[list[int]], n: int, tie_cap: int,
                bits: np.ndarray | None,
                heavy_pos: np.ndarray | None = None) -> int:
    """128-bit commutative hash of the class-covariant candidate set.

    Every candidate is ``perm(S) ^ mask`` for a heavy-amplitude mask (the
    flip-covariant rule of ``canonical._xflip_min_raw``) with amplitudes
    sign-fixed by the mask element's sign.  Instead of sorting candidates
    and taking a lexicographic minimum, each candidate contributes a
    *commutative* (order-free) sum of per-element mixes, and the key is the
    sum over the *distinct* per-ordering hashes — no per-candidate sort is
    ever performed.  The candidate set is a class invariant, hence so is
    the hash; two different classes only share a key on a 128-bit hash
    collision (see :class:`CanonContext`).

    Distinct-ordering deduplication matters: a U(2)-symmetric qubit cell
    contributes one ordering when the symmetric shortcut fires and ``k!``
    equivalent orderings when a flipped class member enumerates them — as
    a *set* of per-ordering hashes both collapse to the same value.
    """
    m = len(idx)
    identity_only = len(orderings) == 1 and orderings[0] == _identity(n)
    if heavy_pos is None:
        heavy_pos = np.flatnonzero(absamp == absamp.max())[:max(1, tie_cap)]
    fc = _fastcore.active
    if fc is not None:
        # one native pass replaces both the scalar and the NumPy variants
        # (prefilter, both lanes, per-candidate and per-ordering finalize)
        if identity_only:
            rows = idx.view(np.uint64)[None, :]
        else:
            weights = 1 << np.arange(n - 1, -1, -1)
            perms = np.asarray(orderings, dtype=np.intp)
            rows = np.ascontiguousarray(
                np.einsum("i,kim->km", weights, bits[perms]).view(np.uint64))
        return fc.orbit_hash(
            rows, np.ascontiguousarray(heavy_pos, dtype=np.int64), qamp)
    num_masks = len(heavy_pos)
    if len(orderings) * num_masks * m <= _SCALAR_ORBIT_LIMIT:
        if identity_only:
            rows = [idx.tolist()]
        else:
            weights = 1 << np.arange(n - 1, -1, -1)
            perms = np.asarray(orderings, dtype=np.intp)
            rows = np.einsum("i,kim->km", weights, bits[perms]).tolist()
        return _orbit_hash_scalar(
            rows, heavy_pos,
            qamp.view(np.uint64).tolist(),
            (-qamp).view(np.uint64).tolist(),
            (qamp[heavy_pos] < 0.0).tolist())
    if identity_only:
        permuted = idx.view(np.uint64)[None, :]
    else:
        weights = 1 << np.arange(n - 1, -1, -1)
        perms = np.asarray(orderings, dtype=np.intp)
        permuted = np.einsum("i,kim->km", weights,
                             bits[perms]).view(np.uint64)
    num_orderings = len(orderings)
    masks = permuted[:, heavy_pos]                      # (K, H)
    neg_mask = qamp[heavy_pos] < 0.0                    # (H,)
    fb_plus = qamp.view(np.uint64)
    fb_minus = (-qamp).view(np.uint64)
    cand = permuted[:, None, :] ^ masks[:, :, None]     # (K, H, m)
    if m > 1:
        # covariant mask prefilter: keep translations minimizing the
        # second-smallest translated index (ties all kept)
        second = np.partition(cand, 1, axis=2)[:, :, 1]
        keep = second == second.min(axis=1, keepdims=True)
        if num_orderings == 1:
            hsel = np.flatnonzero(keep[0])
            cand_sel = cand[0, hsel]
        else:
            ksel, hsel = np.nonzero(keep)
            cand_sel = cand[ksel, hsel]                 # (S, m)
    else:
        ksel = np.repeat(np.arange(num_orderings), num_masks)
        hsel = np.tile(np.arange(num_masks), num_orderings)
        cand_sel = cand.reshape(-1, m)
    fb_sel = np.where(neg_mask[hsel][:, None], fb_minus, fb_plus)
    with np.errstate(over="ignore"):
        lane_a = _mix64(cand_sel * _ORBIT_MUL ^ fb_sel,
                        _MIX_A1, _MIX_A2)
        # second lane: an independent per-element finalization of lane a
        # (a joint collision then needs both element-sums to coincide)
        lane_b = _mix64(lane_a, _MIX_B1, _MIX_B2)
        # finalize per candidate so sums do not telescope across the
        # candidate grouping (the star/non-star counterexample)
        cand_fin_a = _mix64(lane_a.sum(axis=1), _MIX_A1, _MIX_A2)
        cand_fin_b = _mix64(lane_b.sum(axis=1), _MIX_B1, _MIX_B2)
        if num_orderings == 1:
            ord_a = int(cand_fin_a.sum())
            ord_b = int(cand_fin_b.sum())
            return ((_mix_scalar_a(ord_a) << 64) | _mix_scalar_b(ord_b))
        # per-ordering sums: nonzero() emits rows in ordering-major order,
        # so segment boundaries come from one searchsorted
        bounds = np.searchsorted(ksel, np.arange(num_orderings))
        acc_a = np.add.reduceat(cand_fin_a, bounds)
        acc_b = np.add.reduceat(cand_fin_b, bounds)
    distinct = set(zip(acc_a.tolist(), acc_b.tolist()))
    total_a = 0
    total_b = 0
    for a, b in distinct:
        # finalize per ordering for the same reason, one level up
        total_a = (total_a + _mix_scalar_a(a)) & _U64
        total_b = (total_b + _mix_scalar_b(b)) & _U64
    return (total_a << 64) | total_b


class CanonContext:
    """Per-search canonicalization engine with two memo tiers.

    Tier 1 memoizes keys per interned state (identity-keyed, bounded).
    Tier 2 exploits that the U(2) orbit hash (pin + X-translations of the
    identity ordering) is cheaper than the full permutation enumeration:
    the full PU2 key is computed once per *U(2) class* and shared by every
    member state, which in Dicke-family searches cuts full computations
    several-fold.  Both tiers only deduplicate identical key computations,
    so the class partition is unchanged.

    Class identity at the U2/PU2 levels is the 128-bit orbit hash —
    transposition-table style (Zobrist hashing): two inequivalent classes
    share a key only on a 128-bit collision (probability < 2**-90 for any
    realistic search), while state identity, parent chains, and circuit
    verification remain exact.  ``CanonLevel.NONE`` keys stay fully exact.

    ``store`` optionally plugs a persistent cross-search tier between the
    per-search memo and the computation (``get(ps)``/``put(ps, key)``,
    e.g. :class:`repro.core.memory.HashStore`): it is consulted on a tier-1
    miss and filled on a computation, so a warm store turns the expensive
    orbit-hash computation into a hash lookup across searches.  The store
    only deduplicates identical computations — the produced keys, and hence
    the class partition, are unchanged.

    ``topology`` restricts the PU2 permutation freedom to coupling-graph
    *automorphisms*: on a restricted device, relabeling qubits is free
    exactly when conjugating a native circuit by the permutation keeps
    every CNOT on a coupled pair, i.e. for graph automorphisms.  The
    candidate set then ranges over the (capped) automorphism group instead
    of the signature-guided orderings — a fixed, state-independent list,
    so class covariance is immediate, and truncation at ``perm_cap`` can
    only split classes (sound).  ``None`` (all-to-all, normalized by
    :func:`repro.arch.topologies.native_topology`) keeps the seed-exact
    path.  Keys produced under different topologies are different
    namespaces; :class:`repro.core.memory.SearchMemory` separates them by
    fingerprint.
    """

    __slots__ = ("level", "tie_cap", "perm_cap", "cache", "u2_cache",
                 "store", "full_computations", "topology", "_auto_orderings",
                 "timers")

    def __init__(self, level: CanonLevel, tie_cap: int, perm_cap: int,
                 cache_cap: int, store=None, topology=None):
        self.level = level
        self.tie_cap = tie_cap
        self.perm_cap = perm_cap
        self.cache = BoundedCache(cache_cap)
        self.u2_cache = BoundedCache(cache_cap)
        self.store = store
        self.topology = topology
        self._auto_orderings: list[list[int]] | None = None
        self.full_computations = 0
        #: optional profiling sink: a mutable mapping whose "hashing" entry
        #: accrues the orbit-hash seconds (set by the engine runtime under
        #: ``SearchConfig(profile=True)``; None = no timing overhead)
        self.timers = None

    def key(self, ps: PackedState) -> CanonKey:
        val = self.cache.get(ps)
        if val is None:
            if self.store is not None:
                val = self.store.get(ps)
                if val is None:
                    val = self._compute(ps)
                    self.store.put(ps, val)
            else:
                val = self._compute(ps)
            self.cache.put(ps, val)
        return val

    def _compute(self, ps: PackedState) -> CanonKey:
        n = ps.n
        level = self.level
        if level is CanonLevel.NONE:
            return CanonKey(n, ps.hash64, ps.payload)
        idx, amp, pinned = _pin_separable_arrays(ps)
        if pinned:
            qamp = quantize_array(amp)
        else:
            qamp = ps.qamp
        fc = _fastcore.active
        if fc is not None:
            # heavy-mask selection and row prep live inside the native
            # call, so the hot path touches no NumPy temporaries at all
            absamp = None
            heavy_pos = None
            if self.timers is not None:
                t0 = _perf_counter()
                u2_hash, num_heavy = fc.orbit_hash_state(
                    n, idx, qamp, self.tie_cap, None)
                self.timers["hashing"] = self.timers.get("hashing", 0.0) \
                    + _perf_counter() - t0
            else:
                u2_hash, num_heavy = fc.orbit_hash_state(
                    n, idx, qamp, self.tie_cap, None)
        else:
            absamp = np.abs(qamp)
            heavy_pos = np.flatnonzero(
                absamp == absamp.max())[:max(1, self.tie_cap)]
            num_heavy = len(heavy_pos)
            if self.timers is not None:
                t0 = _perf_counter()
                u2_hash = _orbit_hash(idx, qamp, absamp, [_identity(n)], n,
                                      self.tie_cap, None, heavy_pos)
                self.timers["hashing"] = self.timers.get("hashing", 0.0) \
                    + _perf_counter() - t0
            else:
                u2_hash = _orbit_hash(idx, qamp, absamp, [_identity(n)], n,
                                      self.tie_cap, None, heavy_pos)
        if level is CanonLevel.U2:
            return CanonKey(n, u2_hash & _U64, u2_hash)
        full = self.u2_cache.get(u2_hash)
        if full is None:
            full = self._compute_full(n, idx, qamp, absamp, pinned, ps,
                                      u2_hash, heavy_pos, num_heavy)
            self.u2_cache.put(u2_hash, full)
        return full

    def _automorphisms(self, n: int) -> list[list[int]]:
        if self._auto_orderings is None:
            self._auto_orderings = \
                self.topology.automorphism_orderings(self.perm_cap)
        return self._auto_orderings

    def _compute_full(self, n: int, idx: np.ndarray, qamp: np.ndarray,
                      absamp: np.ndarray | None, pinned: bool,
                      ps: PackedState, u2_hash: int,
                      heavy_pos: np.ndarray | None,
                      num_heavy: int) -> CanonKey:
        self.full_computations += 1
        fc = _fastcore.active
        if fc is not None:
            # the native ordering signatures and hash derive everything
            # from (idx, qamp); the bit matrix is never materialized
            bits = None
            if absamp is None:
                absamp = np.abs(qamp)
        elif pinned:
            shifts = np.arange(n - 1, -1, -1, dtype=np.int64)[:, None]
            bits = (idx[None, :] >> shifts) & 1
        else:
            bits = ps.bits
        if absamp is None:
            absamp = np.abs(qamp)
        if self.topology is not None:
            # restricted PU2: the free relabelings are exactly the coupling
            # automorphisms — a fixed ordering list shared by every state
            orderings = self._automorphisms(n)
        else:
            orderings = _orderings_packed(idx, qamp, n, self.perm_cap,
                                          bits, absamp,
                                          num_heavy=num_heavy)
        if len(orderings) == 1 and orderings[0] == _identity(n):
            # the identity ordering's candidate set IS the U(2) orbit
            return CanonKey(n, u2_hash & _U64, u2_hash)
        if self.timers is not None:
            t0 = _perf_counter()
            full_hash = self._full_hash(fc, n, idx, qamp, absamp,
                                        orderings, bits, heavy_pos)
            self.timers["hashing"] = self.timers.get("hashing", 0.0) \
                + _perf_counter() - t0
        else:
            full_hash = self._full_hash(fc, n, idx, qamp, absamp,
                                        orderings, bits, heavy_pos)
        return CanonKey(n, full_hash & _U64, full_hash)

    def _full_hash(self, fc, n: int, idx: np.ndarray, qamp: np.ndarray,
                   absamp: np.ndarray, orderings: list[list[int]],
                   bits: np.ndarray | None,
                   heavy_pos: np.ndarray | None) -> int:
        if fc is not None:
            full_hash, _ = fc.orbit_hash_state(n, idx, qamp, self.tie_cap,
                                               orderings)
            return full_hash
        return _orbit_hash(idx, qamp, absamp, orderings, n,
                           self.tie_cap, bits, heavy_pos)


def canonical_key_packed(ps: PackedState, level: CanonLevel,
                         tie_cap: int, perm_cap: int) -> CanonKey:
    """Canonical-class key of a packed state (paper Sec. V-B).

    Applies the same free transformations as
    :func:`repro.core.canonical.canonical_key` — separable-qubit pinning,
    X-translation by heavy-amplitude masks, signature-guided qubit
    permutation, global-sign fix — with equivalent class partitioning
    under the same caps, but identified by a 128-bit orbit hash instead of
    a minimized representative (see :class:`CanonContext` for the
    collision discussion).  A shared key certifies equivalence up to that
    hash; keys are not interchangeable with the legacy tuple keys.

    Stateless convenience wrapper; searches use :class:`CanonContext`,
    which adds the two memo tiers on top of the same computation.
    """
    return CanonContext(level, tie_cap, perm_cap, cache_cap=2).key(ps)


# ----------------------------------------------------------------------
# Vectorized successor enumeration
# ----------------------------------------------------------------------

_CX_MOVES_MEMO: dict[tuple, tuple] = {}


def _cx_moves_entry(ps: PackedState, topology=None) -> tuple:
    """Memoized ``(moves, controls, phases, targets)`` for one expansion.

    The move arrays ride in the memo next to the move list so the batched
    applier never rebuilds them — almost every expanded state shares the
    all-polarities column pattern, making this one dict hit.
    """
    n = ps.n
    m = ps.m
    h0mask = 0
    h1mask = 0
    for q, ones in enumerate(ps.column_counts):
        if ones < m:
            h0mask |= 1 << q
        if ones > 0:
            h1mask |= 1 << q
    if topology is None:
        memo_key = (n, h0mask, h1mask)
        masks = None
    else:
        memo_key = (n, h0mask, h1mask, topology.canonical_key())
        masks = topology.neighbor_masks()
    entry = _CX_MOVES_MEMO.get(memo_key)
    if entry is None:
        moves = []
        for control in range(n):
            h0 = (h0mask >> control) & 1
            h1 = (h1mask >> control) & 1
            cmask = -1 if masks is None else masks[control]
            for target in range(n):
                if target == control:
                    continue
                if not (cmask >> target) & 1:
                    continue  # uncoupled pair: not a native CNOT
                if h0:
                    moves.append(CXMove(control=control, phase=0,
                                        target=target))
                if h1:
                    moves.append(CXMove(control=control, phase=1,
                                        target=target))
        entry = (moves, *_cx_move_arrays(moves))
        _CX_MOVES_MEMO[memo_key] = entry
    return entry


def enumerate_cx_packed(ps: PackedState, topology=None) -> list[CXMove]:
    """Twin of :func:`repro.core.transitions.enumerate_cx`: the cached
    column counts decide which polarities fire, and the (frozen) move list
    is memoized per ``(n, has-zero, has-one)`` column pattern — almost every
    expanded state shares the all-polarities pattern, so enumeration is one
    dict hit.  A ``topology`` restricts emission to coupled pairs and joins
    the memo key by its canonical identity; ``None`` is the identity fast
    path (bit-identical to seed behavior)."""
    return _cx_moves_entry(ps, topology)[0]


def _pairs_and_singles_packed(ps: PackedState, target: int
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                         np.ndarray, np.ndarray]:
    """Split the index set by the ``target`` pairing (vectorized).

    Returns ``(i0, a0, a1, pair_mask, single_mask)`` with ``i0`` ascending —
    the ordering the reference ``_pairs_and_singles`` produces — and the
    masks locating pair-0 members and singles within the sorted index set.
    """
    n = ps.n
    tshift = n - 1 - target
    tmask = 1 << tshift
    idx, amp = ps.idx, ps.amp
    partner = idx ^ tmask
    pos = np.searchsorted(idx, partner)
    pos_c = np.minimum(pos, len(idx) - 1)
    found = idx[pos_c] == partner
    is0 = ((idx >> tshift) & 1) == 0
    pair0 = is0 & found
    i0 = idx[pair0]
    a0 = amp[pair0]
    a1 = amp[pos_c[pair0]]
    return i0, a0, a1, pair0, ~found


def _merge_representatives(bits: np.ndarray, pair_mask: np.ndarray,
                           single_mask: np.ndarray,
                           other: list[int]) -> list[int]:
    """Pattern-lattice pruning: drop control qubits that cannot refine the
    pair/single partition.

    A qubit whose combined bit column over ``pairs + singles`` is constant,
    or equal (up to complement) to an earlier qubit's column, induces the
    same cube partitions as a smaller/earlier subset, so the reference
    enumeration's dedup discards every cube it appears in.  Restricting
    subsets to one representative per distinct column is therefore exactly
    move-set-preserving (including the recorded control cubes, because the
    first-achieving cube of any merge never contains a redundant qubit).
    """
    combined = np.concatenate(
        [bits[:, pair_mask], bits[:, single_mask]], axis=1)
    combined ^= combined[:, :1]  # complement-normalize: first bit 0
    reps: list[int] = []
    seen: set[bytes] = set()
    for q in other:
        col = combined[q]
        if not col.any():
            continue  # constant column: never splits anything
        key = col.tobytes()
        if key in seen:
            continue  # duplicate/complement column of an earlier qubit
        seen.add(key)
        reps.append(q)
    return reps


def enumerate_merges_packed(ps: PackedState, target: int,
                            max_controls: int | None = None,
                            topology=None) -> list[MergeMove]:
    """Twin of :func:`repro.core.transitions.enumerate_merges`.

    Move-set-identical to the reference (property-tested), but pairs and
    singles are split vectorized, the control-cube lattice is restricted to
    pattern-distinguishing qubit columns, and cube bucketing runs on
    per-pair bit codes precomputed from the bit matrix.  A ``topology``
    restricts control qubits to coupled neighbors of ``target`` (the
    multiplexor decomposition only emits control-target CNOTs), mirroring
    the reference enumeration.
    """
    n = ps.n
    if max_controls is None:
        max_controls = n - 1
    max_controls = min(max_controls, n - 1)
    if topology is None:
        other = [q for q in range(n) if q != target]
    else:
        tmask = topology.neighbor_masks()[target]
        other = [q for q in range(n) if q != target and (tmask >> q) & 1]
    fc = _fastcore.active
    if fc is not None:
        # native lattice walk: pair split, representative selection, and
        # the cube enumeration with its consistency test and first-cube
        # dedupe all run in C; only the surviving (cube, ref, direction)
        # triples come back to be wrapped as MergeMoves.
        i0l, a0l, a1l, singles = fc.pairs_singles(
            n, ps.idx, ps.amp, n - 1 - target)
        if not i0l:
            return []
        reps, pcodes, scodes = fc.merge_reps_codes(n, i0l, singles, other)
        kmax = min(max_controls, len(reps))
        walk = fc.merge_walk(pcodes, scodes, a0l, a1l, len(reps), kmax,
                             MERGE_RATIO_RTOL)
        moves = []
        for smask, ref, direction in walk:
            ref_idx = i0l[ref]
            controls = tuple(
                (reps[j], (ref_idx >> (n - 1 - reps[j])) & 1)
                for j in range(len(reps)) if (smask >> j) & 1)
            theta = merge_angle(a0l[ref], a1l[ref], direction)
            moves.append(MergeMove(target=target, theta=theta,
                                   controls=controls))
        return moves
    i0, a0, a1, pair_mask, single_mask = _pairs_and_singles_packed(ps, target)
    num_pairs = len(i0)
    if num_pairs == 0:
        return []
    bits = ps.bits
    reps = _merge_representatives(bits, pair_mask, single_mask, other)
    num_reps = len(reps)
    kmax = min(max_controls, num_reps)

    # per-pair / per-single rep-bit codes (bit j of the code <-> reps[j])
    pcodes = np.zeros(num_pairs, dtype=np.int64)
    scodes = np.zeros(int(single_mask.sum()), dtype=np.int64)
    for j, q in enumerate(reps):
        pcodes |= bits[q, pair_mask].astype(np.int64) << j
        scodes |= bits[q, single_mask].astype(np.int64) << j
    pcl = pcodes.tolist()
    scl = scodes.tolist()
    i0l = i0.tolist()
    a0l = a0.tolist()
    a1l = a1.tolist()

    moves: list[MergeMove] = []
    emitted: set[tuple[tuple[int, ...], int]] = set()
    pair_range = range(num_pairs)

    for k in range(0, kmax + 1):
        for subset in combinations(range(num_reps), k):
            # bucketing by the masked rep-code is injective per subset, so
            # compressing codes to contiguous bits would change nothing
            smask = 0
            for j in subset:
                smask |= 1 << j
            buckets: dict[int, list[int]] = {}
            for p in pair_range:
                code = pcl[p] & smask
                group = buckets.get(code)
                if group is None:
                    buckets[code] = [p]
                else:
                    group.append(p)
            single_set = {c & smask for c in scl}
            for code, members in buckets.items():
                if code in single_set:
                    continue  # the cube would split a lone index
                ref = members[0]
                ra0 = a0l[ref]
                ra1 = a1l[ref]
                if len(members) > 1:
                    scale = abs(ra0) + abs(ra1)
                    consistent = True
                    for p in members[1:]:
                        pa0 = a0l[p]
                        pa1 = a1l[p]
                        if abs(pa1 * ra0 - ra1 * pa0) > \
                                MERGE_RATIO_RTOL * scale * (abs(pa0) +
                                                            abs(pa1)):
                            consistent = False
                            break
                    if not consistent:
                        continue
                ref_idx = i0l[ref]
                controls = tuple(
                    (reps[j], (ref_idx >> (n - 1 - reps[j])) & 1)
                    for j in subset)
                selected = tuple(i0l[p] for p in members)
                for direction in (0, 1):
                    dedupe = (selected, direction)
                    if dedupe in emitted:
                        continue  # same effect, cheaper cube already found
                    emitted.add(dedupe)
                    theta = merge_angle(ra0, ra1, direction)
                    moves.append(MergeMove(target=target, theta=theta,
                                           controls=controls))
    return moves


def successors_packed(pool: StatePool, ps: PackedState,
                      max_merge_controls: int | None = None,
                      include_x_moves: bool = False,
                      topology=None) -> list[tuple[Move, PackedState]]:
    """Enumerate ``(move, next_state)`` arcs leaving a packed state.

    Emission order matches :func:`repro.core.transitions.successors`
    (property-tested), so successor-level tie-breaking is identical to the
    reference enumeration; CX successors are materialized in one batched
    array pass, and all merge results of the expansion are quantized in a
    single frontier-batched pass before interning (elementwise rounding, so
    the produced states are bit-identical to per-move quantization).
    ``topology`` restricts the move set to native moves, exactly as in the
    reference.
    """
    out: list[tuple[Move, PackedState]] = []
    if include_x_moves:
        for q in range(ps.n):
            nxt = apply_x_packed(pool, ps, q)
            if nxt is not ps:
                out.append((XMove(qubit=q), nxt))
    cx_entry = _cx_moves_entry(ps, topology)
    cx_moves = cx_entry[0]
    if cx_moves:
        for move, nxt in zip(cx_moves, _batch_cx_successors(pool, ps,
                                                            cx_moves,
                                                            cx_entry[1:])):
            if nxt is not ps:
                out.append((move, nxt))
    merge_moves: list[MergeMove] = []
    merge_arrays: list[tuple[np.ndarray, np.ndarray]] = []
    for target in range(ps.n):
        for move in enumerate_merges_packed(ps, target, max_merge_controls,
                                            topology):
            merge_moves.append(move)
            merge_arrays.append(_merge_arrays(ps, move.controls,
                                              move.target, move.theta))
    if merge_moves:
        amps = [amp for _, amp in merge_arrays]
        qcat = quantize_array(amps[0] if len(amps) == 1
                              else np.concatenate(amps))
        off = 0
        for move, (midx, mamp) in zip(merge_moves, merge_arrays):
            end = off + len(midx)
            out.append((move, pool.intern(ps.n, midx, mamp,
                                          qcat[off:end])))
            off = end
    return out

"""Admissible distance estimation for the A* search (paper Sec. V-A).

``delta_hat(psi, |0>)`` must never overestimate the true remaining CNOT
cost.  The paper's bound: a qubit whose cofactors are not proportional is
entangled with the rest; single-qubit gates cannot change that, so every
entangled qubit must be touched by at least one CNOT on the way to the
(fully separable) ground state.  A CNOT touches two qubits, hence

    delta_hat(psi) = ceil(#entangled_qubits(psi) / 2).

For the 4-qubit GHZ state this gives 2 although the optimum is 3 — an
underestimate, exactly as the paper notes.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Iterable

import numpy as np

from repro.states.analysis import num_entangled_qubits
from repro.states.qstate import QState

__all__ = [
    "HeuristicFn",
    "entanglement_heuristic",
    "CouplingHeuristic",
    "default_heuristic",
    "zero_heuristic",
    "scaled_heuristic",
    "schmidt_rank",
    "schmidt_cut_heuristic",
    "combined_heuristic",
]

#: A heuristic maps a state to a lower bound on its CNOT distance to ground.
HeuristicFn = Callable[[QState], float]


def entanglement_heuristic(state: QState) -> float:
    """``ceil(k/2)`` over the ``k`` non-separable qubits (admissible)."""
    k = num_entangled_qubits(state)
    return float((k + 1) // 2)


class CouplingHeuristic:
    """Topology-aware admissible bound: ``k - maxmatching(G[E])``.

    The paper's argument gives every entangled qubit at least one incident
    CNOT on the way to the ground state.  On a device, every CNOT is an
    *edge of the coupling graph* — so the CNOTs incident to the entangled
    set ``E`` form an edge set of ``G`` covering ``E``, and any such cover
    has at least ``|E| - maxmatching(G[E])`` edges (Gallai-style: the
    within-``E`` cover edges covering ``W`` split into ``p`` components,
    needing ``|W| - p`` edges, and one disjoint matching edge per
    component gives ``p <= maxmatching``; the remaining ``|E| - |W|``
    vertices need one edge each).  Hence ``k - maxmatching(G[E])`` never
    exceeds the true remaining CNOT cost — admissible.  On the all-to-all
    map the induced subgraph is complete, the matching is ``floor(k/2)``,
    and the bound collapses to the paper's ``ceil(k/2)`` exactly; the
    sparser the coupling among entangled qubits (distance > 1 pairs), the
    further it rises above it.

    The maximum matching is exact (blossom, via networkx) — a *greedy*
    matching would under-count and silently overshoot the true cost.
    Values are memoized per entangled-qubit bitmask, so families of states
    sharing entangled supports pay the matching once.

    Instances compare (and hash) by the topology's canonical key, which is
    what lets :class:`repro.core.memory.SearchMemory` fingerprint them.
    """

    __slots__ = ("topology", "_matching")

    def __init__(self, topology):
        self.topology = topology
        self._matching: dict[int, int] = {}

    def matching_size(self, entangled: tuple[int, ...]) -> int:
        """Maximum matching of the induced coupling subgraph (memoized)."""
        key = 0
        for q in entangled:
            key |= 1 << q
        size = self._matching.get(key)
        if size is None:
            import networkx as nx

            sub = self.topology.graph.subgraph(entangled)
            size = len(nx.max_weight_matching(sub, maxcardinality=True))
            self._matching[key] = size
        return size

    def bound(self, entangled: tuple[int, ...]) -> float:
        return float(len(entangled) - self.matching_size(entangled))

    def __call__(self, state: QState) -> float:
        from repro.states.analysis import entangled_qubits

        return self.bound(tuple(entangled_qubits(state)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CouplingHeuristic):
            return NotImplemented
        return self.topology.canonical_key() == other.topology.canonical_key()

    def __hash__(self) -> int:
        return hash(self.topology)

    def __repr__(self) -> str:
        return f"CouplingHeuristic({self.topology!r})"


def default_heuristic(topology=None) -> HeuristicFn:
    """The engine-default heuristic for a (normalized) topology.

    One definition shared by every engine *and* the regime fingerprint, so
    a service pinning ``search_regime_dict(config)`` and an engine
    attaching with its resolved default can never disagree.
    """
    if topology is None:
        return entanglement_heuristic
    return CouplingHeuristic(topology)


def zero_heuristic(state: QState) -> float:
    """Always 0 — degrades A* to Dijkstra.  Used for ablation benchmarks."""
    return 0.0


def scaled_heuristic(weight: float) -> HeuristicFn:
    """Weighted variant ``w * h`` for weighted-A* ablations.

    ``weight > 1`` loses the optimality guarantee but explores fewer nodes;
    the search result is flagged non-optimal accordingly.
    """
    if weight < 0:
        raise ValueError("heuristic weight must be non-negative")

    def h(state: QState) -> float:
        return weight * entanglement_heuristic(state)

    return h


# ----------------------------------------------------------------------
# Schmidt-rank cut bound (extension)
# ----------------------------------------------------------------------
#
# Across any bipartition (A, B), a CNOT can at most double the Schmidt
# rank, while local gates (Ry, X, and any move confined to one side) leave
# it unchanged.  The ground state has rank 1, so any preparation needs at
# least ceil(log2 rank) CNOTs *crossing that cut* — a second admissible
# lower bound, incomparable with the entangled-qubit count: for states
# with few but strongly entangled qubits the paper's bound wins, for
# high-rank states across a balanced cut this one does.  This also holds
# for the backward move set: an MCRy merge of cost 2**k lowers to 2**k
# CNOTs, each of which at most halves the rank on the way down.

#: Enumerate every bipartition exactly up to this many qubits.
_EXACT_CUT_QUBITS = 10


def schmidt_rank(state: QState, cut: Iterable[int]) -> int:
    """Schmidt rank of ``state`` across the bipartition ``(cut, rest)``.

    Thin wrapper over :func:`repro.states.analysis.schmidt_rank` adding
    the edge-case handling the cut enumerator relies on (empty/full cuts
    have rank 1; out-of-range cuts are rejected).
    """
    from repro.states.analysis import schmidt_rank as _analysis_rank

    n = state.num_qubits
    cut_set = sorted(set(cut))
    if not cut_set or len(cut_set) == n:
        return 1
    if any(q < 0 or q >= n for q in cut_set):
        raise ValueError(f"cut {cut_set} outside the {n}-qubit register")
    return _analysis_rank(state, cut_set)


def schmidt_cut_heuristic(state: QState,
                          max_random_cuts: int = 64,
                          seed: int = 0) -> float:
    """``max_cut ceil(log2 SchmidtRank)`` over a family of bipartitions.

    Every bipartition yields an admissible bound, so any subset keeps the
    maximum admissible.  All ``2**(n-1) - 1`` cuts are enumerated for small
    registers; beyond that, all balanced contiguous cuts plus a seeded
    random sample.
    """
    n = state.num_qubits
    if n < 2 or state.cardinality <= 1:
        return 0.0
    best = 0
    for cut in _cut_family(n, max_random_cuts, seed):
        rank = schmidt_rank(state, cut)
        if rank > 1:
            best = max(best, math.ceil(math.log2(rank)))
    return float(best)


def combined_heuristic(state: QState) -> float:
    """``max`` of the paper's entangled-qubit bound and the Schmidt-cut
    bound — admissible because both components are."""
    return max(entanglement_heuristic(state), schmidt_cut_heuristic(state))


def _cut_family(n: int, max_random_cuts: int,
                seed: int) -> Iterable[tuple[int, ...]]:
    if n <= _EXACT_CUT_QUBITS:
        for size in range(1, n // 2 + 1):
            for combo in itertools.combinations(range(n), size):
                # skip mirror duplicates of the balanced size
                if 2 * size == n and 0 not in combo:
                    continue
                yield combo
        return
    # contiguous cuts of every size
    for size in range(1, n // 2 + 1):
        for start in range(n - size + 1):
            yield tuple(range(start, start + size))
    rng = np.random.default_rng(seed)
    half = n // 2
    for _ in range(max_random_cuts):
        yield tuple(int(q) for q in rng.choice(n, size=half, replace=False))

"""Loader / gatekeeper for the native ``_fastcore`` extension.

``active`` is the module-level switch the kernel consults at every
branch point: the imported extension module when the compiled fast path
is in force, ``None`` when the pure-Python reference implementation
should run.  Selection happens once at import time:

1. ``REPRO_NO_FASTCORE=1`` (any value other than empty/``0``) forces the
   pure-Python path — the supported escape hatch, exercised in CI.
2. A prebuilt ``repro.core._fastcore`` (from ``setup.py build_ext
   --inplace``) is imported if present.
3. Otherwise the loader compiles ``_fastcore.c`` itself with the system
   C compiler into a per-source-hash cache directory
   (``~/.cache/repro-fastcore`` or ``$REPRO_FASTCORE_CACHE``) — so dev
   checkouts get the fast path without a build step.
4. No compiler / failed build / constant mismatch: silently fall back.

An extension is only accepted when its compiled-in splitmix constants
match :mod:`repro.core.splitmix` exactly (anti-drift check: the orbit
hash must be bit-identical between the C and Python lanes, and a stale
or divergent binary would corrupt canonical keys).

``set_enabled(False)`` / ``set_enabled(True)`` toggles ``active`` in
process — used by the differential property tests and by
``bench_kernel.py`` to time both paths in one run.  The compile flags
here must stay in sync with ``setup.py`` (``-ffp-contract=off`` is what
keeps the float expressions bit-identical to NumPy).
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path

__all__ = ["active", "available", "set_enabled", "build_error"]

_COMPILE_FLAGS = [
    "-O2",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-strict-aliasing",
]

#: Human-readable reason the extension is unavailable (None when loaded).
build_error: str | None = None


def _env_disabled() -> bool:
    return os.environ.get("REPRO_NO_FASTCORE", "").strip() not in ("", "0")


def _constants_ok(mod) -> bool:
    from repro.core.splitmix import SPLITMIX_CONSTANTS

    try:
        return mod.splitmix_constants() == SPLITMIX_CONSTANTS
    except Exception:
        return False


def _try_import():
    try:
        return importlib.import_module("repro.core._fastcore")
    except ImportError:
        return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_FASTCORE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-fastcore"


def _try_build():
    """Compile the extension out-of-tree and import it from the cache.

    The cache key is the hash of the C source + header + interpreter ABI
    tag, so editing the source or switching interpreters rebuilds; a
    warm cache is a single ``Path.exists`` check.
    """
    global build_error
    src = Path(__file__).with_name("_fastcore.c")
    header = Path(__file__).with_name("_splitmix.h")
    if not src.is_file() or not header.is_file():
        build_error = "source files missing"
        return None
    cc = shutil.which(os.environ.get("CC") or "gcc") or shutil.which("cc")
    if cc is None:
        build_error = "no C compiler on PATH"
        return None
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    tag = hashlib.sha256(
        src.read_bytes() + header.read_bytes() + suffix.encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    target = cache / f"_fastcore-{tag}{suffix}"
    if not target.is_file():
        try:
            cache.mkdir(parents=True, exist_ok=True)
            include = sysconfig.get_paths()["include"]
            with tempfile.TemporaryDirectory(dir=str(cache)) as tmp:
                tmp_out = Path(tmp) / target.name
                cmd = [cc, *_COMPILE_FLAGS, f"-I{include}", str(src),
                       "-o", str(tmp_out)]
                proc = subprocess.run(cmd, capture_output=True, text=True)
                if proc.returncode != 0:
                    build_error = (
                        f"compile failed ({proc.returncode}): "
                        f"{proc.stderr.strip()[:2000]}"
                    )
                    return None
                # atomic publish: same-filesystem rename, losers of a
                # concurrent race simply overwrite with identical bits
                os.replace(tmp_out, target)
        except OSError as exc:
            build_error = f"build environment error: {exc}"
            return None
    try:
        spec = importlib.util.spec_from_file_location(
            "repro.core._fastcore", target)
        if spec is None or spec.loader is None:
            build_error = f"cannot load built extension at {target}"
            return None
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        sys.modules.setdefault("repro.core._fastcore", mod)
        return mod
    except Exception as exc:  # corrupt cache entry etc.
        build_error = f"import of built extension failed: {exc}"
        return None


def _load():
    global build_error
    if _env_disabled():
        build_error = "disabled by REPRO_NO_FASTCORE"
        return None
    mod = _try_import()
    if mod is None:
        mod = _try_build()
    if mod is None:
        return None
    if not _constants_ok(mod):
        build_error = "splitmix constant mismatch (stale binary?)"
        return None
    build_error = None
    return mod


#: The loaded extension module, kept even while toggled off.
_module = _load()

#: What the kernel consults: the extension module, or None for Python.
active = _module


def available() -> bool:
    """True when a validated extension binary is loaded (even if toggled
    off via :func:`set_enabled`)."""
    return _module is not None


def set_enabled(flag: bool) -> bool:
    """Toggle the compiled path in-process (tests / benchmarks).

    Enabling without an available extension is a no-op returning False.
    """
    global active
    active = _module if flag else None
    return active is not None

"""Stepwise engine runtime: pausable, resumable, cancellable searches.

Before this module, each search core (:mod:`repro.core.astar`,
:mod:`repro.core.idastar`, :mod:`repro.core.beam`) was a monolithic
run-to-completion function.  That shape forces the service portfolio into
a bad dichotomy: run lanes *sequentially* (a slow lane blocks every lane
behind it) or *race* them as one process per lane (pure overhead on the
single-CPU serving host — ``BENCH_service.json`` records it).  The missing
primitive is an engine that can be paused mid-search, resumed, fed a
better incumbent found by a sibling, and cancelled the moment a sibling
proves optimality.

This module provides that primitive:

* :class:`EngineContext` — the shared setup path every kernel engine used
  to duplicate: topology validation + normalization, default-heuristic
  resolution, memory attach (regime-fingerprint pinning) or fresh pool,
  canonicalization context, heuristic evaluator, and the stats lifecycle.
* :class:`EngineRun` — the stepwise run protocol.  A run is created
  "armed" and then driven by ``step(max_expansions)`` calls, each of which
  advances the underlying search by at most that many node expansions and
  returns a :class:`RunStatus`.  ``inject_incumbent(cost)`` threads a
  feasible cost found elsewhere into the run's branch-and-bound pruning
  *between* (and, for A*/beam, *within*) slices.  ``cancel()`` abandons a
  run; stats are finalized on **every** exit path — solved, exhausted,
  proven, cancelled — so no result or audit row ever carries a stale
  elapsed time or cache counters.
* The search-facing dataclasses (:class:`SearchConfig`,
  :class:`SearchStats`, :class:`SearchResult`) and the small helpers the
  engines share.  They are re-exported from :mod:`repro.core.astar` for
  compatibility — existing imports keep working unchanged.

**Differential identity.**  The engines implement their hot loops as
generators that yield exactly once per node expansion; ``step`` simply
resumes the generator.  Pausing and resuming therefore cannot change the
expansion order, the pruning decisions, or any counter: a run driven in
slices of any size is node-for-node identical to a run driven to
completion in one call, and the one-shot wrappers (``astar_search``,
``idastar_search``, ``beam_search``) are nothing but
``EngineRun`` + "drive to completion" — asserted by the differential
suite in ``tests/test_engine_runtime.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.circuits.circuit import QCircuit
from repro.constants import (
    SEARCH_CACHE_CAP,
    SEARCH_PERM_CAP,
    SEARCH_TIE_CAP,
)
from repro.core.canonical import CanonLevel
from repro.core.heuristic import (
    CouplingHeuristic,
    HeuristicFn,
    default_heuristic,
    entanglement_heuristic,
)
from repro.core.kernel import (
    BoundedCache,
    CanonContext,
    PackedState,
    StatePool,
    entangled_qubits_packed,
    entanglement_h_packed,
)
from repro.core.moves import Move
from repro.exceptions import SynthesisError
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = [
    "RunStatus",
    "SearchConfig",
    "SearchStats",
    "SearchResult",
    "EngineContext",
    "EngineRun",
    "StepwiseRun",
]


def _native_topology(topology, num_qubits: int):
    """Validate + normalize a search topology against the target register.

    Delegates the shared normalization to
    :func:`repro.arch.topologies.native_topology` — ``None`` and
    all-to-all maps (of *any* size) mean the unrestricted paper model and
    normalize to ``None``, the identity fast path that stays bit-identical
    to seed behavior; disconnected maps are rejected there (the native
    move set is only complete on a connected graph).  A restricted map
    must additionally cover exactly the register.
    """
    from repro.arch.topologies import native_topology

    topology = native_topology(topology)
    if topology is not None and topology.size != num_qubits:
        raise ValueError(
            f"topology covers {topology.size} physical qubits but the "
            f"target has {num_qubits}; synthesize on "
            f"topology.induced(...) for a sub-register")
    return topology


@dataclass
class SearchConfig:
    """Tuning knobs of the exact search.

    Attributes
    ----------
    max_nodes:
        Expansion budget; exceeding it raises
        :class:`~repro.exceptions.SearchBudgetExceeded`.
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).
    canon_level:
        Equivalence used for pruning (paper Sec. V-B); ``PU2`` assumes a
        symmetric coupling graph, exactly as the paper discusses — under a
        restricted ``topology`` the permutation freedom automatically
        shrinks to the coupling graph's automorphisms, which keeps ``PU2``
        sound on any device.
    max_merge_controls:
        Cap on MCRy merge controls (``None`` = ``n - 1``, the complete set).
    weight:
        Heuristic weight; ``1.0`` is admissible/optimal, larger trades
        optimality for speed (results are flagged accordingly).
    include_x_moves:
        Explicit free X moves (redundant at ``canon_level >= U2``).
    tie_cap / perm_cap:
        Canonicalization enumeration caps (soundness never depends on them);
        defaults shared via :mod:`repro.constants`.
    use_kernel:
        Run the A* hot loop on the packed-array kernel (default).  The
        dict-based reference loop is retained for benchmarking and
        differential tests.  Only ``astar_search`` honors this flag;
        IDA* and beam search always run on the kernel.
    cache_cap:
        Size cap of the canonical-key and heuristic caches (entries);
        exceeding it evicts oldest-first.  Hit rates land in
        :class:`SearchStats`.
    profile:
        Collect phase-level wall-clock timers (enumeration /
        canonicalization / hashing / heuristic / containers) into
        :attr:`SearchStats.phase_seconds`.  Off by default — the timers
        add a few ``perf_counter`` calls per expansion; they never change
        expansion order or any counter.  Surfaced by
        ``benchmarks/bench_kernel.py --profile``.
    topology:
        Optional :class:`repro.arch.topologies.CouplingMap` making the
        device a first-class search constraint: only moves whose CNOTs lie
        on coupled pairs are enumerated, canonicalization folds only
        coupling automorphisms, and the default heuristic becomes the
        matching-based coupling bound.  ``None`` or an all-to-all map
        (of any size) is the unrestricted paper model (bit-identical to
        seed behavior).  Requires the kernel loop; a restricted map's
        size must equal the target's qubit count and its graph must be
        connected.
    """

    max_nodes: int = 200_000
    time_limit: float | None = None
    canon_level: CanonLevel = CanonLevel.PU2
    max_merge_controls: int | None = None
    weight: float = 1.0
    include_x_moves: bool = False
    tie_cap: int = SEARCH_TIE_CAP
    perm_cap: int = SEARCH_PERM_CAP
    use_kernel: bool = True
    cache_cap: int = SEARCH_CACHE_CAP
    topology: object | None = None
    profile: bool = False


@dataclass
class SearchStats:
    """Counters reported with every search result."""

    nodes_expanded: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    max_queue: int = 0
    elapsed_seconds: float = 0.0
    canon_cache_hits: int = 0
    canon_cache_misses: int = 0
    h_cache_hits: int = 0
    h_cache_misses: int = 0
    #: entries evicted from capped dedup containers (e.g. beam ``seen_g``)
    dedup_evictions: int = 0
    #: IDA* transposition-table counters (this search's probes only)
    transposition_hits: int = 0
    transposition_writes: int = 0
    #: A* branch-and-bound counters (active only with an incumbent):
    #: generated states pruned because ``g + h`` already reaches the
    #: incumbent cost, and popped classes pruned because an unconditional
    #: transposition exhaustion entry proves their remaining cost does
    incumbent_prunes: int = 0
    bnb_transposition_prunes: int = 0
    #: subtrees whose exhaustion proof was path-dependent: recorded only
    #: with their path condition (the pre-fix code wrote them as
    #: unconditional, universally reusable claims — the soundness bug)
    transposition_poisoned: int = 0
    #: persistent-store traffic attributable to this search (0 when no
    #: ``SearchMemory`` is attached); per-entry hit counts also drive the
    #: stores' hit-weighted eviction
    canon_store_hits: int = 0
    canon_store_misses: int = 0
    h_store_hits: int = 0
    h_store_misses: int = 0
    #: phase-level wall-clock breakdown of the hot loop (seconds), filled
    #: only under ``SearchConfig(profile=True)`` (beam lanes:
    #: ``BeamConfig(profile=True)``) by all three engines — A*, IDA*,
    #: and beam: "enumeration" (successor generation + move application +
    #: interning), "canonicalization" (canonical-key computation,
    #: inclusive), "hashing" (the orbit-hash portion of canonicalization,
    #: a sub-bucket), "heuristic" (h evaluation), "containers" (open-heap
    #: + dedup-map bookkeeping, A* only)
    phase_seconds: dict = field(default_factory=dict)

    @property
    def canon_cache_hit_rate(self) -> float:
        """Hit rate of the canonical-key cache (0.0 when never queried)."""
        total = self.canon_cache_hits + self.canon_cache_misses
        return self.canon_cache_hits / total if total else 0.0

    @property
    def h_cache_hit_rate(self) -> float:
        """Hit rate of the heuristic cache (0.0 when never queried)."""
        total = self.h_cache_hits + self.h_cache_misses
        return self.h_cache_hits / total if total else 0.0

    @property
    def nodes_per_second(self) -> float:
        """Expanded-node throughput (the kernel benchmark's headline)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.nodes_expanded / self.elapsed_seconds


@dataclass
class SearchResult:
    """Outcome of a (possibly budgeted) search."""

    circuit: QCircuit
    cnot_cost: int
    optimal: bool
    moves: list[Move] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)


class RunStatus(Enum):
    """Lifecycle of a stepwise :class:`EngineRun`.

    ``RUNNING``
        The run has work left; call :meth:`EngineRun.step` again.
    ``SOLVED``
        The run holds a feasible circuit (:meth:`EngineRun.result`); its
        ``optimal`` flag says whether the cost is proven minimal.
    ``PROVEN``
        The run exhausted its space under an *injected* incumbent bound
        without holding a circuit of its own: no solution strictly
        cheaper than :attr:`EngineRun.incumbent_bound` exists, so the
        incumbent (held by whoever injected it) is optimal.
    ``EXHAUSTED``
        The run ran out of node/time budget (or move space) without a
        result; :attr:`EngineRun.error` carries the same
        :class:`~repro.exceptions.SearchBudgetExceeded` /
        :class:`~repro.exceptions.SynthesisError` the one-shot function
        would have raised, proven lower bound included.
    ``CANCELLED``
        :meth:`EngineRun.cancel` was called (scheduler decision: a
        sibling proved optimality, or a deadline expired).  Stats are
        finalized; partial results, if any, remain readable via
        :meth:`EngineRun.best_feasible`.
    """

    RUNNING = "running"
    SOLVED = "solved"
    PROVEN = "proven"
    EXHAUSTED = "exhausted"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self is not RunStatus.RUNNING


def _make_h_of(heuristic: HeuristicFn, h_cache: BoundedCache, h_store):
    """Packed-state heuristic evaluator shared by all kernel engines.

    The default entanglement bound is memoized on the interned state
    object, so it needs no cache layer; the coupling-aware bound reads the
    cached entangled set off the interned state and memoizes its matching
    per entangled support; any other heuristic goes through the per-search
    cache with an optional persistent
    :class:`repro.core.memory.HashStore` tier between cache and compute.
    """
    if heuristic is entanglement_heuristic:
        return entanglement_h_packed

    if isinstance(heuristic, CouplingHeuristic):
        def h_coupling(ps: PackedState) -> float:
            val = h_cache.get(ps)
            if val is None:
                if h_store is not None:
                    val = h_store.get(ps)
                if val is None:
                    val = heuristic.bound(entangled_qubits_packed(ps))
                    if h_store is not None:
                        h_store.put(ps, val)
                h_cache.put(ps, val)
            return val

        return h_coupling

    def h_of(ps: PackedState) -> float:
        val = h_cache.get(ps)
        if val is None:
            if h_store is not None:
                val = h_store.get(ps)
            if val is None:
                val = float(heuristic(ps.to_qstate()))
                if h_store is not None:
                    h_store.put(ps, val)
            h_cache.put(ps, val)
        return val

    return h_of


def _store_hit_marks(canon_store, h_store) -> tuple[int, int, int, int]:
    """Counter baseline so per-search store deltas can land in the stats."""
    return (canon_store.hits if canon_store is not None else 0,
            canon_store.misses if canon_store is not None else 0,
            h_store.hits if h_store is not None else 0,
            h_store.misses if h_store is not None else 0)


def _finish_store_stats(stats: SearchStats, canon_store, h_store,
                        marks: tuple[int, int, int, int]) -> None:
    """Record this search's share of the persistent-store traffic."""
    if canon_store is not None:
        stats.canon_store_hits = canon_store.hits - marks[0]
        stats.canon_store_misses = canon_store.misses - marks[1]
    if h_store is not None:
        stats.h_store_hits = h_store.hits - marks[2]
        stats.h_store_misses = h_store.misses - marks[3]


def _proven_bound(current_u: float, open_entries, u_index: int) -> int:
    """Integer lower bound from the unweighted ``g + h`` of the frontier.

    The optimal path must pass through the just-popped node or some open
    entry, so ``min`` of their unweighted ``f`` values is a true bound —
    regardless of the heuristic weighting used for ordering.
    """
    best = current_u
    for entry in open_entries:
        u = entry[u_index]
        if u < best:
            best = u
    return int(math.ceil(best - 1e-9))


class EngineContext:
    """The per-run setup every kernel engine shares.

    One construction performs, in order, exactly what the three engines
    each used to do inline: topology validation + normalization,
    default-heuristic resolution for that topology, memory attach (which
    pins the regime fingerprint and may rotate the interning pool) or a
    fresh :class:`~repro.core.kernel.StatePool`, the canonicalization
    context over the optional persistent store, the heuristic evaluator
    over the per-run cache + optional store tier, and the stats/stopwatch
    lifecycle.  :meth:`finalize_stats` flushes the cache/store counters
    and the elapsed time into :attr:`stats`; it is idempotent, so every
    exit path (normal, budget, cancellation) may call it safely.
    """

    __slots__ = ("target", "topology", "heuristic", "memory", "pool",
                 "canon_store", "h_store", "canon_ctx", "canon", "h_cache",
                 "h_of", "stats", "stopwatch", "start", "_store_marks",
                 "profile")

    def __init__(self, target: QState, *, canon_level, tie_cap: int,
                 perm_cap: int, max_merge_controls: int | None,
                 include_x_moves: bool, cache_cap: int, topology,
                 time_limit: float | None, heuristic: HeuristicFn | None,
                 memory=None, profile: bool = False):
        self.target = target
        self.topology = _native_topology(topology, target.num_qubits)
        if heuristic is None:
            heuristic = default_heuristic(self.topology)
        self.heuristic = heuristic
        self.stats = SearchStats()
        self.stopwatch = Stopwatch(time_limit)
        self.memory = memory
        if memory is not None:
            self.pool = memory.attach(
                canon_level=canon_level, tie_cap=tie_cap, perm_cap=perm_cap,
                max_merge_controls=max_merge_controls,
                include_x_moves=include_x_moves, heuristic=heuristic,
                topology=self.topology)
            self.canon_store = memory.canon_store
            self.h_store = memory.h_store
        else:
            self.pool = StatePool()
            self.canon_store = self.h_store = None
        self.canon_ctx = CanonContext(canon_level, tie_cap, perm_cap,
                                      cache_cap, store=self.canon_store,
                                      topology=self.topology)
        self.profile = profile
        if profile:
            # the hashing sub-bucket accrues directly into phase_seconds
            self.canon_ctx.timers = self.stats.phase_seconds
        self.canon = self.canon_ctx.key
        self.h_cache = BoundedCache(cache_cap)
        self.h_of = _make_h_of(heuristic, self.h_cache, self.h_store)
        self._store_marks = _store_hit_marks(self.canon_store, self.h_store)
        self.start = self.pool.from_qstate(target)

    @classmethod
    def from_search_config(cls, target: QState, config: SearchConfig,
                           heuristic: HeuristicFn | None = None,
                           memory=None) -> "EngineContext":
        """Build a context from the shared :class:`SearchConfig` fields."""
        return cls(target, canon_level=config.canon_level,
                   tie_cap=config.tie_cap, perm_cap=config.perm_cap,
                   max_merge_controls=config.max_merge_controls,
                   include_x_moves=config.include_x_moves,
                   cache_cap=config.cache_cap, topology=config.topology,
                   time_limit=config.time_limit, heuristic=heuristic,
                   memory=memory, profile=config.profile)

    def finalize_stats(self) -> None:
        """Flush elapsed time + cache/store counters into :attr:`stats`.

        Idempotent by construction (every field is recomputed from the
        live containers), so *every* exit path — normal return, budget
        exhaustion, incumbent-proven-optimal, deadline cancellation —
        calls it, and no run ever reports half-finished stats.
        """
        stats = self.stats
        stats.elapsed_seconds = self.stopwatch.elapsed()
        stats.canon_cache_hits = self.canon_ctx.cache.hits
        stats.canon_cache_misses = self.canon_ctx.cache.misses
        stats.h_cache_hits = self.h_cache.hits
        stats.h_cache_misses = self.h_cache.misses
        _finish_store_stats(stats, self.canon_store, self.h_store,
                            self._store_marks)


class StepwiseRun:
    """Generator-driven stepwise run protocol (engine-agnostic base).

    Subclasses implement ``_main()`` as a generator that yields exactly
    once per unit of work (a node expansion for the kernel engines, an
    inner-engine expansion for composite runs like the QSP workflow) and
    terminates by calling :meth:`_finish` (every terminal path) before
    returning.  The base class provides the driver surface the portfolio
    and request schedulers program against:

    ``step(max_expansions)``
        Resume the run for at most ``max_expansions`` work units;
        returns the (possibly terminal) :class:`RunStatus`.
    ``inject_incumbent(cost)``
        Tighten the run's branch-and-bound upper bound to ``cost`` (a
        feasible cost some sibling achieved).  Monotone: only ever
        tightens.  Consumed at the run's next sound opportunity
        (A*/beam immediately, IDA* at the next deepening round).
    ``result() / error / best_feasible()``
        The terminal artifacts; ``best_feasible()`` additionally exposes
        anytime intermediate results while still ``RUNNING``.
    ``cancel()``
        Abandon the run (``_finalize`` runs, status ``CANCELLED``).

    The optional ``stopwatch`` is the run's own compute-budget clock: it
    is suspended between slices so ``time_limit`` stays a per-run budget
    under interleaved scheduling, exactly as in a sequential line.
    ``_finalize()`` is the terminal hook (stats flushing for the kernel
    engines); the base default is a no-op.
    """

    #: subclass tag ("astar" / "idastar" / "beam" / "workflow") for audits
    engine = "run"

    def __init__(self, stopwatch: Stopwatch | None = None):
        self._status = RunStatus.RUNNING
        self._result = None
        self._error: Exception | None = None
        self._ub: int | None = None
        self._stopwatch = stopwatch
        self._gen = self._main()
        # scheduler hooks (no effect on the run itself): an opaque
        # owner tag a scheduler may stamp on the run for audit rows and
        # per-session accounting, and the expansion count of the most
        # recent step() slice for fair-share bookkeeping
        self.tag: object | None = None
        self.last_slice_expansions: int = 0
        # setup time (in the subclass constructor) has been charged; the
        # clock now waits for the first slice
        if stopwatch is not None:
            stopwatch.suspend()

    # -- driver surface --------------------------------------------------

    @property
    def status(self) -> RunStatus:
        return self._status

    @property
    def error(self) -> Exception | None:
        """The exception the one-shot wrapper would raise (terminal only)."""
        return self._error

    @property
    def incumbent_bound(self) -> int | None:
        """The tightest injected/initial incumbent cost bound (or None)."""
        return self._ub

    def result(self):
        if self._result is None:
            raise SynthesisError(
                f"run is {self._status.value} and holds no result")
        return self._result

    def best_feasible(self):
        """Best feasible result so far (anytime peek; None if none yet).

        Terminal ``SOLVED`` runs report their result; anytime runs
        (beam, workflow) override this to expose intermediate incumbents
        while still ``RUNNING`` so a scheduler can share them immediately.
        """
        return self._result

    def flush_feasible(self):
        """Best feasible result obtainable *right now*, computing a cheap
        completion if the run supports one (beam's m-flow tail over the
        current frontier; the workflow's reduction-only fallback).  Called
        by the scheduler at deadline expiry so an anytime run can still
        hand over a valid circuit; the default is just
        :meth:`best_feasible`."""
        return self.best_feasible()

    def inject_incumbent(self, cost: int) -> None:
        """Tighten the branch-and-bound bound to a sibling's feasible cost."""
        if self._ub is None or cost < self._ub:
            self._ub = cost

    def step(self, max_expansions: int,
             deadline: Stopwatch | None = None) -> RunStatus:
        """Advance by at most ``max_expansions`` work units.

        ``deadline`` (an expiring :class:`~repro.utils.timing.Stopwatch`)
        ends the slice early mid-way: the overshoot past a wall-clock
        cutoff is then bounded by a single expansion, not a whole slice —
        which on heavy instances can be the difference between a 100 ms
        and a multi-second deadline miss.
        """
        if self._status.terminal:
            return self._status
        # the run's own time_limit clock only ticks while the run holds
        # the CPU: suspended between slices, a lane's budget keeps
        # sequential-mode semantics under interleaved scheduling
        if self._stopwatch is not None:
            self._stopwatch.resume()
        expansions = 0
        try:
            for _ in range(max(1, max_expansions)):
                try:
                    next(self._gen)
                except StopIteration:
                    break
                expansions += 1
                if self._status.terminal:  # _finish precedes return
                    break
                if deadline is not None and deadline.expired():
                    break
        finally:
            self.last_slice_expansions = expansions
            if self._stopwatch is not None:
                self._stopwatch.suspend()
        return self._status

    def run_to_completion(self):
        """Drive to a terminal status; return or raise like the one-shot
        functions always did (this *is* their implementation)."""
        while not self.step(1 << 20).terminal:
            pass
        if self._status is RunStatus.SOLVED:
            assert self._result is not None
            return self._result
        assert self._error is not None
        raise self._error

    def cancel(self) -> None:
        """Abandon the run; ``_finalize`` runs, partials stay readable."""
        if self._status.terminal:
            return
        self._gen.close()  # GeneratorExit -> engine finally-blocks run
        self._finalize()
        self._status = RunStatus.CANCELLED

    # -- subclass protocol -----------------------------------------------

    def _main(self):
        raise NotImplementedError

    def _finalize(self) -> None:
        """Terminal hook (kernel engines flush stats here); default no-op."""

    def _finish(self, status: RunStatus, *, result=None,
                error: Exception | None = None) -> None:
        """Terminal transition: ``_finalize`` runs on *every* exit path."""
        self._finalize()
        self._status = status
        self._result = result
        self._error = error


class EngineRun(StepwiseRun):
    """Base class of the stepwise *kernel-engine* runs (see module
    docstring).  Adds to :class:`StepwiseRun` the pieces every kernel
    engine shares: the :class:`EngineContext` (whose stopwatch is the
    run's compute-budget clock) and the stats lifecycle — ``_finalize``
    flushes elapsed time and cache/store counters so no exit path ever
    reports half-finished stats.  Results are :class:`SearchResult`.
    """

    #: subclass tag ("astar" / "idastar" / "beam") for audit rows
    engine = "engine"

    def __init__(self, ctx: EngineContext):
        self._ctx = ctx
        super().__init__(stopwatch=ctx.stopwatch)

    @property
    def stats(self) -> SearchStats:
        return self._ctx.stats

    def _finalize(self) -> None:
        self._ctx.finalize_stats()

"""Bit-twiddling helpers shared across the library.

Basis-state indices are plain Python integers.  Following the paper's
``|q1 q2 ... qn>`` notation, **qubit 0 is the most significant bit** of the
index: for a 3-qubit system the basis state ``|011>`` (``q1 = 0``, ``q2 = 1``,
``q3 = 1``) is the integer ``0b011 = 3``.

All helpers take ``num_qubits`` explicitly, since the integer alone does not
carry the register width.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit_of",
    "set_bit",
    "flip_bit",
    "bit_mask",
    "popcount",
    "hamming_distance",
    "index_to_bitstring",
    "bitstring_to_index",
    "iter_indices",
    "indices_with_weight",
    "permute_index",
    "gray_code",
    "gray_code_sequence",
    "changed_bit",
]


def bit_mask(qubit: int, num_qubits: int) -> int:
    """Return the single-bit mask that selects ``qubit`` (MSB-first).

    >>> bit_mask(0, 3)
    4
    >>> bit_mask(2, 3)
    1
    """
    if not 0 <= qubit < num_qubits:
        raise ValueError(f"qubit {qubit} out of range for {num_qubits} qubits")
    return 1 << (num_qubits - 1 - qubit)


def bit_of(index: int, qubit: int, num_qubits: int) -> int:
    """Return the value (0 or 1) of ``qubit`` in basis ``index``.

    >>> bit_of(0b011, 0, 3), bit_of(0b011, 1, 3), bit_of(0b011, 2, 3)
    (0, 1, 1)
    """
    return (index >> (num_qubits - 1 - qubit)) & 1


def set_bit(index: int, qubit: int, num_qubits: int, value: int) -> int:
    """Return ``index`` with ``qubit`` forced to ``value``."""
    mask = bit_mask(qubit, num_qubits)
    if value:
        return index | mask
    return index & ~mask


def flip_bit(index: int, qubit: int, num_qubits: int) -> int:
    """Return ``index`` with ``qubit`` flipped."""
    return index ^ bit_mask(qubit, num_qubits)


def popcount(index: int) -> int:
    """Number of 1 bits in ``index`` (the Hamming weight)."""
    return bin(index).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions where ``a`` and ``b`` differ."""
    return popcount(a ^ b)


def index_to_bitstring(index: int, num_qubits: int) -> str:
    """Render ``index`` as an MSB-first bitstring of width ``num_qubits``.

    >>> index_to_bitstring(3, 3)
    '011'
    """
    if index < 0 or index >= (1 << num_qubits):
        raise ValueError(f"index {index} out of range for {num_qubits} qubits")
    return format(index, f"0{num_qubits}b")


def bitstring_to_index(bits: str) -> int:
    """Parse an MSB-first bitstring into an index.

    >>> bitstring_to_index('011')
    3
    """
    if not bits or any(c not in "01" for c in bits):
        raise ValueError(f"not a bitstring: {bits!r}")
    return int(bits, 2)


def iter_indices(num_qubits: int) -> Iterator[int]:
    """Iterate all ``2**num_qubits`` basis indices in ascending order."""
    return iter(range(1 << num_qubits))


def indices_with_weight(num_qubits: int, weight: int) -> list[int]:
    """All basis indices of ``num_qubits`` bits with Hamming weight ``weight``.

    Enumerated in ascending numeric order.  Used to build Dicke states.
    """
    if weight < 0 or weight > num_qubits:
        return []
    return [i for i in range(1 << num_qubits) if popcount(i) == weight]


def permute_index(index: int, perm: Iterable[int], num_qubits: int) -> int:
    """Apply a qubit permutation to a basis index.

    ``perm[i] = j`` means that qubit ``i`` of the output takes the value of
    qubit ``j`` of the input.

    >>> permute_index(0b100, [2, 0, 1], 3)
    2
    """
    out = 0
    for i, j in enumerate(perm):
        if bit_of(index, j, num_qubits):
            out |= bit_mask(i, num_qubits)
    return out


def gray_code(i: int) -> int:
    """The ``i``-th element of the binary reflected Gray code."""
    return i ^ (i >> 1)


def gray_code_sequence(num_bits: int) -> list[int]:
    """The full Gray-code ordering of ``2**num_bits`` values."""
    return [gray_code(i) for i in range(1 << num_bits)]


def changed_bit(a: int, b: int) -> int:
    """Position (0 = LSB) of the single bit where ``a`` and ``b`` differ.

    Raises :class:`ValueError` if they differ in zero or more than one bit.
    """
    diff = a ^ b
    if diff == 0 or diff & (diff - 1):
        raise ValueError(f"{a} and {b} do not differ in exactly one bit")
    return diff.bit_length() - 1

"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows as the paper's tables; this module keeps
the formatting consistent and dependency-free.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["format_table", "geometric_mean", "improvement_percent"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table.

    >>> print(format_table(["n", "cost"], [[3, 4], [4, 7]]))
      n  cost
      -  ----
      3  4
      4  7
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join("  " + line for line in lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, as used in the paper's summary rows.

    Zero or negative entries are invalid (CNOT counts are positive); zero
    counts are clamped to 1 so that an optimal-free circuit does not zero
    the whole mean.
    """
    vals = [max(float(v), 1.0) for v in values]
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def improvement_percent(baseline: float, ours: float) -> float:
    """Paper-style improvement: positive when ``ours`` uses fewer CNOTs."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - ours) / baseline

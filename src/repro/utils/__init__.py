"""Shared utilities (bit manipulation, table rendering, timing)."""

from repro.utils.bits import (
    bit_mask,
    bit_of,
    bitstring_to_index,
    changed_bit,
    flip_bit,
    gray_code,
    gray_code_sequence,
    hamming_distance,
    index_to_bitstring,
    indices_with_weight,
    iter_indices,
    permute_index,
    popcount,
    set_bit,
)
from repro.utils.tables import format_table, geometric_mean
from repro.utils.timing import Stopwatch

__all__ = [
    "bit_mask",
    "bit_of",
    "bitstring_to_index",
    "changed_bit",
    "flip_bit",
    "gray_code",
    "gray_code_sequence",
    "hamming_distance",
    "index_to_bitstring",
    "indices_with_weight",
    "iter_indices",
    "permute_index",
    "popcount",
    "set_bit",
    "format_table",
    "geometric_mean",
    "Stopwatch",
]

"""Regime fingerprints: one JSON-safe description of a search regime.

Three subsystems need to agree on "were these two runs produced under the
same rules?":

* :class:`repro.core.memory.SearchMemory` pins an in-process fingerprint
  tuple on first attach;
* the service layer persists memories and request-cache entries to disk
  and must refuse to mix entries across regimes *between* processes;
* the benchmark artifacts (``BENCH_*.json``) record which regime produced
  their numbers so trajectory comparisons across PRs can detect
  incompatible runs.

This module is the single conversion point between the in-process tuple
(which holds live objects — a :class:`~repro.core.canonical.CanonLevel`
member and a heuristic *function*) and the portable dict (enum name,
``module:qualname`` heuristic reference).  Only named, importable
heuristics are portable: a lambda or closure cannot be resolved in
another process, so :func:`fingerprint_to_dict` rejects it up front
rather than letting a snapshot load fail mysteriously later.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from typing import Any

from repro.constants import AMP_DECIMALS, BENCH_SCHEMA_VERSION
from repro.core.canonical import CanonLevel
from repro.exceptions import MemoryCompatibilityError

__all__ = [
    "heuristic_ref",
    "resolve_heuristic",
    "fingerprint_to_dict",
    "fingerprint_from_dict",
    "fingerprint_digest",
    "search_regime_dict",
    "stamp_benchmark",
]


def heuristic_ref(heuristic) -> str:
    """Portable ``module:qualname`` reference of a named heuristic.

    Raises :class:`MemoryCompatibilityError` for objects that cannot be
    re-imported by that reference (lambdas, closures, bound partials) —
    those may be used in-process but can never cross a process boundary.
    """
    module = getattr(heuristic, "__module__", None)
    qualname = getattr(heuristic, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise MemoryCompatibilityError(
            f"heuristic {heuristic!r} has no importable name; only "
            f"module-level heuristics can cross a process boundary")
    ref = f"{module}:{qualname}"
    if resolve_heuristic(ref) is not heuristic:
        raise MemoryCompatibilityError(
            f"heuristic reference {ref!r} does not resolve back to "
            f"{heuristic!r}; use a module-level function")
    return ref


def resolve_heuristic(ref: str):
    """Inverse of :func:`heuristic_ref` (import + getattr walk)."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise MemoryCompatibilityError(f"malformed heuristic ref {ref!r}")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise MemoryCompatibilityError(
            f"cannot resolve heuristic {ref!r}: {exc}") from exc
    return obj


def _topology_to_dict(topo_key) -> dict | None:
    """Portable form of a canonical topology key ``(size, edge tuple)``."""
    if topo_key is None:
        return None
    size, edges = topo_key
    return {"size": int(size), "edges": [[int(a), int(b)]
                                         for a, b in edges]}


def _topology_from_dict(data) -> tuple | None:
    if data is None:
        return None
    try:
        return (int(data["size"]),
                tuple((int(a), int(b)) for a, b in data["edges"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise MemoryCompatibilityError(
            f"malformed topology serialization {data!r}: {exc}") from exc


def fingerprint_to_dict(fingerprint: tuple) -> dict:
    """Portable form of a ``SearchMemory`` fingerprint tuple.

    The tuple layout is pinned by ``SearchMemory.attach``:
    ``(canon_level, tie_cap, perm_cap, max_merge_controls,
    include_x_moves, heuristic, topology_key)``.  ``amp_decimals`` is
    recorded too — stored payloads quantize amplitudes at that precision,
    so loading them under a different precision would silently change
    state identity.  A :class:`~repro.core.heuristic.CouplingHeuristic`
    is fully determined by the fingerprint's topology, so it serializes
    as its class reference and is rebuilt from the topology on load.
    """
    from repro.core.heuristic import CouplingHeuristic

    (level, tie_cap, perm_cap, max_merge_controls, include_x, heuristic,
     topo_key) = fingerprint
    if isinstance(heuristic, CouplingHeuristic):
        if heuristic.topology.canonical_key() != topo_key:
            raise MemoryCompatibilityError(
                "coupling heuristic topology disagrees with the "
                "fingerprint topology (internal wiring error)")
        h_ref = "repro.core.heuristic:CouplingHeuristic"
    else:
        h_ref = heuristic_ref(heuristic)
    return {
        "canon_level": level.name,
        "tie_cap": int(tie_cap),
        "perm_cap": int(perm_cap),
        "max_merge_controls": max_merge_controls,
        "include_x_moves": bool(include_x),
        "heuristic": h_ref,
        "amp_decimals": AMP_DECIMALS,
        "topology": _topology_to_dict(topo_key),
    }


def fingerprint_from_dict(data: dict) -> tuple:
    """Inverse of :func:`fingerprint_to_dict` (live tuple, live objects).

    Snapshots predating the topology component load as unrestricted
    (``topology`` absent == ``None``) — their entries were produced under
    the paper's all-to-all model, which is exactly what ``None`` means.
    """
    from repro.core.heuristic import CouplingHeuristic

    try:
        level = CanonLevel[data["canon_level"]]
        decimals = int(data["amp_decimals"])
        mmc = data["max_merge_controls"]
        topo_key = _topology_from_dict(data.get("topology"))
        heuristic = resolve_heuristic(data["heuristic"])
        if isinstance(heuristic, type) and \
                issubclass(heuristic, CouplingHeuristic):
            if topo_key is None:
                raise MemoryCompatibilityError(
                    "fingerprint names a coupling heuristic but carries "
                    "no topology")
            from repro.arch.topologies import CouplingMap
            heuristic = CouplingHeuristic(
                CouplingMap.from_canonical_dict(data["topology"]))
        fingerprint = (level, int(data["tie_cap"]), int(data["perm_cap"]),
                       None if mmc is None else int(mmc),
                       bool(data["include_x_moves"]),
                       heuristic, topo_key)
    except (KeyError, ValueError, TypeError) as exc:
        raise MemoryCompatibilityError(
            f"malformed regime fingerprint {data!r}: {exc}") from exc
    if decimals != AMP_DECIMALS:
        raise MemoryCompatibilityError(
            f"fingerprint was recorded at amplitude precision {decimals} "
            f"decimals but this process quantizes at {AMP_DECIMALS}")
    return fingerprint


def fingerprint_digest(data: dict) -> str:
    """Short stable digest of a portable fingerprint (for logs/artifacts)."""
    blob = json.dumps(data, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def search_regime_dict(search_config, heuristic=None) -> dict:
    """Portable fingerprint of a :class:`~repro.core.astar.SearchConfig`.

    ``heuristic=None`` means the engine default for the config's
    (normalized) topology — :func:`repro.core.heuristic.default_heuristic`,
    the same resolution every engine performs, so a service pinning this
    regime and the engines attaching to its memory always agree.
    """
    topology = search_config.topology
    if topology is not None and topology.is_full():
        topology = None  # the engines' identity fast path
    if heuristic is None:
        from repro.core.heuristic import default_heuristic
        heuristic = default_heuristic(topology)
    topo_key = None if topology is None else topology.canonical_key()
    return fingerprint_to_dict((
        search_config.canon_level, search_config.tie_cap,
        search_config.perm_cap, search_config.max_merge_controls,
        search_config.include_x_moves, heuristic, topo_key))


def stamp_benchmark(report: dict, search_config=None,
                    heuristic=None) -> dict:
    """Stamp a benchmark report dict with the shared artifact schema.

    Adds ``schema_version`` and ``regime_fingerprint`` (the portable
    regime dict plus its digest) in place and returns the report, so
    every ``BENCH_*.json`` carries the same comparison metadata.  With no
    ``search_config`` the library-default regime is stamped.
    """
    if search_config is None:
        from repro.core.astar import SearchConfig
        search_config = SearchConfig()
    regime = search_regime_dict(search_config, heuristic)
    report["schema_version"] = BENCH_SCHEMA_VERSION
    report["regime_fingerprint"] = dict(regime,
                                        digest=fingerprint_digest(regime))
    return report

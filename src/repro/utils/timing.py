"""Small timing helper used by the search budgets and the benchmarks."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Monotonic stopwatch with an optional deadline.

    >>> sw = Stopwatch(limit_seconds=10.0)
    >>> sw.elapsed() >= 0.0
    True
    >>> sw.expired()
    False
    """

    def __init__(self, limit_seconds: float | None = None):
        self._start = time.monotonic()
        self._accumulated = 0.0
        self._running = True
        self.limit_seconds = limit_seconds

    def elapsed(self) -> float:
        """Seconds observed since construction (or the last
        :meth:`restart`), not counting suspended stretches."""
        if not self._running:
            return self._accumulated
        return self._accumulated + (time.monotonic() - self._start)

    def expired(self) -> bool:
        """True when a limit was set and has been exceeded."""
        return self.limit_seconds is not None and self.elapsed() > self.limit_seconds

    def remaining(self) -> float | None:
        """Seconds left before the deadline, or ``None`` without a limit."""
        if self.limit_seconds is None:
            return None
        return max(0.0, self.limit_seconds - self.elapsed())

    def restart(self) -> None:
        """Reset the clock to zero (running), keeping the limit."""
        self._start = time.monotonic()
        self._accumulated = 0.0
        self._running = True

    def suspend(self) -> None:
        """Stop the clock (idempotent).  A time-sliced engine run is
        suspended between its slices, so ``time_limit`` stays a *per-run
        compute* budget — wall-clock time spent in sibling lanes does not
        count against it, exactly as in a sequential line."""
        if self._running:
            self._accumulated += time.monotonic() - self._start
            self._running = False

    def resume(self) -> None:
        """Restart the clock after :meth:`suspend` (idempotent)."""
        if not self._running:
            self._start = time.monotonic()
            self._running = True

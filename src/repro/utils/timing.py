"""Small timing helper used by the search budgets and the benchmarks."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Monotonic stopwatch with an optional deadline.

    >>> sw = Stopwatch(limit_seconds=10.0)
    >>> sw.elapsed() >= 0.0
    True
    >>> sw.expired()
    False
    """

    def __init__(self, limit_seconds: float | None = None):
        self._start = time.monotonic()
        self.limit_seconds = limit_seconds

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.monotonic() - self._start

    def expired(self) -> bool:
        """True when a limit was set and has been exceeded."""
        return self.limit_seconds is not None and self.elapsed() > self.limit_seconds

    def remaining(self) -> float | None:
        """Seconds left before the deadline, or ``None`` without a limit."""
        if self.limit_seconds is None:
            return None
        return max(0.0, self.limit_seconds - self.elapsed())

    def restart(self) -> None:
        """Reset the start time, keeping the limit."""
        self._start = time.monotonic()

"""JSON serialization for states, circuits, results, and search memory.

A release-quality artifact: benchmark outputs and synthesized circuits can
be persisted and reloaded without OpenQASM's angle round-off ambiguity
(angles are stored as exact binary floats via ``repr``).

The search-memory codec (:func:`memory_to_dict` / :func:`memory_from_dict`)
is the foundation of the service layer's disk persistence.  Two properties
make it more than a pickle:

* **Process portability.**  The 64-bit structural state hash is SipHash
  and therefore differs between processes, so nothing hash-keyed is
  stored by its hash: store entries are written as ``(payload, value)``
  pairs and re-keyed by the *loading* process
  (:meth:`~repro.core.memory.HashStore.put_payload`), and canonical keys
  are written by their process-independent identity (the 128-bit orbit
  hash, or the exact payload at ``CanonLevel.NONE``) with the 64-bit
  lookup hash rederived on load.
* **Version + regime gating.**  The snapshot records the format version
  (:data:`repro.constants.MEMORY_SNAPSHOT_VERSION`) and the memory's
  portable regime fingerprint; the loader raises
  :class:`~repro.exceptions.MemoryCompatibilityError` on any mismatch or
  corruption instead of silently mixing incompatible entries.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import (
    CRYGate,
    CRZGate,
    CXGate,
    Gate,
    MCRYGate,
    MCXGate,
    RYGate,
    RZGate,
    XGate,
)
from repro.constants import MEMORY_SNAPSHOT_VERSION, MEMORY_WAL_VERSION
from repro.exceptions import MemoryCompatibilityError, ReproError
from repro.states.qstate import QState

__all__ = [
    "state_to_dict",
    "state_from_dict",
    "circuit_to_dict",
    "circuit_from_dict",
    "search_result_to_dict",
    "search_result_from_dict",
    "qsp_result_to_dict",
    "qsp_result_from_dict",
    "memory_baseline",
    "memory_to_dict",
    "memory_from_dict",
    "memory_merge_dict",
    "wal_header_to_dict",
    "wal_header_check",
    "wal_record_to_dict",
    "wal_record_from_dict",
    "dumps",
    "loads",
]

_GATE_TYPES: dict[str, type[Gate]] = {
    "x": XGate, "ry": RYGate, "rz": RZGate, "cx": CXGate, "cry": CRYGate,
    "crz": CRZGate, "mcry": MCRYGate, "mcx": MCXGate,
}


def state_to_dict(state: QState) -> dict[str, Any]:
    """Portable representation of a sparse state."""
    return {
        "kind": "qstate",
        "num_qubits": state.num_qubits,
        "amplitudes": {str(idx): amp for idx, amp in state.items()},
    }


def state_from_dict(data: dict[str, Any]) -> QState:
    """Inverse of :func:`state_to_dict`."""
    if data.get("kind") != "qstate":
        raise ReproError(f"not a serialized state: {data.get('kind')!r}")
    amps = {int(idx): float(amp)
            for idx, amp in data["amplitudes"].items()}
    return QState(int(data["num_qubits"]), amps)


def _gate_to_dict(gate: Gate) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": gate.name,
        "target": gate.target,
        "controls": [list(c) for c in gate.controls],
    }
    theta = getattr(gate, "theta", None)
    if theta is not None:
        out["theta"] = theta
    return out


def _gate_from_dict(data: dict[str, Any]) -> Gate:
    cls = _GATE_TYPES.get(data["name"])
    if cls is None:
        raise ReproError(f"unknown gate name {data['name']!r}")
    kwargs: dict[str, Any] = {
        "target": int(data["target"]),
        "controls": tuple((int(q), int(p)) for q, p in data["controls"]),
    }
    if "theta" in data:
        kwargs["theta"] = float(data["theta"])
    return cls(**kwargs)


def circuit_to_dict(circuit: QCircuit) -> dict[str, Any]:
    """Portable representation of a circuit (lossless angles)."""
    return {
        "kind": "qcircuit",
        "num_qubits": circuit.num_qubits,
        "gates": [_gate_to_dict(g) for g in circuit],
    }


def circuit_from_dict(data: dict[str, Any]) -> QCircuit:
    """Inverse of :func:`circuit_to_dict`."""
    if data.get("kind") != "qcircuit":
        raise ReproError(f"not a serialized circuit: {data.get('kind')!r}")
    circuit = QCircuit(int(data["num_qubits"]))
    for gate_data in data["gates"]:
        circuit.append(_gate_from_dict(gate_data))
    return circuit


def search_result_to_dict(result) -> dict[str, Any]:
    """Portable form of a :class:`~repro.core.astar.SearchResult`.

    Only the served fields travel (circuit, cost, optimality) — moves and
    stats are process-local diagnostics, exactly as in the race-portfolio
    wire format.
    """
    return {
        "kind": "search_result",
        "circuit": circuit_to_dict(result.circuit),
        "cnot_cost": int(result.cnot_cost),
        "optimal": bool(result.optimal),
    }


def search_result_from_dict(data: dict[str, Any]):
    """Inverse of :func:`search_result_to_dict`."""
    from repro.core.astar import SearchResult

    if data.get("kind") != "search_result":
        raise ReproError(f"not a serialized result: {data.get('kind')!r}")
    return SearchResult(circuit=circuit_from_dict(data["circuit"]),
                        cnot_cost=int(data["cnot_cost"]),
                        optimal=bool(data["optimal"]))


def qsp_result_to_dict(result) -> dict[str, Any]:
    """Portable representation of a :class:`~repro.qsp.workflow.QSPResult`."""
    return {
        "kind": "qsp_result",
        "circuit": circuit_to_dict(result.circuit),
        "cnot_cost": int(result.cnot_cost),
        "sparse_path": bool(result.sparse_path),
        "exact_optimal": result.exact_optimal,
        "trace": list(result.trace),
    }


def qsp_result_from_dict(data: dict[str, Any]):
    """Inverse of :func:`qsp_result_to_dict`."""
    from repro.qsp.workflow import QSPResult

    if data.get("kind") != "qsp_result":
        raise ReproError(f"not a serialized result: {data.get('kind')!r}")
    return QSPResult(circuit=circuit_from_dict(data["circuit"]),
                     cnot_cost=int(data["cnot_cost"]),
                     sparse_path=bool(data["sparse_path"]),
                     exact_optimal=data["exact_optimal"],
                     trace=list(data["trace"]))


# ----------------------------------------------------------------------
# Search-memory snapshots (service-layer persistence)
# ----------------------------------------------------------------------

_U64 = (1 << 64) - 1


def _b64(raw: bytes) -> str:
    return base64.b64encode(raw).decode("ascii")


def _unb64(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise MemoryCompatibilityError(
            f"corrupted snapshot payload: {exc}") from exc


def _canon_key_enc(key) -> list:
    """Portable :class:`~repro.core.kernel.CanonKey`: ``[n, tag, full]``.

    Only the process-independent identity is stored — the 64-bit lookup
    hash is rederived on decode (``full & _U64`` for orbit-hash keys,
    this process's SipHash for payload keys).
    """
    full = key.full
    if isinstance(full, int):
        return [key.n, "i", format(full, "x")]
    return [key.n, "b", _b64(full)]


def _canon_key_dec(enc: list):
    from repro.core.kernel import CanonKey, state_hash64

    try:
        n, tag, body = enc
        if tag == "i":
            full: Any = int(body, 16)
            return CanonKey(int(n), full & _U64, full)
        if tag == "b":
            payload = _unb64(body)
            return CanonKey(int(n), state_hash64(payload), payload)
    except (ValueError, TypeError) as exc:
        raise MemoryCompatibilityError(
            f"corrupted canonical key {enc!r}: {exc}") from exc
    raise MemoryCompatibilityError(f"unknown canonical-key tag {enc!r}")


def memory_baseline(memory) -> dict[str, Any]:
    """Size markers for delta snapshots (see :func:`memory_to_dict`).

    Capture right after seeding a memory (e.g. a batch worker loading the
    shared snapshot); a later ``memory_to_dict(memory, since=baseline)``
    then ships only what was learned afterwards.
    """
    return {
        "canon_store": memory.canon_store.size_marker(),
        "h_store": memory.h_store.size_marker(),
        "transposition_data": len(memory.transposition.data),
        "transposition_cond": len(memory.transposition.cond),
        "transposition_evictions": memory.transposition.evictions,
        "transposition_improved": memory.transposition.improve_marker(),
        "pdb": memory.pdb.marker(),
        "lane_stats": {name: dict(row)
                       for name, row in memory.lane_stats.items()},
    }


def _lane_stats_delta(current: dict, base: dict) -> dict:
    """Counter-wise difference of lane-outcome stats (delta shipping).

    Lane counters merge *additively* (unlike the stores' by-identity
    overwrite), so a worker's delta must subtract the baseline it was
    seeded with — otherwise every merge would re-add the snapshot's own
    history.
    """
    delta: dict = {}
    for name, row in current.items():
        base_row = base.get(name, {})
        diff = {k: int(v) - int(base_row.get(k, 0)) for k, v in row.items()}
        if any(diff.values()):
            delta[name] = diff
    return delta


def memory_to_dict(memory, since: dict[str, Any] | None = None
                   ) -> dict[str, Any]:
    """Portable snapshot of a :class:`~repro.core.memory.SearchMemory`.

    Captures everything that is worth carrying across processes: the
    canon-key and heuristic stores and the transposition table (both
    entry kinds), plus the regime fingerprint and container caps.  The
    interning pool is deliberately *not* captured — interned states are
    rebuilt on demand and their hashes are per-process anyway.

    ``since`` (a :func:`memory_baseline` captured earlier) restricts the
    snapshot to entries added after that point — the delta a batch worker
    ships home, a small fraction of a snapshot-seeded memory.  All
    containers are insertion-ordered, so the delta is a suffix slice;
    in-place improvements of pre-existing transposition entries are
    folded back in via the table's improvement logs (see
    :meth:`~repro.core.memory.TranspositionTable.improve_marker`), so
    merging a delta reproduces the source memory exactly — the property
    the service WAL's replay-equals-snapshot guarantee rests on.  When
    the logs overflowed (or an eviction sweep ran) since the baseline,
    the delta falls back to shipping the whole capped table.

    Raises :class:`MemoryCompatibilityError` if the memory's heuristic
    has no importable name (such a memory cannot cross processes).
    """
    from itertools import islice

    from repro.utils.fingerprint import fingerprint_to_dict

    fp = memory.fingerprint
    transposition = memory.transposition
    canon_since = h_since = None
    skip_data = skip_cond = 0
    improved_data: list = []
    improved_cond: list = []
    lane_stats = {name: dict(row) for name, row in memory.lane_stats.items()}
    if since is not None:
        canon_since = tuple(since["canon_store"])
        h_since = tuple(since["h_store"])
        # budget-weighted eviction deletes arbitrary positions, and an
        # improvement-log overflow clears the logs — either invalidates
        # the positional skips, and the only safe delta is the whole
        # (capped) table
        imp = since.get("transposition_improved")
        if (transposition.evictions == since["transposition_evictions"]
                and imp is not None
                and int(imp[2]) == transposition.improve_overflows):
            skip_data = int(since["transposition_data"])
            skip_cond = int(since["transposition_cond"])
            improved_data = list(dict.fromkeys(
                islice(transposition.improved_data, int(imp[0]), None)))
            improved_cond = list(dict.fromkeys(
                islice(transposition.improved_cond, int(imp[1]), None)))
        lane_stats = _lane_stats_delta(lane_stats,
                                       since.get("lane_stats", {}))
    data_items = list(islice(transposition.data.items(), skip_data, None))
    if improved_data:
        # keys inserted after the baseline already carry their current
        # (improved) value in the suffix slice; only improvements to
        # pre-baseline entries need folding in
        suffix_keys = {key for key, _ in data_items}
        data_items.extend(
            (key, transposition.data[key]) for key in improved_data
            if key not in suffix_keys and key in transposition.data)
    cond_items = list(islice(transposition.cond.items(), skip_cond, None))
    if improved_cond:
        suffix_keys = {key for key, _ in cond_items}
        cond_items.extend(
            (key, transposition.cond[key]) for key in improved_cond
            if key not in suffix_keys and key in transposition.cond)
    return {
        "kind": "search_memory",
        "version": MEMORY_SNAPSHOT_VERSION,
        "fingerprint": None if fp is None else fingerprint_to_dict(fp),
        "caps": {
            "store": memory.canon_store.cap,
            "transposition": transposition.cap,
            "pool_rotate": memory.pool_rotate_cap,
        },
        "canon_store": [[_b64(payload), _canon_key_enc(value)]
                        for payload, value
                        in memory.canon_store.items_payload(canon_since)],
        "h_store": [[_b64(payload), value]
                    for payload, value
                    in memory.h_store.items_payload(h_since)],
        "transposition": {
            # per-entry generation stamps ride along (third/fourth
            # position), so relative entry ages survive the disk round
            # trip and age-weighted eviction keeps working after a boot
            "generation": transposition.generation,
            "data": [[_canon_key_enc(key), budget,
                      transposition.data_gen.get(key, 0)]
                     for key, budget in data_items],
            "cond": [[_canon_key_enc(key), budget,
                      [_canon_key_enc(c) for c in required],
                      transposition.cond_gen.get(key, 0)]
                     for key, (budget, required) in cond_items],
        },
        # additive section (still v2): the pattern database's evidence.
        # Signatures are process-independent by construction, so no
        # re-keying is needed; the delta marker mirrors the transposition
        # improvement-log discipline (eviction/overflow -> whole dump).
        "pdb": memory.pdb.to_dict(
            since=None if since is None else since.get("pdb")),
        "lane_stats": lane_stats,
    }


#: Readable snapshot versions.  v2 (current, written) added transposition
#: generation stamps + lane stats; v1 is a strict subset, so loading it is
#: lossless — entries simply age from epoch 0 and no lane history exists.
#: Hard-rejecting v1 would throw away a deployed service's warm memory on
#: upgrade for no safety gain; genuinely incompatible layouts still get a
#: new number outside this set.
_READABLE_MEMORY_SNAPSHOT_VERSIONS = frozenset(
    {1, MEMORY_SNAPSHOT_VERSION})


def _check_memory_header(data: dict[str, Any]) -> None:
    if not isinstance(data, dict):
        raise MemoryCompatibilityError(
            f"not a serialized SearchMemory: {type(data).__name__}")
    if data.get("kind") != "search_memory":
        raise MemoryCompatibilityError(
            f"not a serialized SearchMemory: kind={data.get('kind')!r}")
    version = data.get("version")
    if version not in _READABLE_MEMORY_SNAPSHOT_VERSIONS:
        raise MemoryCompatibilityError(
            f"snapshot format version {version!r} is not readable by this "
            f"build (supported: "
            f"{sorted(_READABLE_MEMORY_SNAPSHOT_VERSIONS)}); regenerate "
            f"the snapshot with this build")


def _fill_memory(memory, data: dict[str, Any]) -> None:
    """Pour snapshot entries into ``memory`` (re-keyed for this process)."""
    try:
        for payload_b64, value_enc in data["canon_store"]:
            memory.canon_store.put_payload(_unb64(payload_b64),
                                           _canon_key_dec(value_enc))
        for payload_b64, value in data["h_store"]:
            memory.h_store.put_payload(_unb64(payload_b64), float(value))
        table = data["transposition"]
        # entries are [key, budget, gen] / [key, budget, required, gen];
        # v1 snapshots carry the shorter stamp-less forms and no table
        # generation — their entries load as epoch 0, which is exactly
        # their age relative to the aging introduced with v2
        memory.transposition.generation = max(
            memory.transposition.generation,
            int(table.get("generation", 0)))
        for entry in table["data"]:
            key_enc, budget = entry[0], entry[1]
            gen = int(entry[2]) if len(entry) > 2 else 0
            memory.transposition.record(_canon_key_dec(key_enc),
                                        float(budget), frozenset(),
                                        generation=gen)
        for entry in table["cond"]:
            key_enc, budget, required_enc = entry[0], entry[1], entry[2]
            gen = int(entry[3]) if len(entry) > 3 else 0
            memory.transposition.record(
                _canon_key_dec(key_enc), float(budget),
                frozenset(_canon_key_dec(c) for c in required_enc),
                generation=gen)
        # additive: snapshots from before the pattern database simply
        # lack the section (v1, or early v2) and load with an empty PDB
        pdb_section = data.get("pdb")
        if pdb_section is not None:
            memory.pdb.merge_dict(pdb_section)
        for name, row in data.get("lane_stats", {}).items():
            stats_row = memory.lane_stats.setdefault(
                str(name), {"runs": 0, "wins": 0, "feasible": 0,
                            "timeouts": 0})
            for counter, value in row.items():
                stats_row[counter] = stats_row.get(counter, 0) + int(value)
    except (KeyError, ValueError, TypeError) as exc:
        raise MemoryCompatibilityError(
            f"corrupted SearchMemory snapshot: {exc!r}") from exc


def memory_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`~repro.core.memory.SearchMemory` from a snapshot.

    The restored memory is pinned to the snapshot's regime fingerprint up
    front, so attaching a search under any other regime raises
    :class:`MemoryCompatibilityError` exactly as in-process reuse would.
    Corrupted or version-mismatched snapshots raise the same error.
    """
    from repro.core.memory import SearchMemory
    from repro.utils.fingerprint import fingerprint_from_dict

    _check_memory_header(data)
    try:
        caps = data["caps"]
        memory = SearchMemory(store_cap=int(caps["store"]),
                              transposition_cap=int(caps["transposition"]),
                              pool_rotate_cap=int(caps["pool_rotate"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise MemoryCompatibilityError(
            f"corrupted SearchMemory snapshot: {exc!r}") from exc
    if data.get("fingerprint") is not None:
        memory.pin(fingerprint_from_dict(data["fingerprint"]))
    _fill_memory(memory, data)
    return memory


def memory_merge_dict(memory, data: dict[str, Any]) -> None:
    """Merge a snapshot's entries into an existing memory (worker deltas).

    The snapshot's regime must be compatible: its fingerprint is pinned
    onto ``memory`` first (raising on mismatch), then entries are poured
    in — store entries overwrite by payload identity (the values are
    deterministic per regime, so this only deduplicates), and
    transposition entries merge under the table's improve-only rule.
    """
    from repro.utils.fingerprint import fingerprint_from_dict

    _check_memory_header(data)
    if data.get("fingerprint") is not None:
        memory.pin(fingerprint_from_dict(data["fingerprint"]))
    _fill_memory(memory, data)


# ----------------------------------------------------------------------
# Memory-WAL records (service-layer incremental persistence)
# ----------------------------------------------------------------------
#
# The service's write-ahead log is a JSONL file: one header line followed
# by one record per settled request.  The codec lives here next to the
# snapshot codec it wraps; the file handling (append/replay/compaction)
# is :class:`repro.service.persistence.MemoryWAL`.


def wal_header_to_dict(fingerprint) -> dict[str, Any]:
    """Header line of a memory WAL (version + regime fingerprint)."""
    from repro.utils.fingerprint import fingerprint_to_dict

    return {
        "kind": "memory_wal",
        "version": MEMORY_WAL_VERSION,
        "fingerprint": (None if fingerprint is None
                        else fingerprint_to_dict(fingerprint)),
    }


def wal_header_check(data: Any) -> Any:
    """Validate a WAL header line; return its fingerprint (or ``None``).

    Raises :class:`MemoryCompatibilityError` on anything other than a
    well-formed header of the supported version — a WAL from a different
    build must never be replayed into a live memory.
    """
    from repro.utils.fingerprint import fingerprint_from_dict

    if not isinstance(data, dict) or data.get("kind") != "memory_wal":
        raise MemoryCompatibilityError(
            f"not a memory WAL header: "
            f"{data.get('kind') if isinstance(data, dict) else data!r}")
    version = data.get("version")
    if version != MEMORY_WAL_VERSION:
        raise MemoryCompatibilityError(
            f"memory WAL format version {version!r} is not readable by "
            f"this build (expected {MEMORY_WAL_VERSION}); remove or "
            f"compact the log with the build that wrote it")
    fp = data.get("fingerprint")
    if fp is None:
        return None
    try:
        return fingerprint_from_dict(fp)
    except (KeyError, ValueError, TypeError) as exc:
        raise MemoryCompatibilityError(
            f"corrupted WAL header fingerprint: {exc!r}") from exc


def wal_record_to_dict(seq: int, delta: dict[str, Any]) -> dict[str, Any]:
    """One WAL record: a sequence number plus a memory-delta snapshot."""
    return {"kind": "memory_wal_record", "seq": int(seq), "delta": delta}


def wal_record_from_dict(data: Any) -> tuple[int, dict[str, Any]]:
    """Inverse of :func:`wal_record_to_dict` → ``(seq, delta)``."""
    if not isinstance(data, dict) or data.get("kind") != "memory_wal_record":
        raise MemoryCompatibilityError(
            f"not a memory WAL record: "
            f"{data.get('kind') if isinstance(data, dict) else data!r}")
    try:
        seq = int(data["seq"])
        delta = data["delta"]
    except (KeyError, ValueError, TypeError) as exc:
        raise MemoryCompatibilityError(
            f"corrupted WAL record: {exc!r}") from exc
    if not isinstance(delta, dict):
        raise MemoryCompatibilityError(
            f"corrupted WAL record delta: {type(delta).__name__}")
    return seq, delta


def dumps(obj: QState | QCircuit, indent: int | None = None) -> str:
    """Serialize a state or circuit to a JSON string."""
    if isinstance(obj, QState):
        return json.dumps(state_to_dict(obj), indent=indent)
    if isinstance(obj, QCircuit):
        return json.dumps(circuit_to_dict(obj), indent=indent)
    raise ReproError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> QState | QCircuit:
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "qstate":
        return state_from_dict(data)
    if kind == "qcircuit":
        return circuit_from_dict(data)
    raise ReproError(f"unknown serialized kind {kind!r}")

"""JSON serialization for states, circuits, and synthesis results.

A release-quality artifact: benchmark outputs and synthesized circuits can
be persisted and reloaded without OpenQASM's angle round-off ambiguity
(angles are stored as exact binary floats via ``repr``).
"""

from __future__ import annotations

import json
from typing import Any

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import (
    CRYGate,
    CRZGate,
    CXGate,
    Gate,
    MCRYGate,
    MCXGate,
    RYGate,
    RZGate,
    XGate,
)
from repro.exceptions import ReproError
from repro.states.qstate import QState

__all__ = [
    "state_to_dict",
    "state_from_dict",
    "circuit_to_dict",
    "circuit_from_dict",
    "dumps",
    "loads",
]

_GATE_TYPES: dict[str, type[Gate]] = {
    "x": XGate, "ry": RYGate, "rz": RZGate, "cx": CXGate, "cry": CRYGate,
    "crz": CRZGate, "mcry": MCRYGate, "mcx": MCXGate,
}


def state_to_dict(state: QState) -> dict[str, Any]:
    """Portable representation of a sparse state."""
    return {
        "kind": "qstate",
        "num_qubits": state.num_qubits,
        "amplitudes": {str(idx): amp for idx, amp in state.items()},
    }


def state_from_dict(data: dict[str, Any]) -> QState:
    """Inverse of :func:`state_to_dict`."""
    if data.get("kind") != "qstate":
        raise ReproError(f"not a serialized state: {data.get('kind')!r}")
    amps = {int(idx): float(amp)
            for idx, amp in data["amplitudes"].items()}
    return QState(int(data["num_qubits"]), amps)


def _gate_to_dict(gate: Gate) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": gate.name,
        "target": gate.target,
        "controls": [list(c) for c in gate.controls],
    }
    theta = getattr(gate, "theta", None)
    if theta is not None:
        out["theta"] = theta
    return out


def _gate_from_dict(data: dict[str, Any]) -> Gate:
    cls = _GATE_TYPES.get(data["name"])
    if cls is None:
        raise ReproError(f"unknown gate name {data['name']!r}")
    kwargs: dict[str, Any] = {
        "target": int(data["target"]),
        "controls": tuple((int(q), int(p)) for q, p in data["controls"]),
    }
    if "theta" in data:
        kwargs["theta"] = float(data["theta"])
    return cls(**kwargs)


def circuit_to_dict(circuit: QCircuit) -> dict[str, Any]:
    """Portable representation of a circuit (lossless angles)."""
    return {
        "kind": "qcircuit",
        "num_qubits": circuit.num_qubits,
        "gates": [_gate_to_dict(g) for g in circuit],
    }


def circuit_from_dict(data: dict[str, Any]) -> QCircuit:
    """Inverse of :func:`circuit_to_dict`."""
    if data.get("kind") != "qcircuit":
        raise ReproError(f"not a serialized circuit: {data.get('kind')!r}")
    circuit = QCircuit(int(data["num_qubits"]))
    for gate_data in data["gates"]:
        circuit.append(_gate_from_dict(gate_data))
    return circuit


def dumps(obj: QState | QCircuit, indent: int | None = None) -> str:
    """Serialize a state or circuit to a JSON string."""
    if isinstance(obj, QState):
        return json.dumps(state_to_dict(obj), indent=indent)
    if isinstance(obj, QCircuit):
        return json.dumps(circuit_to_dict(obj), indent=indent)
    raise ReproError(f"cannot serialize {type(obj).__name__}")


def loads(text: str) -> QState | QCircuit:
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "qstate":
        return state_from_dict(data)
    if kind == "qcircuit":
        return circuit_from_dict(data)
    raise ReproError(f"unknown serialized kind {kind!r}")

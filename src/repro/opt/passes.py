"""Peephole circuit optimization passes.

Synthesis flows occasionally emit adjacent gate pairs that cancel (e.g. the
un-pruned multiplexor's trailing CNOT against the next multiplexor's leading
one) or rotations that fuse.  These passes clean that up without changing
the circuit's unitary:

* ``cancel_inverse_pairs`` — adjacent self-inverse duplicates (X, CX) and
  exact inverse rotations vanish;
* ``fuse_rotations`` — adjacent same-axis rotations on the same wire (and
  same controls) add their angles; near-zero rotations are dropped.

Adjacency is tracked per qubit: two gates are adjacent when no gate between
them touches any common qubit.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import (
    CRYGate,
    CRZGate,
    CXGate,
    Gate,
    MCRYGate,
    RYGate,
    RZGate,
    XGate,
)

__all__ = ["optimize_circuit", "cancel_inverse_pairs", "fuse_rotations"]

_ANGLE_EPS = 1e-12


def _is_rotation(gate: Gate) -> bool:
    return isinstance(gate, (RYGate, RZGate, CRYGate, CRZGate, MCRYGate))


def _same_frame(a: Gate, b: Gate) -> bool:
    """Same gate type acting on the same target with the same controls."""
    return (type(a) is type(b) and a.target == b.target
            and a.controls == b.controls)


def _fused(a: Gate, b: Gate) -> Gate | None:
    """Fuse two adjacent rotations in the same frame; None when the sum is
    an identity."""
    theta = a.theta + b.theta  # type: ignore[attr-defined]
    if abs(math.remainder(theta, 4.0 * math.pi)) < _ANGLE_EPS:
        return None
    return type(a)(target=a.target, controls=a.controls, theta=theta)


def _one_pass(circuit: QCircuit) -> tuple[QCircuit, bool]:
    out: list[Gate] = []
    last_touch: dict[int, int] = {}
    changed = False
    for gate in circuit:
        qubits = gate.qubits()
        frontier = max((last_touch.get(q, -1) for q in qubits), default=-1)
        prev = out[frontier] if frontier >= 0 else None
        merged = False
        if prev is not None and _same_frame(prev, gate):
            if isinstance(gate, (XGate, CXGate)):
                out[frontier] = None  # type: ignore[call-overload]
                merged = True
            elif _is_rotation(gate):
                fusion = _fused(prev, gate)
                out[frontier] = fusion  # type: ignore[call-overload]
                merged = True
        if merged:
            changed = True
            # Rebuild the frontier map (indices may now point at holes, but
            # holes never match _same_frame, so correctness is preserved).
            if out[frontier] is None:
                for q in qubits:
                    last_touch.pop(q, None)
            continue
        if _is_rotation(gate) and not gate.controls and \
                abs(math.remainder(gate.theta,  # type: ignore[attr-defined]
                                   4.0 * math.pi)) < _ANGLE_EPS:
            changed = True
            continue  # drop identity rotations
        out.append(gate)
        idx = len(out) - 1
        for q in qubits:
            last_touch[q] = idx
    result = QCircuit(circuit.num_qubits,
                      (g for g in out if g is not None))
    return result, changed


def cancel_inverse_pairs(circuit: QCircuit) -> QCircuit:
    """Single cleanup pass (see module docstring)."""
    result, _ = _one_pass(circuit)
    return result


def fuse_rotations(circuit: QCircuit) -> QCircuit:
    """Alias of :func:`cancel_inverse_pairs` — fusion happens in the same
    sweep."""
    return cancel_inverse_pairs(circuit)


def optimize_circuit(circuit: QCircuit, max_rounds: int = 16) -> QCircuit:
    """Run cleanup passes to a fixpoint (bounded by ``max_rounds``)."""
    current = circuit
    for _ in range(max_rounds):
        current, changed = _one_pass(current)
        if not changed:
            break
    return current

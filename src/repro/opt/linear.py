"""CNOT-block resynthesis via linear reversible-circuit synthesis.

A CNOT-only circuit computes an invertible linear map over GF(2).  The
Patel-Markov-Hayes (PMH) algorithm resynthesizes any such map with
``O(n^2 / log n)`` CNOTs — often far fewer than the block it replaces.
:func:`resynthesize_cnot_blocks` scans a circuit for maximal runs of
positive-polarity CNOTs and swaps each run for its PMH resynthesis when
that is cheaper, preserving the overall unitary exactly.

This is the classic EDA-style post-pass for the CNOT-minimization objective
the paper targets; it composes with any of the synthesis flows.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, Gate
from repro.exceptions import CircuitError

__all__ = [
    "cnot_circuit_to_matrix",
    "matrix_to_cnot_circuit",
    "pmh_synthesize",
    "resynthesize_cnot_blocks",
]


def cnot_circuit_to_matrix(gates: list[Gate], num_qubits: int) -> np.ndarray:
    """GF(2) matrix ``A`` with ``x_out = A @ x_in`` for a CNOT-only run.

    Row ``i`` describes which input bits XOR into output wire ``i``.
    Only positive-polarity CX gates are allowed.
    """
    mat = np.eye(num_qubits, dtype=np.uint8)
    for gate in gates:
        if not isinstance(gate, CXGate) or gate.phase != 1:
            raise CircuitError(f"not a plain CNOT: {gate}")
        # CX(c, t): wire t becomes t XOR c.
        mat[gate.target, :] ^= mat[gate.control, :]
    return mat


def _lower_triangular_synth(mat: np.ndarray, section_size: int
                            ) -> list[tuple[int, int]]:
    """PMH elimination to lower-triangular form; returns (control, target)
    row operations ``row[t] ^= row[c]``."""
    n = mat.shape[0]
    ops: list[tuple[int, int]] = []
    num_sections = (n + section_size - 1) // section_size
    for sec in range(num_sections):
        lo = sec * section_size
        hi = min(lo + section_size, n)
        # Step A: deduplicate identical sub-rows below the diagonal band.
        patterns: dict[tuple, int] = {}
        for row in range(lo, n):
            pattern = tuple(mat[row, lo:hi])
            if not any(pattern):
                continue
            first = patterns.get(pattern)
            if first is None:
                patterns[pattern] = row
            else:
                mat[row, :] ^= mat[first, :]
                ops.append((first, row))
        # Step B: Gaussian elimination inside the section.
        for col in range(lo, hi):
            pivot = -1
            if mat[col, col]:
                pivot = col
            else:
                for row in range(col + 1, n):
                    if mat[row, col]:
                        pivot = row
                        break
                if pivot < 0:
                    raise CircuitError("matrix is singular over GF(2)")
                mat[col, :] ^= mat[pivot, :]
                ops.append((pivot, col))
                pivot = col
            for row in range(col + 1, n):
                if mat[row, col]:
                    mat[row, :] ^= mat[col, :]
                    ops.append((col, row))
    return ops


def pmh_synthesize(matrix: np.ndarray,
                   section_size: int | None = None) -> list[CXGate]:
    """Patel-Markov-Hayes synthesis of an invertible GF(2) matrix.

    Returns a CNOT list realizing ``x -> matrix @ x``.  ``section_size``
    defaults to ``max(1, round(log2 n / 2))`` as in the original paper.
    """
    mat = np.array(matrix, dtype=np.uint8) & 1
    n = mat.shape[0]
    if mat.shape != (n, n):
        raise CircuitError("matrix must be square")
    if section_size is None:
        section_size = max(1, int(round(np.log2(max(n, 2)) / 2)))
    # Lower-triangular both ways: M = L; then eliminate the upper part by
    # transposing (standard PMH trick).
    work = mat.copy()
    lower_ops = _lower_triangular_synth(work, section_size)
    work_t = work.T.copy()
    upper_ops = _lower_triangular_synth(work_t, section_size)
    if not np.array_equal(work_t, np.eye(n, dtype=np.uint8)):
        raise CircuitError("PMH elimination failed (singular matrix?)")

    # Phase 1 reduced M to upper-triangular U with ops E_1..E_k
    # (U = E_k..E_1 M); phase 2 reduced U^T to I with ops F_1..F_l
    # (I = F_l..F_1 U^T, i.e. U = F_l^T..F_1^T).  Hence
    # M = E_1..E_k F_l^T..F_1^T, which as a *gate list* (first gate =
    # rightmost factor) is [F_1^T, .., F_l^T, E_k, .., E_1]; transposing an
    # elementary row-add swaps control and target.
    gates: list[CXGate] = []
    for control, target in upper_ops:
        gates.append(CXGate.make(target, control))
    for control, target in reversed(lower_ops):
        gates.append(CXGate.make(control, target))
    return gates


def matrix_to_cnot_circuit(matrix: np.ndarray, num_qubits: int) -> QCircuit:
    """Convenience wrapper: PMH synthesis into a :class:`QCircuit`."""
    circuit = QCircuit(num_qubits)
    for gate in pmh_synthesize(matrix):
        circuit.append(gate)
    return circuit


def resynthesize_cnot_blocks(circuit: QCircuit,
                             min_block: int = 3) -> QCircuit:
    """Replace maximal plain-CNOT runs with PMH resyntheses when cheaper.

    Runs shorter than ``min_block`` are left alone (PMH cannot beat them).
    The result computes the same unitary (checked in the test suite).
    """
    out = QCircuit(circuit.num_qubits)
    block: list[Gate] = []

    def flush() -> None:
        nonlocal block
        if not block:
            return
        if len(block) >= min_block:
            mat = cnot_circuit_to_matrix(block, circuit.num_qubits)
            replacement = pmh_synthesize(mat)
            if len(replacement) < len(block):
                out.extend(replacement)
                block = []
                return
        out.extend(block)
        block = []

    for gate in circuit:
        if isinstance(gate, CXGate) and gate.phase == 1:
            block.append(gate)
        else:
            flush()
            out.append(gate)
    flush()
    return out

"""Post-synthesis optimization pipeline (extension).

Chains the library's independent cleanup passes into one fixpoint loop:

1. :func:`repro.opt.passes.optimize_circuit` — adjacent inverse-pair
   cancellation and rotation fusion;
2. :func:`repro.opt.commute.commuting_cancellation` — self-inverse pairs
   separated by commuting gates;
3. :func:`repro.opt.linear.resynthesize_cnot_blocks` — PMH resynthesis of
   plain-CNOT runs.

Applied to circuits from the *baseline* flows this measures how much of
the paper's exact-synthesis advantage a classic peephole pipeline can and
cannot recover (spoiler: the structural constraints the paper identifies
are not peephole-repairable — see ``benchmarks/bench_postopt.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QCircuit
from repro.opt.commute import commuting_cancellation
from repro.opt.linear import resynthesize_cnot_blocks
from repro.opt.passes import optimize_circuit

__all__ = ["PostOptReport", "postoptimize"]


@dataclass
class PostOptReport:
    """Before/after accounting of one pipeline run."""

    circuit: QCircuit
    cnots_before: int
    cnots_after: int
    rounds: int

    @property
    def cnots_saved(self) -> int:
        return self.cnots_before - self.cnots_after

    @property
    def percent_saved(self) -> float:
        if self.cnots_before == 0:
            return 0.0
        return 100.0 * self.cnots_saved / self.cnots_before


def postoptimize(circuit: QCircuit, max_rounds: int = 8,
                 resynthesize: bool = True) -> PostOptReport:
    """Run the cleanup pipeline to a CNOT-count fixpoint.

    The input circuit should be decomposed (``{X, Ry, Rz, CX}``) for the
    commutation and PMH stages to see through it; higher-level gates pass
    through the peephole stage untouched.  Every stage preserves the
    circuit unitary (property-tested), so the pipeline is safe to apply
    to any synthesis output.
    """
    before = circuit.decompose().cnot_cost()
    current = circuit
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        previous_cost = current.decompose().cnot_cost()
        current = optimize_circuit(current)
        lowered = current.decompose()
        lowered = commuting_cancellation(lowered)
        if resynthesize:
            lowered = resynthesize_cnot_blocks(lowered)
        lowered = optimize_circuit(lowered)
        if lowered.cnot_cost() >= previous_cost:
            break
        current = lowered
    return PostOptReport(circuit=current,
                         cnots_before=before,
                         cnots_after=current.decompose().cnot_cost(),
                         rounds=rounds)

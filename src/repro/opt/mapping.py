"""Coupling-constraint-aware CNOT cost (extension).

The paper motivates CNOT minimization with the coupling constraints of NISQ
devices and assumes a symmetric coupling graph for the permutation
equivalence.  This module quantifies what a synthesized circuit costs on a
*restricted* coupling graph: a CNOT between non-adjacent qubits is routed
with SWAP chains (3 CNOTs per hop, both directions amortized as
``4*(d-1) + 1`` CNOTs for a distance-``d`` pair — the standard nearest-
neighbour routing estimate).

Also provides a budgeted placement search that permutes wire labels to
reduce the routed cost (wire relabeling is free for state preparation).
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError

__all__ = [
    "line_coupling",
    "ring_coupling",
    "grid_coupling",
    "routed_cnot_cost",
    "best_placement",
]


def line_coupling(num_qubits: int) -> nx.Graph:
    """Linear nearest-neighbour coupling ``0 - 1 - ... - n-1``."""
    return nx.path_graph(num_qubits)


def ring_coupling(num_qubits: int) -> nx.Graph:
    """Ring coupling (line plus wrap-around edge)."""
    return nx.cycle_graph(num_qubits)


def grid_coupling(rows: int, cols: int) -> nx.Graph:
    """2D grid coupling, nodes relabeled ``0 .. rows*cols - 1``."""
    grid = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(grid, ordering="sorted")


def _distances(graph: nx.Graph) -> dict[int, dict[int, int]]:
    return dict(nx.all_pairs_shortest_path_length(graph))


def routed_cnot_cost(circuit: QCircuit, graph: nx.Graph,
                     placement: list[int] | None = None) -> int:
    """Total CNOT cost of the *decomposed* circuit under routing.

    ``placement[i]`` is the physical node of logical qubit ``i`` (identity
    by default).  Each CX at physical distance ``d`` costs ``4*(d-1) + 1``.
    """
    n = circuit.num_qubits
    if graph.number_of_nodes() < n:
        raise CircuitError(
            f"coupling graph has {graph.number_of_nodes()} nodes, "
            f"circuit needs {n}")
    if placement is None:
        placement = list(range(n))
    if sorted(placement) != sorted(set(placement)) or len(placement) != n:
        raise CircuitError(f"invalid placement {placement}")
    dist = _distances(graph)
    total = 0
    for gate in circuit.decompose():
        if gate.name != "cx":
            continue
        a = placement[gate.controls[0][0]]
        b = placement[gate.target]
        d = dist[a].get(b)
        if d is None:
            raise CircuitError(f"coupling graph disconnects {a} and {b}")
        total += 4 * (d - 1) + 1
    return total


def best_placement(circuit: QCircuit, graph: nx.Graph,
                   max_trials: int = 500, seed: int = 0
                   ) -> tuple[list[int], int]:
    """Budgeted placement search: exhaustive for tiny registers, randomized
    otherwise.  Returns ``(placement, routed_cost)``."""
    n = circuit.num_qubits
    nodes = sorted(graph.nodes())[:n] if graph.number_of_nodes() > n \
        else sorted(graph.nodes())
    best: tuple[list[int], int] | None = None

    def consider(perm: list[int]) -> None:
        nonlocal best
        cost = routed_cnot_cost(circuit, graph, perm)
        if best is None or cost < best[1]:
            best = (list(perm), cost)

    import math
    if math.factorial(n) <= max_trials:
        for perm in itertools.permutations(nodes):
            consider(list(perm))
    else:
        rng = np.random.default_rng(seed)
        consider(list(nodes))
        for _ in range(max_trials - 1):
            consider([int(x) for x in rng.permutation(nodes)])
    assert best is not None
    return best

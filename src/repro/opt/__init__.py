"""Extensions: peephole optimization, coupling-aware costs, phase oracle."""

from repro.opt.graysynth import (
    diagonal_to_phase_polynomial,
    graysynth_order,
    phase_polynomial_circuit,
)
from repro.opt.linear import (
    cnot_circuit_to_matrix,
    matrix_to_cnot_circuit,
    pmh_synthesize,
    resynthesize_cnot_blocks,
)
from repro.opt.mapping import (
    best_placement,
    grid_coupling,
    line_coupling,
    ring_coupling,
    routed_cnot_cost,
)
from repro.opt.commute import commuting_cancellation, gates_commute
from repro.opt.passes import cancel_inverse_pairs, fuse_rotations, optimize_circuit
from repro.opt.pipeline import PostOptReport, postoptimize
from repro.opt.phase import phase_oracle_circuit, prepare_complex

__all__ = [
    "optimize_circuit",
    "cancel_inverse_pairs",
    "fuse_rotations",
    "commuting_cancellation",
    "gates_commute",
    "PostOptReport",
    "postoptimize",
    "line_coupling",
    "ring_coupling",
    "grid_coupling",
    "routed_cnot_cost",
    "best_placement",
    "phase_oracle_circuit",
    "prepare_complex",
    "diagonal_to_phase_polynomial",
    "graysynth_order",
    "phase_polynomial_circuit",
    "cnot_circuit_to_matrix",
    "matrix_to_cnot_circuit",
    "pmh_synthesize",
    "resynthesize_cnot_blocks",
]

"""GraySynth-style phase-polynomial synthesis (Amy-Azimzadeh-Mosca).

The paper's complex-amplitude pathway (Sec. VI-A, ref. [27]) uses a phase
oracle: a diagonal operator ``|x> -> e^{i f(x)} |x>`` where ``f`` is a
*phase polynomial* ``f(x) = sum_P theta_P * <P, x mod 2>`` over parities
``P`` of the input bits.  Such operators are exactly the {CNOT, Rz}
circuits, and GraySynth orders the parities so consecutive ones differ
little, sharing CNOTs between rotations.

This module implements:

* :func:`phase_polynomial_circuit` — synthesize ``{(parity, angle)}`` terms
  into a CNOT+Rz circuit whose final linear map is the identity (restored
  with PMH synthesis);
* :func:`diagonal_to_phase_polynomial` — convert an arbitrary diagonal
  phase profile into its parity spectrum (a scaled Walsh-Hadamard
  transform), connecting it to :mod:`repro.opt.phase`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, RZGate
from repro.exceptions import CircuitError
from repro.opt.linear import pmh_synthesize

__all__ = [
    "diagonal_to_phase_polynomial",
    "phase_polynomial_circuit",
    "graysynth_order",
]

_ANGLE_TOL = 1e-12


def diagonal_to_phase_polynomial(phases: np.ndarray
                                 ) -> list[tuple[int, float]]:
    """Parity spectrum of a diagonal phase profile.

    ``e^{i phases[x]} = e^{i c} * prod_P e^{i theta_P (-1)^{<P,x>} / ...}``
    — concretely, writing ``phases`` in the Walsh basis
    ``phases[x] = sum_P hat[P] * (-1)^{popcount(P & x)}`` and noting that
    ``(-1)^{<P,x>} = 1 - 2*(P.x mod 2)``, each nonzero Walsh coefficient
    with ``P != 0`` becomes a parity term ``(P, -2 * hat[P])`` (the ``P=0``
    term is a global phase and is dropped).
    """
    phases = np.asarray(phases, dtype=np.float64)
    size = phases.shape[0]
    if size & (size - 1):
        raise CircuitError(f"length {size} is not a power of two")
    # Walsh-Hadamard transform (self-inverse up to 1/size).
    hat = phases.copy()
    h = 1
    while h < size:
        for start in range(0, size, h * 2):
            a = hat[start:start + h].copy()
            b = hat[start + h:start + 2 * h].copy()
            hat[start:start + h] = a + b
            hat[start + h:start + 2 * h] = a - b
        h *= 2
    hat /= size
    terms = []
    for parity in range(1, size):
        if abs(hat[parity]) > _ANGLE_TOL:
            terms.append((parity, -2.0 * float(hat[parity])))
    return terms


def graysynth_order(parities: list[int]) -> list[int]:
    """Order parities to minimize successive Hamming distance (greedy
    nearest-neighbour chain seeded at the lightest parity)."""
    if not parities:
        return []
    remaining = sorted(set(parities), key=lambda p: (bin(p).count("1"), p))
    order = [remaining.pop(0)]
    while remaining:
        last = order[-1]
        nxt = min(remaining,
                  key=lambda p: (bin(p ^ last).count("1"), p))
        remaining.remove(nxt)
        order.append(nxt)
    return order


def phase_polynomial_circuit(num_qubits: int,
                             terms: list[tuple[int, float]]) -> QCircuit:
    """Synthesize ``|x> -> e^{i sum theta_P (P.x mod 2)} |x>``.

    Parities are encoded as integers with qubit 0 as the most significant
    bit (library convention).  Strategy: maintain the linear state of the
    wires; for each parity (in GraySynth order) steer one wire to hold it
    with CNOTs, apply ``Rz`` there, and finally restore the identity map
    with PMH synthesis.
    """
    if num_qubits < 1:
        raise CircuitError("need at least one qubit")
    circuit = QCircuit(num_qubits)
    angle_of: dict[int, float] = {}
    for parity, theta in terms:
        if not 0 < parity < (1 << num_qubits):
            raise CircuitError(f"parity {parity} out of range")
        angle_of[parity] = angle_of.get(parity, 0.0) + theta
    pending = {p: t for p, t in angle_of.items() if abs(t) > _ANGLE_TOL}
    if not pending:
        return circuit

    # wires[i] = parity currently carried by wire i (as an integer mask).
    wires = [1 << (num_qubits - 1 - q) for q in range(num_qubits)]

    def wire_bit(parity: int, q: int) -> int:
        return (parity >> (num_qubits - 1 - q)) & 1

    def _solve_subset(parity: int) -> list[int]:
        """Wires whose XOR equals ``parity`` (unique: rows are invertible)."""
        rows = list(wires)
        combo = [1 << i for i in range(num_qubits)]  # track row subsets
        target = parity
        subset_mask = 0
        for bitpos in range(num_qubits):
            bit = 1 << (num_qubits - 1 - bitpos)
            pivot = next((i for i in range(bitpos, num_qubits)
                          if rows[i] & bit), None)
            if pivot is None:
                continue
            rows[bitpos], rows[pivot] = rows[pivot], rows[bitpos]
            combo[bitpos], combo[pivot] = combo[pivot], combo[bitpos]
            for i in range(num_qubits):
                if i != bitpos and rows[i] & bit:
                    rows[i] ^= rows[bitpos]
                    combo[i] ^= combo[bitpos]
            if target & bit:
                target ^= rows[bitpos]
                subset_mask ^= combo[bitpos]
        if target:
            raise CircuitError(f"parity {parity:b} not in the row space")
        return [i for i in range(num_qubits) if (subset_mask >> i) & 1]

    for parity in graysynth_order(list(pending)):
        theta = pending[parity]
        if parity in wires:
            host = wires.index(parity)
        else:
            subset = _solve_subset(parity)
            # Host the parity on the subset wire already closest to it.
            host = min(subset,
                       key=lambda q: bin(wires[q] ^ parity).count("1"))
            for helper in subset:
                if helper != host:
                    circuit.append(CXGate.make(helper, host))
                    wires[host] ^= wires[helper]
        circuit.append(RZGate(target=host, theta=theta))

    # Restore the identity linear map.
    mat = np.zeros((num_qubits, num_qubits), dtype=np.uint8)
    for i, parity in enumerate(wires):
        for q in range(num_qubits):
            mat[i, q] = wire_bit(parity, q)
    for gate in reversed(pmh_synthesize(mat)):
        circuit.append(gate)
    return circuit

"""Complex-amplitude preparation via a phase oracle (extension).

The paper prepares real states and notes (Sec. VI-A) that "employing a
phase oracle, we can prepare arbitrary states with complex amplitudes"
[Amy et al.].  This module implements that extension:

1. prepare the magnitude state ``sum |c_x| |x>`` with the real workflow;
2. apply the diagonal ``D = diag(e^{i phi_x})`` synthesized from Rz
   rotation multiplexors (zero-angle segments pruned), dropping one global
   phase.

The diagonal recursion: a multiplexed ``Rz`` on the last qubit realizes the
phase *differences* of each sibling pair, leaving a diagonal on one fewer
qubit carrying the pair *averages*.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.circuits.decompose import multiplexed_rotation_gates
from repro.exceptions import StateError
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.states.qstate import QState

__all__ = ["phase_oracle_circuit", "prepare_complex"]


def phase_oracle_circuit(phases: np.ndarray, prune: bool = True) -> QCircuit:
    """Circuit implementing ``|x> -> e^{i phases[x]} |x>`` up to one global
    phase, built from Rz multiplexors (at most ``2**n - n - 1`` CNOTs after
    pruning; exactly ``2**n - 2`` unpruned, like a rotation cascade)."""
    phases = np.asarray(phases, dtype=np.float64)
    size = phases.shape[0]
    n = int(round(np.log2(size)))
    if 1 << n != size:
        raise StateError(f"phase vector length {size} not a power of two")
    circuit = QCircuit(n)
    current = phases
    for depth in range(n - 1, -1, -1):
        diffs = current[1::2] - current[0::2]
        circuit.extend(multiplexed_rotation_gates(
            list(range(depth)), depth, diffs, axis="z", prune=prune))
        current = 0.5 * (current[0::2] + current[1::2])
    return circuit


def prepare_complex(vector: np.ndarray,
                    config: QSPConfig | None = None) -> QCircuit:
    """Prepare an arbitrary normalized complex statevector (up to global
    phase): real workflow on the magnitudes + phase oracle."""
    vec = np.asarray(vector, dtype=np.complex128)
    norm = float(np.linalg.norm(vec))
    if abs(norm - 1.0) > 1e-6:
        vec = vec / norm
    mags = np.abs(vec)
    magnitude_state = QState.from_vector(mags)
    circuit = prepare_state(magnitude_state, config).circuit
    phases = np.where(mags > 1e-12, np.angle(vec), 0.0)
    # The magnitude circuit may prepare -|mags|; fold that sign into the
    # oracle would be wrong per-amplitude, so verify and fix globally.
    from repro.sim.statevector import simulate_circuit
    produced = simulate_circuit(circuit)
    ref = int(np.argmax(mags))
    if produced[ref].real < 0:
        phases = phases + np.pi  # global flip; harmless where mags == 0
    circuit.compose(phase_oracle_circuit(phases).embedded(circuit.num_qubits))
    return circuit

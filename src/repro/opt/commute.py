"""Commutation-aware gate cancellation (extension).

The peephole pass (:mod:`repro.opt.passes`) only merges gates that are
*adjacent* on their wires.  This pass additionally slides gates through
gates they commute with, which catches the classic pattern the multiplexor
flows emit::

    CX(0,1)  Ry(2, a)  CX(0,1)   ->   Ry(2, a)

Commutation rules used (sufficient, not complete):

* two CNOTs commute when neither control feeds the other's target;
* a single-qubit rotation commutes with any gate not touching its wire;
* an ``Ry`` on wire ``t`` commutes with a CNOT *targeting* ``t``?  No —
  only diagonal gates commute through controls, and nothing single-qubit
  commutes through a CNOT target except X; we keep the safe subset:
  disjoint supports, plus CX/CX with the rule above, plus X through a
  CX control of matching polarity semantics is *not* assumed.

The pass never changes the circuit unitary (property-tested against the
dense simulator on random circuits).
"""

from __future__ import annotations

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, Gate, RYGate, RZGate, XGate

__all__ = ["gates_commute", "commuting_cancellation"]


def gates_commute(a: Gate, b: Gate) -> bool:
    """Conservative commutation test (False when unsure)."""
    qubits_a = set(a.qubits())
    qubits_b = set(b.qubits())
    if not (qubits_a & qubits_b):
        return True
    if isinstance(a, CXGate) and isinstance(b, CXGate):
        # CX(c1,t1) and CX(c2,t2) commute iff c1 != t2 and c2 != t1
        # (shared controls or shared targets are fine); polarities only
        # matter on shared wires where the rule already decides.
        return a.control != b.target and b.control != a.target
    if isinstance(a, (RZGate,)) and isinstance(b, CXGate):
        # Rz commutes through a CNOT control
        return a.target == b.control
    if isinstance(b, (RZGate,)) and isinstance(a, CXGate):
        return b.target == a.control
    if isinstance(a, XGate) and isinstance(b, CXGate):
        # X commutes through a CNOT target
        return a.target == b.target
    if isinstance(b, XGate) and isinstance(a, CXGate):
        return b.target == a.target
    if isinstance(a, (RYGate, RZGate)) and isinstance(b, (RYGate, RZGate)):
        # same-wire rotations about the same axis commute
        return type(a) is type(b)
    return False


def _cancels(a: Gate, b: Gate) -> bool:
    """True when ``a`` directly followed by ``b`` is the identity."""
    if type(a) is not type(b):
        return False
    if isinstance(a, (XGate, CXGate)):
        return a == b
    return False


def commuting_cancellation(circuit: QCircuit,
                           window: int = 32) -> QCircuit:
    """Cancel self-inverse pairs separated by commuting gates.

    For each gate, scans up to ``window`` earlier surviving gates; if an
    identical self-inverse gate is found and every gate in between
    commutes with it, both are dropped.  Runs in one forward sweep;
    composing with :func:`repro.opt.passes.optimize_circuit` afterwards
    picks up newly adjacent rotations.
    """
    survivors: list[Gate | None] = []
    for gate in circuit:
        placed = False
        if isinstance(gate, (XGate, CXGate)):
            # walk backward through commuting survivors
            scanned = 0
            for i in range(len(survivors) - 1, -1, -1):
                earlier = survivors[i]
                if earlier is None:
                    continue
                scanned += 1
                if scanned > window:
                    break
                if _cancels(earlier, gate):
                    survivors[i] = None
                    placed = True
                    break
                if not gates_commute(earlier, gate):
                    break
        if not placed:
            survivors.append(gate)
    return QCircuit(circuit.num_qubits,
                    (g for g in survivors if g is not None))

"""Observability layer for the serving stack (PR 8).

Two primitives — :mod:`repro.obs.metrics` (counters / gauges /
histograms with Prometheus text exposition) and :mod:`repro.obs.trace`
(ring-buffered JSONL span/event records) — plus :class:`ServiceObs`,
the facade the service/scheduler/portfolio/WAL call sites talk to.

Zero-overhead contract (mirrors ``core.fastcore``'s differential
stance): with observability *disabled* — :meth:`ObsConfig.disabled`,
the default for every library caller — no registry or tracer is ever
constructed and every instrumented module holds ``obs=None``, so each
hook site is a single ``is not None`` test resolved at call time.
Costs, node counts, and expansion order are bit-identical either way
(differential-tested in ``tests/test_server_concurrent.py``); hooks
live at admission / turn / slice / settle granularity, never inside
engine hot loops.  The serve CLI paths enable observability by
default; ``repro-qsp serve --no-obs`` opts back out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    OBS_DEADLINE_SLACK_BUCKETS,
    OBS_LATENCY_BUCKETS,
    OBS_TRACE_RING_CAP,
    OBS_TURN_EXPANSION_BUCKETS,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    render_prometheus,
)
from .trace import Tracer, read_jsonl, reconstruct_timelines

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Tracer",
    "ObsConfig", "ServiceObs", "default_registry", "render_prometheus",
    "read_jsonl", "reconstruct_timelines",
]


@dataclass
class ObsConfig:
    """How (and whether) a service instance observes itself.

    ``enabled=False`` is the hard off switch: the service keeps
    ``obs=None`` everywhere and no instrumentation object exists.
    ``trace_path`` additionally streams every trace record to a JSONL
    file (``serve --trace FILE``); ``registry``/``tracer`` let tests and
    embedders inject their own sinks (a fresh private registry is built
    otherwise, so co-hosted services never share counters by accident).
    """

    enabled: bool = False
    trace_path: str | None = None
    ring_cap: int = OBS_TRACE_RING_CAP
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    @classmethod
    def disabled(cls) -> "ObsConfig":
        return cls(enabled=False)

    @classmethod
    def on(cls, trace_path: str | None = None, **kwargs) -> "ObsConfig":
        return cls(enabled=True, trace_path=trace_path, **kwargs)


class ServiceObs:
    """All instrumentation hooks for one service instance.

    Metric families are declared once here so call sites stay one-line
    (`obs.turn(...)`) and the registry's schema is documented in a
    single place.  Naming follows Prometheus conventions: ``_total``
    counters, ``_seconds`` histograms, bare gauges.
    """

    def __init__(self, config: ObsConfig):
        self.config = config
        self.registry = config.registry or MetricsRegistry()
        stream = None
        self._owns_stream = False
        if config.tracer is not None:
            self.tracer = config.tracer
        else:
            if config.trace_path:
                stream = open(config.trace_path, "a", encoding="utf-8")
                self._owns_stream = True
            self.tracer = Tracer(ring_cap=config.ring_cap, stream=stream)
        r = self.registry
        # --- service front door ---
        self.requests = r.counter(
            "qsp_requests_total", "Requests handled, by op and outcome",
            labelnames=("op", "outcome"))
        self.busy = r.counter(
            "qsp_busy_rejections_total",
            "Exact requests rejected because the in-flight cap was full")
        self.cache_hits = r.counter(
            "qsp_request_cache_hits_total",
            "Exact requests answered from the request cache")
        self.inflight = r.gauge(
            "qsp_inflight_sessions", "Sessions currently scheduled")
        self.queue_depth = r.gauge(
            "qsp_admission_queue_depth",
            "In-flight sessions observed at the last admission")
        # --- cross-request scheduler ---
        self.turns = r.counter(
            "qsp_scheduler_turns_total", "Scheduler turns, by pick policy",
            labelnames=("policy",))
        self.turn_expansions = r.histogram(
            "qsp_turn_expansions", "Expansions granted per scheduler turn",
            buckets=OBS_TURN_EXPANSION_BUCKETS)
        self.queue_wait = r.histogram(
            "qsp_queue_wait_seconds",
            "Admission to first scheduled turn, per session",
            buckets=OBS_LATENCY_BUCKETS)
        self.e2e = r.histogram(
            "qsp_request_seconds",
            "Admission to settle (end-to-end), per session",
            buckets=OBS_LATENCY_BUCKETS)
        self.deadline_slack = r.histogram(
            "qsp_deadline_slack_seconds",
            "Time left on the deadline at settle (negative = flushed late)",
            buckets=OBS_DEADLINE_SLACK_BUCKETS)
        self.session_expansions = r.counter(
            "qsp_session_expansions_total",
            "Expansions spent by settled sessions, by outcome",
            labelnames=("outcome",))
        self.settled = r.counter(
            "qsp_sessions_settled_total", "Sessions settled, by outcome",
            labelnames=("outcome",))
        self.sched_queue_depth = r.gauge(
            "qsp_scheduler_queue_depth",
            "Runnable sessions in the scheduler queues at the last turn")
        # --- portfolio lanes ---
        self.lane_outcomes = r.counter(
            "qsp_lane_outcomes_total", "Lane settles, by lane and status",
            labelnames=("lane", "status"))
        self.lane_feasibles = r.counter(
            "qsp_lane_feasibles_total",
            "Lane settles that held a feasible circuit, by lane",
            labelnames=("lane",))
        self.lane_wins = r.counter(
            "qsp_lane_wins_total", "Requests won (best result), by lane",
            labelnames=("lane",))
        self.incumbents = r.counter(
            "qsp_incumbent_injections_total",
            "Incumbent bounds broadcast to sibling lanes, by source lane",
            labelnames=("lane",))
        # --- WAL ---
        self.wal_records = r.counter(
            "qsp_wal_records_total", "Delta records appended to the WAL")
        self.wal_bytes = r.counter(
            "qsp_wal_bytes_total", "Bytes appended to the WAL")
        self.wal_compactions = r.counter(
            "qsp_wal_compactions_total", "WAL compactions into the snapshot")
        self.wal_replayed = r.counter(
            "qsp_wal_replayed_records_total", "Records replayed at boot")
        self.wal_truncations = r.counter(
            "qsp_wal_truncations_total",
            "Torn or corrupt WAL tails truncated at boot, by reason",
            labelnames=("reason",))
        # --- worker pool (repro.service.pool) ---
        self.pool_inflight = r.gauge(
            "qsp_pool_worker_inflight",
            "Requests in flight on each pool worker",
            labelnames=("worker",))
        self.pool_routed = r.counter(
            "qsp_pool_routed_total",
            "Requests routed to each worker, by routing policy",
            labelnames=("worker", "policy"))
        self.pool_delta_pulls = r.counter(
            "qsp_pool_delta_pulls_total",
            "Non-empty learned-memory delta records pulled from each "
            "worker at cross-merge", labelnames=("worker",))
        self.pool_delta_merges = r.counter(
            "qsp_pool_delta_merges_total",
            "Cross-merge delta records shipped into each worker",
            labelnames=("worker",))
        # --- near-hit serving (op: fast) ---
        self.nearhits = r.counter(
            "qsp_nearhit_total",
            "Near-hit serving outcomes (served/verify_failed/truncated/"
            "no_neighbor)", labelnames=("outcome",))
        # --- memory/cache occupancy (gauges refreshed by collect()) ---
        self.store = r.gauge(
            "qsp_store_stat", "SearchMemory store counters, by store/stat",
            labelnames=("store", "stat"))
        self.cache = r.gauge(
            "qsp_request_cache_stat", "Request-cache counters, by mode/stat",
            labelnames=("mode", "stat"))
        self.cache_entries = r.gauge(
            "qsp_cache_entries", "Request-cache occupancy, by mode",
            labelnames=("mode",))
        self.cache_evictions = r.gauge(
            "qsp_cache_evictions_total", "Request-cache evictions, by mode",
            labelnames=("mode",))

    # ---------------- service front door ----------------

    def request(self, op: str, outcome: str):
        self.requests.labels(op, outcome).inc()

    def busy_rejected(self, rid):
        self.busy.inc()
        self.tracer.event("busy_rejected", rid=rid)

    def cache_hit(self, rid, cost):
        self.cache_hits.inc()
        self.tracer.event("cache_hit", rid=rid, cost=cost)

    def admission(self, rid, op, deadline_ms, inflight, **attrs):
        self.queue_depth.set(inflight)
        self.tracer.begin("request", rid=rid, op=op,
                          deadline_ms=deadline_ms, **attrs)

    def near_hit(self, outcome: str):
        """One near-hit serving attempt settled (``op: fast`` tier 2)."""
        self.nearhits.labels(outcome).inc()
        self.tracer.event("near_hit", outcome=outcome)

    # ---------------- scheduler ----------------

    def turn(self, rid, policy: str):
        self.turns.labels(policy).inc()
        self.tracer.event("turn", rid=rid, policy=policy)

    def first_turn(self, rid, wait_seconds: float):
        self.queue_wait.observe(wait_seconds)
        self.tracer.event("first_turn", rid=rid, wait_seconds=wait_seconds)

    def turn_done(self, rid, expansions: int):
        self.turn_expansions.observe(expansions)

    def inflight_now(self, n: int):
        self.inflight.set(n)

    def queue_depth_now(self, n: int):
        self.sched_queue_depth.set(n)

    # ---------------- worker pool ----------------

    def pool_routed_to(self, worker: int, policy: str, inflight: int):
        """One request routed to pool worker ``worker``."""
        self.pool_routed.labels(str(worker), policy).inc()
        self.pool_inflight.labels(str(worker)).set(inflight)
        self.tracer.event("pool_route", worker=worker, policy=policy,
                          inflight=inflight)

    def pool_worker_inflight(self, worker: int, n: int):
        self.pool_inflight.labels(str(worker)).set(n)

    def pool_delta_pulled(self, worker: int, records: int = 1):
        self.pool_delta_pulls.labels(str(worker)).inc(records)

    def pool_delta_merged(self, worker: int, records: int = 1):
        self.pool_delta_merges.labels(str(worker)).inc(records)

    def settle(self, rid, outcome: str, seconds: float, expansions: int,
               slack_seconds=None, **attrs):
        self.settled.labels(outcome).inc()
        self.e2e.observe(seconds)
        self.session_expansions.labels(outcome).inc(expansions)
        if slack_seconds is not None:
            self.deadline_slack.observe(slack_seconds)
            attrs["slack_seconds"] = slack_seconds
        self.tracer.end("request", rid=rid, outcome=outcome,
                        seconds=seconds, expansions=expansions, **attrs)

    def session_cancelled(self, rid, reason: str, expansions: int):
        """Abort without settle (client disconnect): close the span."""
        self.settled.labels("cancelled").inc()
        self.session_expansions.labels("cancelled").inc(expansions)
        self.tracer.end("request", rid=rid, outcome="cancelled",
                        reason=reason, expansions=expansions)

    # ---------------- portfolio lanes ----------------

    def lane_slice(self, rid, lane: str, expansions: int, status: str):
        self.tracer.event("slice", rid=rid, lane=lane,
                          expansions=expansions, status=status)

    def incumbent(self, rid, lane: str, cost: int, injected: int = 1):
        self.incumbents.labels(lane).inc(injected)
        self.tracer.event("incumbent", rid=rid, lane=lane, cost=cost,
                          injected=injected)

    def lane_settled(self, rid, lane: str, status: str, stats=None,
                     feasible: bool = False):
        self.lane_outcomes.labels(lane, status).inc()
        if feasible:
            self.lane_feasibles.labels(lane).inc()
        attrs = {"feasible": feasible}
        if stats is not None:
            attrs.update(expanded=stats.nodes_expanded,
                         generated=stats.nodes_generated,
                         seconds=stats.elapsed_seconds)
            if stats.phase_seconds:
                attrs["phase_seconds"] = dict(stats.phase_seconds)
        self.tracer.event("lane_settled", rid=rid, lane=lane,
                          status=status, **attrs)

    def lane_won(self, rid, lane: str, cost):
        self.lane_wins.labels(lane).inc()
        self.tracer.event("lane_won", rid=rid, lane=lane, cost=cost)

    # ---------------- WAL ----------------

    def wal_append(self, nbytes: int):
        self.wal_records.inc()
        self.wal_bytes.inc(nbytes)

    def wal_compacted(self, records: int):
        self.wal_compactions.inc()
        self.tracer.event("wal_compaction", records=records)

    def wal_boot(self, replayed: int, path):
        self.wal_replayed.inc(replayed)
        if replayed:
            self.tracer.warning("wal_replayed", records=replayed,
                                path=str(path))

    def wal_truncated(self, reason: str, dropped_bytes: int, path):
        self.wal_truncations.labels(reason).inc()
        self.tracer.warning("wal_truncated", reason=reason,
                            dropped_bytes=dropped_bytes, path=str(path))

    # ---------------- snapshot-time collection ----------------

    def collect(self, service) -> None:
        """Refresh occupancy gauges from the live stores.

        Pull-based: :class:`~repro.core.memory.HashStore` and the
        request cache already count hits/misses/evictions internally,
        so rather than double-counting in the hot path we lift their
        totals into gauges whenever a snapshot or exposition is asked
        for.
        """
        self.inflight.set(len(service.scheduler.sessions))
        if service.memory is not None:
            snap = service.memory.snapshot()
            for store in ("canon_store", "h_store", "transposition", "pdb"):
                for stat, value in snap[store].items():
                    if isinstance(value, (int, float)):
                        self.store.labels(store, stat).set(value)
        if service.cache is not None:
            for mode, stats in service.cache.snapshot().items():
                for stat, value in stats.items():
                    if isinstance(value, (int, float)):
                        self.cache.labels(mode, stat).set(value)
                self.cache_entries.labels(mode).set(
                    stats.get("entries", 0))
                self.cache_evictions.labels(mode).set(
                    stats.get("evictions", 0))

    def metrics_snapshot(self, service=None) -> dict:
        if service is not None:
            self.collect(service)
        return self.registry.snapshot()

    def render_prometheus(self, service=None) -> str:
        if service is not None:
            self.collect(service)
        return self.registry.render_prometheus()

    def trace_tail(self, n=None) -> list:
        return self.tracer.last(n)

    def close(self):
        if self._owns_stream and self.tracer.stream is not None:
            self.tracer.stream.close()
            self.tracer.stream = None


def build_obs(config: "ObsConfig | None") -> "ServiceObs | None":
    """``None`` when disabled — the zero-overhead off state."""
    if config is None or not config.enabled:
        return None
    return ServiceObs(config)

"""Dependency-free metrics registry: counters, gauges, histograms.

The serving stack (PR 8) records its operational state here — request
outcomes, scheduler pick policy, latency distributions, lane win rates,
WAL activity — and exposes it two ways:

- :meth:`MetricsRegistry.snapshot` — a JSON-safe dict embedded in the
  ``metrics`` section of ``op: stats`` replies and benchmark reports;
- :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``text/plain; version=0.0.4``) served by
  ``repro-qsp serve --metrics HOST:PORT``.

Design notes.  Metric *families* are registered once by name and carry a
fixed tuple of label names; :meth:`_Family.labels` resolves one labelled
child (a plain counter cell) per distinct label-value tuple.  Histograms
use fixed upper-edge buckets chosen at registration (no dynamic
rebucketing), matching Prometheus' cumulative ``le`` convention on
export while storing per-bucket counts internally so
:meth:`Histogram.quantile` can interpolate percentiles for benchmark
reports.  Everything is plain-Python and allocation-light: the serving
path calls ``inc``/``observe`` at turn/slice granularity (hundreds of
expansions per call), never inside engine hot loops, and library callers
with observability disabled never construct a registry at all (see
:mod:`repro.obs` for the zero-overhead contract).

This module intentionally has no locks: the service is single-threaded
by design (asyncio front end + synchronous scheduler), matching the rest
of the serving stack.
"""

from __future__ import annotations

from ..constants import OBS_LATENCY_BUCKETS

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "default_registry", "render_prometheus",
]


def _format_value(v) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if isinstance(v, bool):  # pragma: no cover - defensive; bools never stored
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    f = float(v)
    if f != f:
        return "NaN"
    if f == float("inf"):
        return "+Inf"
    if f == float("-inf"):
        return "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format spec."""
    return (str(value).replace("\\", "\\\\")
            .replace("\n", "\\n").replace('"', '\\"'))


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


class _Child:
    """One labelled cell of a counter or gauge family."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def set(self, value):
        self.value = value


class _HistogramChild:
    """One labelled cell of a histogram family."""

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: tuple):
        self.edges = edges
        # counts[i] observations in (edges[i-1], edges[i]]; last slot is
        # the +Inf overflow bucket.
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        self.sum += value
        self.count += 1
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile by linear interpolation.

        Assumes observations are uniform within each bucket (the standard
        Prometheus ``histogram_quantile`` model).  Values landing in the
        overflow bucket clamp to the largest finite edge; an empty
        histogram returns 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, edge in enumerate(self.edges):
            in_bucket = self.counts[i]
            if seen + in_bucket >= rank and in_bucket > 0:
                lo = self.edges[i - 1] if i > 0 else min(0.0, edge)
                frac = (rank - seen) / in_bucket
                return lo + (edge - lo) * frac
            seen += in_bucket
        return float(self.edges[-1]) if self.edges else 0.0


class _Family:
    """Shared family plumbing: name, help text, labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict = {}

    def _make_child(self):
        raise NotImplementedError

    def labels(self, *values):
        """Resolve (creating on first use) the child for a label tuple."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values {self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _unlabelled(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; use .labels()")
        return self.labels()

    def _rows(self):
        """Yield ``(label_values, child)`` sorted for stable output."""
        for key in sorted(self._children):
            yield key, self._children[key]

    def _label_str(self, values, extra: str = "") -> str:
        parts = [f'{n}="{_escape_label(v)}"'
                 for n, v in zip(self.labelnames, values)]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class Counter(_Family):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def _make_child(self):
        return _Child()

    def inc(self, amount=1):
        self._unlabelled().inc(amount)

    @property
    def value(self):
        child = self._children.get(())
        return child.value if child is not None else 0

    def snapshot(self):
        if not self.labelnames:
            return {"type": self.kind, "help": self.help, "value": self.value}
        return {"type": self.kind, "help": self.help,
                "labels": list(self.labelnames),
                "values": [{"labels": list(k), "value": c.value}
                           for k, c in self._rows()]}

    def render(self, out: list):
        out.append(f"# HELP {self.name} {_escape_help(self.help)}")
        out.append(f"# TYPE {self.name} {self.kind}")
        if not self._children and not self.labelnames:
            out.append(f"{self.name} 0")
        for key, child in self._rows():
            out.append(f"{self.name}{self._label_str(key)} "
                       f"{_format_value(child.value)}")


class Gauge(Counter):
    """Point-in-time value, settable up or down."""

    kind = "gauge"

    def set(self, value):
        self._unlabelled().set(value)

    def dec(self, amount=1):
        self._unlabelled().inc(-amount)


class Histogram(_Family):
    """Fixed-bucket distribution with Prometheus-style exposition."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", labelnames: tuple = (),
                 buckets: tuple = OBS_LATENCY_BUCKETS):
        super().__init__(name, help, labelnames)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"{name}: bucket edges must strictly increase")
        self.edges = edges

    def _make_child(self):
        return _HistogramChild(self.edges)

    def observe(self, value):
        self._unlabelled().observe(value)

    def quantile(self, q: float) -> float:
        return self._unlabelled().quantile(q)

    @property
    def count(self):
        child = self._children.get(())
        return child.count if child is not None else 0

    @property
    def sum(self):
        child = self._children.get(())
        return child.sum if child is not None else 0.0

    def _child_snapshot(self, child: _HistogramChild):
        return {"buckets": [[e, c] for e, c in zip(child.edges, child.counts)],
                "overflow": child.counts[-1],
                "sum": child.sum, "count": child.count}

    def snapshot(self):
        base = {"type": self.kind, "help": self.help,
                "edges": list(self.edges)}
        if not self.labelnames:
            child = self._children.get(())
            base.update(self._child_snapshot(child) if child is not None
                        else {"buckets": [[e, 0] for e in self.edges],
                              "overflow": 0, "sum": 0.0, "count": 0})
            return base
        base["labels"] = list(self.labelnames)
        base["values"] = [dict(self._child_snapshot(c), labels=list(k))
                          for k, c in self._rows()]
        return base

    def render(self, out: list):
        out.append(f"# HELP {self.name} {_escape_help(self.help)}")
        out.append(f"# TYPE {self.name} {self.kind}")
        rows = list(self._rows()) or ([((), _HistogramChild(self.edges))]
                                      if not self.labelnames else [])
        for key, child in rows:
            cumulative = 0
            for edge, n in zip(child.edges, child.counts):
                cumulative += n
                le = self._label_str(key, f'le="{_format_value(edge)}"')
                out.append(f"{self.name}_bucket{le} {cumulative}")
            le = self._label_str(key, 'le="+Inf"')
            out.append(f"{self.name}_bucket{le} {child.count}")
            lab = self._label_str(key)
            out.append(f"{self.name}_sum{lab} {_format_value(child.sum)}")
            out.append(f"{self.name}_count{lab} {child.count}")


class MetricsRegistry:
    """Named collection of metric families.

    Registration is idempotent per name: asking again for an existing
    family returns it (so modules can declare their metrics lazily),
    while re-registering a name with a different kind or label set is a
    programming error and raises.
    """

    def __init__(self):
        self._families: dict = {}

    def _register(self, cls, name, help, labelnames, **kwargs):
        existing = self._families.get(name)
        if existing is not None:
            if (type(existing) is not cls
                    or existing.labelnames != tuple(labelnames)):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}{existing.labelnames}")
            return existing
        fam = cls(name, help, labelnames, **kwargs)
        self._families[name] = fam
        return fam

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(),
                  buckets=OBS_LATENCY_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def get(self, name):
        return self._families.get(name)

    def snapshot(self) -> dict:
        """JSON-safe dict of every family (``op: stats`` ``metrics``)."""
        return {name: fam.snapshot()
                for name, fam in sorted(self._families.items())}

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every registered family."""
        out: list = []
        for _, fam in sorted(self._families.items()):
            fam.render(out)
        return "\n".join(out) + "\n" if out else ""


#: Process-global default registry for callers that want one shared
#: sink; the service deliberately builds a private registry per instance
#: so tests and co-hosted services do not bleed counters into each other.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    return (registry or _DEFAULT).render_prometheus()

"""Request tracing: JSONL span/event records for the serving path.

Every record is one JSON object with a monotonic timestamp and, where
applicable, the request id (``rid``), session tag, and lane name:

    {"ts": 12.345678, "kind": "begin", "name": "request", "rid": "a1",
     "op": "exact", "deadline_ms": 500}
    {"ts": 12.345902, "kind": "event", "name": "slice", "rid": "a1",
     "lane": "beam", "expansions": 256, "status": "running"}
    {"ts": 12.349001, "kind": "event", "name": "incumbent", "rid": "a1",
     "lane": "beam", "cost": 9}
    {"ts": 12.401214, "kind": "end", "name": "request", "rid": "a1",
     "outcome": "ok", "expansions": 1824}

``kind`` is one of ``begin``/``end`` (span boundaries, paired by
``(rid, name)`` nesting order) or ``event``/``warning`` (instants).  The
serving path emits a ``request`` span per admitted request bracketing
its whole admission → settle lifetime, with scheduler turns, lane
slices, incumbent broadcasts, lane settles, and flush/cancel decisions
as events in between — see :func:`reconstruct_timelines` for turning a
record stream back into per-request timelines.

Records land in a bounded in-process ring (queryable via ``op: trace``)
and, when a stream is attached (``serve --trace FILE``), are appended to
it as JSONL, one object per line, flushed per record so a crash loses at
most the final line (the same torn-tail stance as the WAL).
"""

from __future__ import annotations

import json
import time
from collections import deque

from ..constants import OBS_TRACE_RING_CAP

__all__ = ["Tracer", "read_jsonl", "reconstruct_timelines"]


class Tracer:
    """Ring-buffered JSONL span/event recorder.

    ``clock`` defaults to :func:`time.monotonic`; tests may inject a fake
    for deterministic timestamps.  ``stream`` is any writable text file
    object; the tracer never opens or closes paths itself (ownership
    stays with the caller — see ``ServiceObs``).
    """

    __slots__ = ("ring", "stream", "clock", "emitted")

    def __init__(self, ring_cap: int = OBS_TRACE_RING_CAP, stream=None,
                 clock=time.monotonic):
        self.ring: deque = deque(maxlen=ring_cap)
        self.stream = stream
        self.clock = clock
        self.emitted = 0

    def emit(self, kind: str, name: str, rid=None, **attrs) -> dict:
        record = {"ts": self.clock(), "kind": kind, "name": name}
        if rid is not None:
            record["rid"] = rid
        record.update(attrs)
        self.ring.append(record)
        self.emitted += 1
        if self.stream is not None:
            self.stream.write(json.dumps(record, sort_keys=True) + "\n")
            self.stream.flush()
        return record

    def begin(self, name: str, rid=None, **attrs) -> dict:
        return self.emit("begin", name, rid=rid, **attrs)

    def end(self, name: str, rid=None, **attrs) -> dict:
        return self.emit("end", name, rid=rid, **attrs)

    def event(self, name: str, rid=None, **attrs) -> dict:
        return self.emit("event", name, rid=rid, **attrs)

    def warning(self, name: str, rid=None, **attrs) -> dict:
        return self.emit("warning", name, rid=rid, **attrs)

    def last(self, n: int | None = None) -> list:
        """The most recent ``n`` ring records (all, when ``n`` is None)."""
        if n is None or n >= len(self.ring):
            return list(self.ring)
        return list(self.ring)[len(self.ring) - n:]


def read_jsonl(path) -> list:
    """Parse a ``serve --trace`` file back into a list of records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def reconstruct_timelines(records) -> dict:
    """Group a record stream into per-request timelines.

    Returns ``{rid: {"spans": [...], "events": [...], "open": [...],
    "balanced": bool}}``.  Spans pair each ``begin`` with the matching
    ``end`` of the same name in LIFO (proper nesting) order per rid;
    ``balanced`` is True when every ``begin`` found its ``end`` and no
    ``end`` arrived without one.  Records without a ``rid`` are grouped
    under ``None`` (boot/shutdown events, WAL warnings).
    """
    timelines: dict = {}
    for rec in records:
        rid = rec.get("rid")
        tl = timelines.get(rid)
        if tl is None:
            tl = timelines[rid] = {"spans": [], "events": [], "open": [],
                                   "balanced": True}
        kind = rec.get("kind")
        if kind == "begin":
            tl["open"].append(rec)
        elif kind == "end":
            if tl["open"] and tl["open"][-1].get("name") == rec.get("name"):
                start = tl["open"].pop()
                span = dict(start)
                span.update({k: v for k, v in rec.items() if k != "ts"})
                span["start_ts"] = start["ts"]
                span["end_ts"] = rec["ts"]
                span["duration"] = rec["ts"] - start["ts"]
                del span["kind"]
                span.pop("ts", None)
                tl["spans"].append(span)
            else:
                tl["balanced"] = False
        else:
            tl["events"].append(rec)
    for tl in timelines.values():
        if tl["open"]:
            tl["balanced"] = False
    return timelines

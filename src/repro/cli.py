"""Command-line interface: ``repro-qsp`` (or ``python -m repro.cli``).

Examples
--------
Prepare a Dicke state and print the circuit + stats::

    repro-qsp prepare --dicke 4 2

Prepare a state given as ``bitstring:weight`` terms and emit OpenQASM::

    repro-qsp prepare --terms 000:0.5 011:0.5 101:0.5 110:0.5 --qasm out.qasm

Compare all methods on a random sparse state::

    repro-qsp compare --random-sparse 8 --seed 7

Route onto a line device and report the topology tax::

    repro-qsp route --ghz 5 --topology line --placement greedy

Search *natively* on the device instead of routing (every CNOT lands on
a coupled pair, zero SWAPs), or race both pipelines and keep the
verified cheaper circuit::

    repro-qsp route --ghz 5 --topology line --mode native
    repro-qsp route --w 5 --topology heavy_hex --mode race

Estimate the preparation fidelity under depolarizing noise::

    repro-qsp fidelity --dicke 4 2 --p-cx 0.01 --p-1q 0.001

Verify that a QASM file prepares a state::

    repro-qsp verify circuit.qasm --w 4

Synthesize a whole Dicke family in one process with warm search memory,
and persist that memory as a warm-start snapshot for the service::

    repro-qsp family --max-n 5 --engine astar
    repro-qsp family --max-n 5 --engine idastar --snapshot-out warm.qspmem.gz

Synthesize the family topology-natively — every row searched directly on
a device of its size (one warm memory per register size)::

    repro-qsp family --max-n 5 --topology line

Run the long-lived synthesis service (one JSON request per stdin line,
one JSON response per stdout line), warm-started from a snapshot::

    repro-qsp serve --snapshot warm.qspmem.gz
    echo '{"id": 1, "op": "exact", "dicke": [4, 2]}' | repro-qsp serve

Serve with the *interleaved* portfolio scheduler — all engine lanes
time-sliced in one process, feasible costs shared as live incumbents,
first proven optimum cancels the rest — and/or a wall-clock deadline per
request, after which the best feasible circuit found so far is returned
instead of an error (a request's own ``deadline_ms`` field overrides the
flag)::

    repro-qsp serve --portfolio interleaved
    repro-qsp serve --deadline-ms 250
    echo '{"id": 1, "op": "exact", "dicke": [6, 3], "deadline_ms": 250}' \
        | repro-qsp serve

Serve many clients at once over a socket: ``--listen`` starts the
asyncio front end — same newline-JSON protocol as stdin, but requests
from all connections share one cross-request scheduler (expansion
slices fair-shared earliest-deadline-first, round-robin for undeadlined
requests), so a heavy request no longer blocks a light one.  Responses
arrive out of request order; match them by ``id``.  ``--wal`` keeps an
incremental write-ahead log of everything the memory learns: one delta
record per settled request, replayed on boot, compacted into a full
snapshot every ``--wal-compact-every`` records and at shutdown::

    repro-qsp serve --listen 127.0.0.1:7700 --portfolio interleaved \
        --wal service.qspwal --max-inflight 16
    repro-qsp serve --listen 127.0.0.1:7700 --wal service.qspwal \
        --wal-compact-every 64 --deadline-ms 500

Scale the socket server across processes: ``--workers N`` puts N
scheduler processes behind the one acceptor, routed least-inflight with
signature-affinity stickiness (a traffic cluster's flywheel caches heat
up in one worker).  Each worker owns its own WAL shard — ``--wal
service.qspwal`` becomes ``service.qspwal.w0`` … ``service.qspwal.w3``,
each with its own ``.snapshot`` sidecar — and what one worker learns
periodically cross-merges into the others (improve-only deltas, so the
merged memories never regress).  A dense ``prepare`` on one worker no
longer delays a light ``exact`` routed to another::

    repro-qsp serve --listen 127.0.0.1:7700 --workers 4 \
        --wal service.qspwal --portfolio interleaved
    echo '{"id": 1, "op": "stats"}'  # reports per-worker + pool sections

Serving observes itself by default (metrics registry + ring-buffered
request tracing; ``--no-obs`` opts out — library callers are always
off).  ``--trace`` streams every span/event record to a JSONL file,
``--metrics`` serves the Prometheus text exposition next to ``--listen``,
and the ``trace``/``stats`` ops expose the same data in-band::

    repro-qsp serve --listen 127.0.0.1:7700 --metrics 127.0.0.1:9700 \
        --trace spans.jsonl
    curl http://127.0.0.1:9700/metrics
    echo '{"id": 1, "op": "trace", "limit": 100}' | repro-qsp serve

Serve one *device*: the service pins a topology, requests synthesize
natively, memory/cache entries never mix across devices, and the
exact-hit request cache persists across restarts::

    repro-qsp serve --topology heavy_hex --topology-size 5 \
        --cache-snapshot cache.qspreq.gz
    echo '{"id": 1, "op": "exact", "w": 5, "topology": "heavy_hex"}' | \
        repro-qsp serve --topology heavy_hex --topology-size 5

Batch-synthesize a JSONL request file across worker processes, each
seeded from the snapshot (costs are identical to cold single-process
runs; only the time changes); ``--topology`` pins the device exactly as
in ``serve``::

    repro-qsp batch requests.jsonl results.jsonl \
        --snapshot warm.qspmem.gz --workers 4
    repro-qsp batch requests.jsonl results.jsonl \
        --topology line --topology-size 4

Batch with the interleaved scheduler and a per-request latency budget
(rows that hit the deadline report their best feasible cost with
``deadline_expired``)::

    repro-qsp batch requests.jsonl results.jsonl \
        --portfolio interleaved --deadline-ms 500

Serve latency-first with ``op: fast`` — answer from the cache, else
adapt the nearest cached circuit that shares the target's entanglement
signature (deadline-bounded suffix re-search, simulator-verified before
serving), else fall back to a search driven by the pattern database's
learned bound tier.  The same tiers back ``prepare --mode fast``::

    echo '{"id": 1, "op": "fast", "w": 5, "deadline_ms": 250}' | \
        repro-qsp serve --portfolio interleaved
    repro-qsp prepare --w 5 --mode fast --snapshot warm.qspmem.gz \
        --cache-snapshot cache.qspreq.gz --deadline-ms 250

Distill a request-cache snapshot into a pattern-database memory
snapshot offline — cached solved costs become signature-keyed evidence
(learned tier), proven-optimal ones become audited proof evidence — and
boot the service warm from it::

    repro-qsp distill cache.qspreq.gz --snapshot-out pdb.qspmem.gz
    repro-qsp serve --snapshot pdb.qspmem.gz
"""

from __future__ import annotations

import argparse
import sys

from repro.arch.topologies import TOPOLOGY_FAMILIES
from repro.constants import SERVICE_MAX_INFLIGHT, WAL_COMPACT_INTERVAL
from repro.qsp.config import QSPConfig
from repro.qsp.solver import compare_methods
from repro.qsp.workflow import prepare_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_dense_state, random_sparse_state
from repro.states.special import (
    binomial_state,
    cluster_state_1d,
    domain_wall_state,
    gaussian_state,
)
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def _state_from_args(args: argparse.Namespace) -> QState:
    if args.dicke:
        n, k = args.dicke
        return dicke_state(n, k)
    if args.ghz:
        return ghz_state(args.ghz)
    if args.w:
        return w_state(args.w)
    if args.cluster:
        return cluster_state_1d(args.cluster)
    if args.gaussian:
        return gaussian_state(args.gaussian)
    if args.binomial:
        return binomial_state(args.binomial)
    if args.domain_wall:
        return domain_wall_state(args.domain_wall)
    if args.random_sparse:
        return random_sparse_state(args.random_sparse, seed=args.seed)
    if args.random_dense:
        return random_dense_state(args.random_dense, seed=args.seed)
    if args.terms:
        weights: dict[str, float] = {}
        for term in args.terms:
            bits, _, weight = term.partition(":")
            weights[bits] = float(weight) if weight else 1.0
        return QState.from_bitstring_weights(weights)
    raise SystemExit("no target state given (see --help)")


def _add_state_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dicke", nargs=2, type=int, metavar=("N", "K"),
                        help="Dicke state |D^K_N>")
    parser.add_argument("--ghz", type=int, metavar="N", help="GHZ state")
    parser.add_argument("--w", type=int, metavar="N", help="W state")
    parser.add_argument("--cluster", type=int, metavar="N",
                        help="1D cluster (graph) state")
    parser.add_argument("--gaussian", type=int, metavar="N",
                        help="Gaussian amplitude encoding on 2^N points")
    parser.add_argument("--binomial", type=int, metavar="N",
                        help="binomial amplitude encoding on 2^N points")
    parser.add_argument("--domain-wall", type=int, metavar="N",
                        help="uniform superposition of 0^a 1^b strings")
    parser.add_argument("--random-sparse", type=int, metavar="N",
                        help="random sparse state (m = N)")
    parser.add_argument("--random-dense", type=int, metavar="N",
                        help="random dense state (m = 2^(N-1))")
    parser.add_argument("--terms", nargs="+", metavar="BITS:W",
                        help="explicit terms, e.g. 011:0.7 100:-0.3")
    parser.add_argument("--seed", type=int, default=2024)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qsp",
        description="Quantum state preparation via exact CNOT synthesis "
                    "(DATE 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    prep = sub.add_parser("prepare", help="synthesize a preparation circuit")
    _add_state_options(prep)
    prep.add_argument("--qasm", metavar="FILE",
                      help="write OpenQASM 2.0 to FILE ('-' for stdout)")
    prep.add_argument("--draw", action="store_true",
                      help="print an ASCII rendering of the circuit")
    prep.add_argument("--mode", default="exact",
                      choices=("exact", "fast"),
                      help="exact = the full synthesis workflow (seed "
                           "behavior); fast = latency-first serving "
                           "through the service's cache -> near-hit -> "
                           "learned-bound tiers (always simulator-"
                           "verified, not necessarily optimal)")
    prep.add_argument("--snapshot", metavar="FILE", default=None,
                      help="fast mode: warm-start SearchMemory snapshot "
                           "(pattern database rides in it; see "
                           "'repro-qsp distill')")
    prep.add_argument("--cache-snapshot", metavar="FILE", default=None,
                      help="fast mode: request-cache snapshot whose "
                           "signature index nominates near-hit donors")
    prep.add_argument("--deadline-ms", type=float, default=None,
                      metavar="MS",
                      help="fast mode: wall-clock budget; bounds the "
                           "near-hit suffix re-search and the fallback "
                           "learned-tier search")

    comp = sub.add_parser("compare", help="compare all synthesis methods")
    _add_state_options(comp)

    route = sub.add_parser(
        "route", help="prepare on a restricted-topology device")
    _add_state_options(route)
    route.add_argument("--topology", default="line",
                       choices=TOPOLOGY_FAMILIES,
                       help="device coupling map (default: line)")
    route.add_argument("--placement", default="greedy",
                       choices=("trivial", "greedy", "annealed"))
    route.add_argument("--mode", default="route",
                       choices=("route", "native", "race"),
                       help="route = synthesize all-to-all then SWAP-route "
                            "(seed behavior); native = search directly on "
                            "the restricted move set (no SWAPs); race = "
                            "run both, keep the verified cheaper circuit")

    fid = sub.add_parser(
        "fidelity", help="estimate preparation fidelity under noise")
    _add_state_options(fid)
    fid.add_argument("--p-cx", type=float, default=1e-2,
                     help="depolarizing strength per CNOT (default 1e-2)")
    fid.add_argument("--p-1q", type=float, default=1e-3,
                     help="depolarizing strength per 1q gate (default 1e-3)")

    verify = sub.add_parser(
        "verify", help="check that a QASM circuit prepares a state")
    verify.add_argument("qasm_file", help="OpenQASM 2.0 input file")
    _add_state_options(verify)

    family = sub.add_parser(
        "family",
        help="synthesize a Dicke family in one process with warm "
             "cross-search memory")
    family.add_argument("--max-n", type=int, default=5, metavar="N",
                        help="largest register size (rows D(n,k), "
                             "k <= n//2; default 5)")
    family.add_argument("--min-n", type=int, default=3, metavar="N",
                        help="smallest register size (default 3)")
    family.add_argument("--engine", default="astar",
                        choices=("astar", "idastar", "beam"))
    family.add_argument("--cold", action="store_true",
                        help="disable the shared SearchMemory (baseline)")
    family.add_argument("--max-nodes", type=int, default=100_000,
                        help="per-row expansion budget (default 100000)")
    family.add_argument("--time-limit", type=float, default=None,
                        help="per-row wall-clock budget in seconds")
    family.add_argument("--repeat", type=int, default=1, metavar="R",
                        help="run the family R times through the same "
                             "memory (warm re-runs; default 1)")
    family.add_argument("--snapshot-out", metavar="FILE",
                        help="persist the warm SearchMemory to FILE after "
                             "the run (gzip when FILE ends in .gz); the "
                             "service loads it at boot")
    family.add_argument("--snapshot-in", metavar="FILE",
                        help="seed the SearchMemory from FILE before the "
                             "first row (warm start)")
    family.add_argument("--topology", metavar="FAMILY", default=None,
                        choices=tuple(f for f in TOPOLOGY_FAMILIES
                                      if f != "full"),
                        help="synthesize every row topology-natively on a "
                             "device of this family sized to the row "
                             "(one warm memory per register size)")

    distill = sub.add_parser(
        "distill",
        help="distill a request-cache snapshot into a pattern-database "
             "memory snapshot (signature -> cost evidence)")
    distill.add_argument("cache", metavar="CACHE_SNAPSHOT",
                         help="request-cache snapshot to distill (see "
                              "'serve --cache-snapshot')")
    distill.add_argument("--snapshot-out", metavar="FILE", required=True,
                         help="SearchMemory snapshot to write; the "
                              "pattern database rides in it and 'serve "
                              "--snapshot FILE' boots warm")
    distill.add_argument("--snapshot-in", metavar="FILE", default=None,
                         help="existing memory snapshot to layer the "
                              "distilled evidence on top of (regimes "
                              "must match)")

    serve = sub.add_parser(
        "serve",
        help="long-lived synthesis service: JSONL requests on stdin, "
             "JSONL responses on stdout")
    serve.add_argument("--snapshot", metavar="FILE",
                       help="warm-start SearchMemory snapshot to load at "
                            "boot (see 'family --snapshot-out')")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the request cache (every request "
                            "searches)")
    serve.add_argument("--max-nodes", type=int, default=None,
                       help="per-engine expansion budget, applied to "
                            "'exact' requests and the workflow's exact "
                            "stage (default: engine defaults)")
    serve.add_argument("--time-limit", type=float, default=None,
                       help="per-engine wall-clock budget in seconds "
                            "(same scope as --max-nodes)")
    serve.add_argument("--race-workers", type=int, default=0, metavar="N",
                       help="race the engine portfolio across N processes "
                            "per exact request with first-optimal-wins "
                            "cancellation (default 0 = in-process "
                            "portfolio, see --portfolio)")
    _add_portfolio_options(serve)
    serve.add_argument("--cache-snapshot", metavar="FILE",
                       help="persist the exact-hit request cache to FILE "
                            "(loaded at boot when it exists, written on "
                            "shutdown; gated by the same fingerprint + "
                            "format-version checks as --snapshot)")
    serve.add_argument("--listen", metavar="HOST:PORT", default=None,
                       help="serve a socket instead of stdin: the asyncio "
                            "front end accepts many concurrent clients, "
                            "fair-shares expansion slices across all "
                            "in-flight exact requests, and answers out "
                            "of request order (match responses by id)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="multi-process serving tier (requires "
                            "--listen): N scheduler processes behind the "
                            "one acceptor, routed by least-inflight with "
                            "signature-affinity stickiness; each worker "
                            "owns its own WAL shard (--wal FILE becomes "
                            "FILE.w0..FILE.w<N-1>) and learned-memory "
                            "deltas cross-merge periodically (default 1 "
                            "= inline single-process service)")
    serve.add_argument("--wal", metavar="FILE", default=None,
                       help="incremental SearchMemory write-ahead log: "
                            "learned deltas appended per settled request, "
                            "replayed on boot on top of FILE.snapshot, "
                            "compacted on an interval and at shutdown "
                            "(wins over --snapshot after the first boot)")
    serve.add_argument("--wal-compact-every", type=int, metavar="N",
                       default=None,
                       help="appended WAL records between automatic "
                            "compactions (default "
                            f"{WAL_COMPACT_INTERVAL})")
    serve.add_argument("--max-inflight", type=int, metavar="N",
                       default=None,
                       help="admission cap of the cross-request "
                            "scheduler: searching sessions in flight at "
                            "once; requests beyond it are answered "
                            "ok:false busy:true (default "
                            f"{SERVICE_MAX_INFLIGHT})")
    serve.add_argument("--no-autotune", action="store_true",
                       help="disable lane auto-tuning (slice budgets and "
                            "lane drops derived from persisted per-lane "
                            "win statistics) for scheduler sessions")
    serve.add_argument("--no-obs", action="store_true",
                       help="disable observability (metrics registry + "
                            "request tracing; enabled by default when "
                            "serving — library embedders default to off)")
    serve.add_argument("--trace", metavar="FILE", default=None,
                       help="stream every trace record (request spans, "
                            "scheduler turns, lane slices, incumbent "
                            "broadcasts, settles) to FILE as JSONL, one "
                            "record per line; the in-process ring stays "
                            "queryable via the 'trace' op either way")
    serve.add_argument("--metrics", metavar="HOST:PORT", default=None,
                       help="serve the Prometheus text exposition of the "
                            "metrics registry over HTTP on a second "
                            "listener (requires --listen; curl "
                            "http://HOST:PORT/metrics)")
    _add_topology_options(serve)

    batch = sub.add_parser(
        "batch",
        help="batch synthesis: JSONL request file in, JSONL response "
             "file out, sharded across worker processes")
    batch.add_argument("input", help="JSONL request file (one target per "
                                     "line, same schema as 'serve')")
    batch.add_argument("output", help="JSONL response file to write")
    batch.add_argument("--snapshot", metavar="FILE",
                       help="warm-start snapshot each worker seeds its "
                            "memory from")
    batch.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes to shard the stream across "
                            "(default 1 = in-process)")
    batch.add_argument("--max-nodes", type=int, default=None,
                       help="per-engine expansion budget (default: "
                            "engine defaults)")
    batch.add_argument("--time-limit", type=float, default=None,
                       help="per-engine wall-clock budget in seconds")
    batch.add_argument("--circuits", action="store_true",
                       help="include the synthesized circuits in the "
                            "response lines")
    _add_portfolio_options(batch)
    _add_topology_options(batch)
    return parser


def _add_portfolio_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--portfolio", default="sequential",
                        choices=("sequential", "interleaved"),
                        dest="portfolio_mode",
                        help="in-process scheduler for exact requests: "
                             "'sequential' runs lanes in order with "
                             "incumbent threading; 'interleaved' "
                             "time-slices all lanes in one process, "
                             "shares feasible costs as live incumbents, "
                             "and cancels everything at the first proven "
                             "optimum (race semantics, zero extra "
                             "processes)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS",
                        help="wall-clock budget per exact request; when "
                             "it expires the interleaved scheduler "
                             "(which a deadline implies) returns the "
                             "best feasible circuit found so far instead "
                             "of an error; a request's own 'deadline_ms' "
                             "field overrides this default")


def _add_topology_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--topology", metavar="FAMILY", default=None,
                        choices=TOPOLOGY_FAMILIES,
                        help="pin the service to one device topology: "
                             "requests synthesize topology-natively and "
                             "memory/cache entries never mix across "
                             "devices (needs --topology-size)")
    parser.add_argument("--topology-size", type=int, default=None,
                        metavar="N",
                        help="physical qubit count of the pinned device "
                             "(requests must match it)")


def _cmd_prepare(args: argparse.Namespace, state: QState) -> int:
    if args.mode == "fast":
        return _cmd_prepare_fast(args, state)
    result = prepare_state(state, QSPConfig())
    print(f"target : {state.pretty()}")
    print(f"qubits : {state.num_qubits}   cardinality: "
          f"{state.cardinality}")
    print(f"CNOTs  : {result.cnot_cost}")
    for line in result.trace:
        print(f"  - {line}")
    if args.draw:
        print(result.circuit.draw())
    if args.qasm:
        from repro.circuits.qasm import to_qasm
        text = to_qasm(result.circuit)
        if args.qasm == "-":
            print(text)
        else:
            with open(args.qasm, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"QASM written to {args.qasm}")
    return 0


def _cmd_prepare_fast(args: argparse.Namespace, state: QState) -> int:
    """``prepare --mode fast``: one request through the serving tiers.

    Boots an in-process :class:`SynthesisService` (optionally warm from
    ``--snapshot`` / ``--cache-snapshot``) and submits a single ``fast``
    op — cache hit, near-hit adaptation, or learned-bound search,
    whichever answers first.  The served circuit is always simulator-
    verified; it is only marked optimal when a sound bound certifies it.
    """
    from repro.service.server import ServiceConfig, SynthesisService
    from repro.utils.serialization import circuit_from_dict, state_to_dict

    config = ServiceConfig(snapshot_path=args.snapshot,
                           cache_snapshot_path=args.cache_snapshot,
                           portfolio_mode="interleaved")
    service = SynthesisService(config)
    request: dict = {"id": 0, "op": "fast", "state": state_to_dict(state)}
    if args.deadline_ms is not None:
        request["deadline_ms"] = args.deadline_ms
    if args.qasm or args.draw:
        request["return_circuit"] = True
    response = service.handle(request)
    if not response.get("ok"):
        raise SystemExit(f"fast synthesis failed: {response.get('error')}")
    print(f"target : {state.pretty()}")
    print(f"qubits : {state.num_qubits}   cardinality: "
          f"{state.cardinality}")
    if "cnot_cost" in response:
        flag = " (proven optimal)" if response.get("optimal") else ""
        print(f"CNOTs  : {response['cnot_cost']}{flag}")
    else:
        bound = response.get("lower_bound")
        tail = f" (cost >= {bound})" if bound is not None else ""
        print(f"CNOTs  : unsolved within budget{tail}")
    tier = "cache" if response.get("cached") \
        else response.get("engine", "search")
    near = " (near-hit adaptation)" if response.get("near_hit") else ""
    print(f"tier   : {tier}{near}")
    if response.get("verified"):
        print("checked: simulator-verified against the target")
    if response.get("deadline_expired"):
        print("note   : deadline expired; best feasible answer served")
    print(f"seconds: {response.get('seconds', 0.0):.6f}")
    circuit_data = response.get("circuit")
    if circuit_data is not None:
        circuit = circuit_from_dict(circuit_data)
        if args.draw:
            print(circuit.draw())
        if args.qasm:
            from repro.circuits.qasm import to_qasm
            text = to_qasm(circuit)
            if args.qasm == "-":
                print(text)
            else:
                with open(args.qasm, "w", encoding="utf-8") as handle:
                    handle.write(text)
                print(f"QASM written to {args.qasm}")
    return 0


def _cmd_distill(args: argparse.Namespace) -> int:
    """``distill``: request-cache snapshot -> pattern-database snapshot.

    Every cached solved result becomes cost evidence for its target's
    entanglement signature: solved costs feed the learned (inadmissible)
    bound tier, proven-optimal ones additionally become proof evidence
    the admissibility audit checks against.  The structural admissible
    tier is recomputed from signatures alone, so distillation can never
    make an exact search inadmissible.
    """
    from repro.core.memory import SearchMemory
    from repro.core.pdb import entanglement_signature, state_from_payload
    from repro.service.persistence import (
        load_memory_snapshot,
        load_request_cache,
        save_memory_snapshot,
    )

    cache = load_request_cache(args.cache)
    if args.snapshot_in:
        memory = load_memory_snapshot(args.snapshot_in)
    else:
        memory = SearchMemory()
    pdb = memory.pdb
    scanned = 0
    for _mode, payload, result in cache.items():
        cost = getattr(result, "cnot_cost", None)
        if cost is None:
            continue
        optimal = bool(getattr(result, "optimal", False)
                       or getattr(result, "exact_optimal", False))
        signature = entanglement_signature(state_from_payload(payload))
        pdb.observe(signature, solved_cost=int(cost), optimal=optimal)
        scanned += 1
    violations = pdb.audit()
    if violations:
        raise SystemExit(
            f"distilled pattern database failed the admissibility audit "
            f"({len(violations)} violation(s)); refusing to write "
            f"{args.snapshot_out}: {violations[:3]!r}")
    save_memory_snapshot(memory, args.snapshot_out)
    snap = pdb.snapshot()
    print(f"distilled {scanned} cached result(s) from {args.cache}")
    print(f"pattern database: {snap['entries']} signature(s), "
          f"audit clean")
    print(f"memory snapshot written to {args.snapshot_out}")
    return 0


def _cmd_route(args: argparse.Namespace, state: QState) -> int:
    from repro.arch.flow import prepare_on_device
    from repro.arch.topologies import named_topology

    device = named_topology(args.topology, state.num_qubits)
    result = prepare_on_device(state, device, placement=args.placement,
                               seed=args.seed, mode=args.mode)
    print(f"device    : {device.name} ({device.size} physical qubits)")
    print(f"pipeline  : {args.mode} -> won by {result.mode}")
    print(f"placement : {result.placement_strategy} -> "
          f"{result.routed.initial_layout}")
    print(f"logical   : {result.logical_cnots} CNOTs")
    print(f"physical  : {result.physical_cnots} CNOTs "
          f"({result.routed.swap_count} SWAPs inserted)")
    print(f"overhead  : {result.overhead_cnots} CNOTs")
    if result.verified is not None:
        print(f"verified  : {result.verified}")
    return 0


def _cmd_fidelity(args: argparse.Namespace, state: QState) -> int:
    from repro.sim.noise import (
        NoiseModel,
        analytic_fidelity_bound,
        density_matrix_fidelity,
    )

    noise = NoiseModel(p_cx=args.p_cx, p_1q=args.p_1q)
    circuit = prepare_state(state, QSPConfig()).circuit
    bound = analytic_fidelity_bound(circuit, noise)
    print(f"CNOTs           : {circuit.cnot_cost()}")
    print(f"noise           : p_cx={noise.p_cx}  p_1q={noise.p_1q}")
    print(f"no-fault bound  : {bound:.6f}")
    if state.num_qubits <= 7:
        exact = density_matrix_fidelity(circuit, state, noise)
        print(f"exact fidelity  : {exact:.6f}")
    else:
        print("exact fidelity  : register too wide for density simulation")
    return 0


def _cmd_family(args: argparse.Namespace) -> int:
    from repro.core.astar import SearchConfig
    from repro.core.memory import SearchMemory
    from repro.experiments.family_runner import (
        FamilyRunConfig,
        dicke_family_targets,
        run_family,
    )

    from repro.core.beam import BeamConfig

    targets = dicke_family_targets(args.max_n, min_n=args.min_n)
    config = FamilyRunConfig(
        engine=args.engine,
        search=SearchConfig(max_nodes=args.max_nodes,
                            time_limit=args.time_limit),
        beam=BeamConfig(time_limit=args.time_limit),
        warm=not args.cold,
        topology=args.topology)
    if args.cold and (args.snapshot_in or args.snapshot_out):
        raise SystemExit("--cold cannot be combined with --snapshot-in/"
                         "--snapshot-out (there is no memory to persist)")
    if args.topology and (args.snapshot_in or args.snapshot_out):
        raise SystemExit("--topology runs keep one memory per register "
                         "size and cannot load/persist a single snapshot; "
                         "drop --snapshot-in/--snapshot-out")
    memory_pool = None
    if args.snapshot_in:
        from repro.service.persistence import load_memory_snapshot
        memory = load_memory_snapshot(args.snapshot_in)
    elif args.topology:
        # one memory per register size, held here so --repeat passes
        # stay warm across reps exactly like unrestricted runs
        memory = None
        memory_pool = {} if not args.cold else None
    else:
        memory = SearchMemory() if not args.cold else None
    for rep in range(max(1, args.repeat)):
        report = run_family(targets, config, memory=memory,
                            memory_pool=memory_pool)
        rows = []
        for row in report.rows:
            if row.solved:
                cost = row.cnot_cost
            elif row.lower_bound is not None:
                cost = f">={row.lower_bound}"
            else:
                cost = "-"
            flag = "*" if row.optimal else ""
            rows.append([row.label, f"{cost}{flag}", row.nodes_expanded,
                         f"{row.seconds:.3f}"])
        mode = "cold" if args.cold else f"warm pass {rep + 1}"
        if args.topology:
            mode += f", native on {args.topology}"
        print(format_table(
            ["state", "cnot", "expansions", "seconds"], rows,
            title=f"{args.engine} family run ({mode}, "
                  f"{report.total_seconds:.3f}s total; * = proven optimal)"))
        if report.memory is not None:
            canon = report.memory["canon_store"]
            tt = report.memory["transposition"]
            print(f"  memory: {report.memory['pool_states']} pooled states, "
                  f"canon store {canon['hits']}/{canon['hits'] + canon['misses']} hits, "
                  f"transposition {tt['entries']} entries "
                  f"({tt['hits']} hits)")
    if args.snapshot_out and memory is not None:
        from repro.service.persistence import save_memory_snapshot
        save_memory_snapshot(memory, args.snapshot_out)
        print(f"SearchMemory snapshot written to {args.snapshot_out}")
    return 0


def _service_config(args: argparse.Namespace, **extra):
    """Build a ServiceConfig honoring the CLI budget flags everywhere:
    both the 'exact' portfolio search and the 'prepare' workflow's exact
    stage (whose own defaults would otherwise silently win)."""
    from repro.core.astar import SearchConfig
    from repro.qsp.config import QSPConfig
    from repro.service.server import ServiceConfig

    search = SearchConfig()
    qsp = QSPConfig()
    if args.max_nodes is not None:
        search.max_nodes = args.max_nodes
        qsp.exact.search.max_nodes = args.max_nodes
    if args.time_limit is not None:
        search.time_limit = args.time_limit
        qsp.exact.search.time_limit = args.time_limit
        qsp.exact.beam.time_limit = args.time_limit
    topology = getattr(args, "topology", None)
    if topology is not None:
        if args.topology_size is None:
            raise SystemExit("--topology needs --topology-size (the "
                             "pinned device's physical qubit count)")
        from repro.arch.topologies import named_topology
        search.topology = named_topology(topology, args.topology_size)
    elif getattr(args, "topology_size", None) is not None:
        raise SystemExit("--topology-size without --topology")
    return ServiceConfig(search=search, qsp=qsp,
                         snapshot_path=args.snapshot,
                         portfolio_mode=getattr(args, "portfolio_mode",
                                                "sequential"),
                         deadline_ms=getattr(args, "deadline_ms", None),
                         **extra)


def _parse_listen(spec: str, flag: str = "--listen") -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"{flag} wants HOST:PORT, got {spec!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"{flag} port must be an integer, got {port!r}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import ObsConfig
    from repro.service.server import SynthesisService, serve_loop

    extra: dict = {}
    if args.wal_compact_every is not None:
        extra["wal_compact_interval"] = max(0, args.wal_compact_every)
    if args.max_inflight is not None:
        extra["max_inflight"] = args.max_inflight
    if args.no_obs:
        if args.trace is not None:
            raise SystemExit("--trace needs observability; drop --no-obs")
        if args.metrics is not None:
            raise SystemExit("--metrics needs observability; drop --no-obs")
    else:
        # the serve paths observe themselves by default; library callers
        # (and --no-obs) keep the zero-overhead disabled state
        extra["obs"] = ObsConfig.on(trace_path=args.trace)
    if args.metrics is not None and args.listen is None:
        raise SystemExit("--metrics requires --listen (the exposition "
                         "listener shares the socket event loop)")
    workers = max(1, args.workers)
    if workers >= 2:
        if args.listen is None:
            raise SystemExit("--workers needs --listen (the pool fans a "
                             "socket acceptor out across processes; the "
                             "stdin loop is inherently one process)")
        if args.race_workers >= 2:
            raise SystemExit("--workers and --race-workers do not "
                             "compose (pool workers already parallelize "
                             "across requests; racing inside each would "
                             "oversubscribe every core)")
    config = _service_config(args, use_cache=not args.no_cache,
                             race_workers=args.race_workers,
                             cache_snapshot_path=args.cache_snapshot,
                             wal_path=args.wal,
                             autotune_lanes=not args.no_autotune,
                             **extra)
    if workers >= 2:
        from repro.service.asyncserver import serve_listen
        from repro.service.pool import WorkerPool

        host, port = _parse_listen(args.listen)
        metrics_host = metrics_port = None
        if args.metrics is not None:
            metrics_host, metrics_port = _parse_listen(args.metrics,
                                                       "--metrics")
        pool = WorkerPool(config, workers, obs_config=config.obs)
        summary = serve_listen(pool, host, port,
                               metrics_host=metrics_host,
                               metrics_port=metrics_port)
        print(f"served {summary['handled']} request(s) on "
              f"{summary['connections']} connection(s) across "
              f"{workers} worker(s), {summary['drained']} drained at "
              f"shutdown", file=sys.stderr)
        for index, worker in sorted(summary.get("workers", {}).items()):
            if worker.get("wal_snapshot"):
                print(f"worker {index}: WAL compacted into "
                      f"{worker['wal_snapshot']}", file=sys.stderr)
        return 0
    service = SynthesisService(config)
    if args.listen is not None:
        from repro.service.asyncserver import serve_listen
        host, port = _parse_listen(args.listen)
        metrics_host = metrics_port = None
        if args.metrics is not None:
            metrics_host, metrics_port = _parse_listen(args.metrics,
                                                       "--metrics")
        summary = serve_listen(service, host, port,
                               metrics_host=metrics_host,
                               metrics_port=metrics_port)
        stats = service.stats()
        print(f"served {summary['handled']} request(s) on "
              f"{summary['connections']} connection(s), "
              f"{stats['cache_hits']} cache hit(s), "
              f"{stats['errors']} error(s), "
              f"{summary['drained']} drained at shutdown",
              file=sys.stderr)
        if summary.get("wal_snapshot"):
            print(f"WAL compacted into {summary['wal_snapshot']}",
                  file=sys.stderr)
        if summary.get("cache_snapshot"):
            print(f"request-cache snapshot written to "
                  f"{summary['cache_snapshot']}", file=sys.stderr)
        return 0
    handled = serve_loop(service, sys.stdin, sys.stdout)
    summary = service.shutdown()
    stats = service.stats()
    print(f"served {handled} request(s), {stats['cache_hits']} cache "
          f"hit(s), {stats['errors']} error(s)", file=sys.stderr)
    if summary.get("wal_snapshot"):
        print(f"WAL compacted into {summary['wal_snapshot']}",
              file=sys.stderr)
    if summary.get("cache_snapshot"):
        print(f"request-cache snapshot written to "
              f"{summary['cache_snapshot']}", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.service.server import SynthesisService

    service = SynthesisService(_service_config(args))
    summary = service.run_batch_file(args.input, args.output,
                                     workers=max(1, args.workers),
                                     with_circuit=args.circuits)
    print(f"batch: {summary['solved']}/{summary['requests']} solved "
          f"({summary['cache_hits']} cache hits, "
          f"{summary['workers']} worker(s)) -> {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace, state: QState) -> int:
    from repro.circuits.qasm import from_qasm
    from repro.sim.sparse import sparse_prepares

    with open(args.qasm_file, encoding="utf-8") as handle:
        circuit = from_qasm(handle.read())
    ok = sparse_prepares(circuit, state)
    print(f"circuit : {circuit.num_qubits} qubits, "
          f"{circuit.cnot_cost()} CNOTs")
    print(f"verdict : {'PREPARES' if ok else 'DOES NOT PREPARE'} the target")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "family":
        return _cmd_family(args)
    if args.command == "distill":
        return _cmd_distill(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "batch":
        return _cmd_batch(args)
    state = _state_from_args(args)

    if args.command == "prepare":
        return _cmd_prepare(args, state)
    if args.command == "compare":
        row = compare_methods(state)
        print(format_table(
            ["n", "m", "m-flow", "n-flow", "hybrid(+1 anc)", "ours"],
            [row.as_row()]))
        return 0
    if args.command == "route":
        return _cmd_route(args, state)
    if args.command == "fidelity":
        return _cmd_fidelity(args, state)
    if args.command == "verify":
        return _cmd_verify(args, state)
    return 1


if __name__ == "__main__":
    sys.exit(main())

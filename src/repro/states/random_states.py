"""Seeded random state generators matching the paper's benchmark suites.

Sec. VI-C samples, for each parameter setting, random states that are

* **dense**: cardinality ``m = 2**(n-1)`` — half of the basis occupied, and
* **sparse**: cardinality ``m = n``.

The paper tests *uniform* states ("Although we test uniform states to compare
with related works, our implementation applies to any state with real
amplitudes"), so the default generators give uniform amplitudes over a random
index set; ``random_real_state`` draws random real amplitudes instead.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StateError
from repro.states.qstate import QState

__all__ = [
    "random_uniform_state",
    "random_real_state",
    "random_dense_state",
    "random_sparse_state",
    "benchmark_suite",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _random_index_set(num_qubits: int, cardinality: int,
                      rng: np.random.Generator) -> np.ndarray:
    dim = 1 << num_qubits
    if not 1 <= cardinality <= dim:
        raise StateError(
            f"cardinality {cardinality} out of range for {num_qubits} qubits")
    if cardinality > dim // 2:
        # Sampling without replacement is cheaper on the complement.
        excluded = rng.choice(dim, size=dim - cardinality, replace=False)
        mask = np.ones(dim, dtype=bool)
        mask[excluded] = False
        return np.nonzero(mask)[0]
    return rng.choice(dim, size=cardinality, replace=False)


def random_uniform_state(num_qubits: int, cardinality: int,
                         seed: int | np.random.Generator | None = None) -> QState:
    """Uniform superposition over a uniformly random index set of the given
    cardinality (the paper's benchmark distribution)."""
    rng = _rng(seed)
    indices = _random_index_set(num_qubits, cardinality, rng)
    return QState.uniform(num_qubits, (int(i) for i in indices))


def random_real_state(num_qubits: int, cardinality: int,
                      seed: int | np.random.Generator | None = None) -> QState:
    """Random signed real amplitudes (Gaussian, then normalized) over a
    random index set."""
    rng = _rng(seed)
    indices = _random_index_set(num_qubits, cardinality, rng)
    while True:
        amps = rng.standard_normal(len(indices))
        if np.linalg.norm(amps) > 1e-6:
            break
    return QState(num_qubits,
                  {int(i): float(a) for i, a in zip(indices, amps)})


def random_dense_state(num_qubits: int,
                       seed: int | np.random.Generator | None = None,
                       uniform: bool = True) -> QState:
    """Paper's dense benchmark state: ``m = 2**(n-1)``."""
    m = 1 << (num_qubits - 1)
    maker = random_uniform_state if uniform else random_real_state
    return maker(num_qubits, m, seed)


def random_sparse_state(num_qubits: int,
                        seed: int | np.random.Generator | None = None,
                        uniform: bool = True) -> QState:
    """Paper's sparse benchmark state: ``m = n``."""
    maker = random_uniform_state if uniform else random_real_state
    return maker(num_qubits, num_qubits, seed)


def benchmark_suite(num_qubits: int, sparse: bool, count: int,
                    seed: int = 2024, uniform: bool = True) -> list[QState]:
    """A reproducible list of benchmark states for one table row.

    The seed stream is derived from ``(seed, num_qubits, sparse)`` so each
    row of Table V gets an independent, stable sample.
    """
    rng = np.random.default_rng((seed, num_qubits, int(sparse)))
    maker = random_sparse_state if sparse else random_dense_state
    return [maker(num_qubits, rng, uniform=uniform) for _ in range(count)]

"""Entanglement-structure analysis of sparse real states.

These routines back two parts of the paper:

* the **admissible heuristic** (Sec. V-A): a lower bound on the CNOT count
  derived from the number of non-separable qubits, obtainable "by evaluating
  mutual information";
* the **canonicalization** (Sec. V-B), which filters out separable qubits.

For sparse real states, exact qubit separability is cheap: qubit ``q`` is
separable iff its two cofactor vectors are proportional.  We implement both
the exact test and the Shannon mutual-information view the paper cites.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.constants import ATOL, MI_PAIR_THRESHOLD
from repro.states.qstate import QState
from repro.utils.bits import bit_of

__all__ = [
    "qubit_separable",
    "separable_qubits",
    "entangled_qubits",
    "num_entangled_qubits",
    "entanglement_lower_bound",
    "qubit_marginal",
    "pair_distribution",
    "mutual_information",
    "mutual_information_matrix",
    "entangled_pairs_mi",
    "schmidt_rank",
    "schmidt_coefficients",
    "entanglement_entropy",
]


def _cofactor_ratio(state: QState, qubit: int) -> float | None:
    """Proportionality factor ``lambda`` with ``psi|q=1 == lambda * psi|q=0``.

    Returns ``None`` when the cofactors are not proportional (entangled
    qubit).  ``0.0`` means the qubit is fixed at ``|0>``; ``math.inf`` means
    fixed at ``|1>``.
    """
    shift = state.num_qubits - 1 - qubit
    bit = 1 << shift
    cof0: dict[int, float] = {}
    cof1: dict[int, float] = {}
    for idx, amp in state.items():
        if idx & bit:
            cof1[idx & ~bit] = amp
        else:
            cof0[idx] = amp
    if not cof1:
        return 0.0
    if not cof0:
        return math.inf
    if len(cof0) != len(cof1) or cof0.keys() != cof1.keys():
        return None
    ratio: float | None = None
    for idx, a0 in cof0.items():
        a1 = cof1[idx]
        r = a1 / a0
        if ratio is None:
            ratio = r
        elif abs(r - ratio) > 1e-8 * max(1.0, abs(ratio)):
            return None
    return ratio


def qubit_separable(state: QState, qubit: int) -> bool:
    """Exact test: can ``qubit`` be factored out of the state?

    True iff ``psi = (a|0> + b|1>)_q  (x)  psi_rest``, i.e. the two cofactor
    vectors of ``qubit`` are proportional.

    >>> from repro.states.families import ghz_state
    >>> qubit_separable(ghz_state(3), 0)
    False
    """
    return _cofactor_ratio(state, qubit) is not None


def separable_qubits(state: QState) -> list[int]:
    """All qubits that can be factored out (ascending order)."""
    return [q for q in range(state.num_qubits) if qubit_separable(state, q)]


def entangled_qubits(state: QState) -> list[int]:
    """All qubits that cannot be factored out (ascending order)."""
    return [q for q in range(state.num_qubits)
            if not qubit_separable(state, q)]


def num_entangled_qubits(state: QState) -> int:
    """Count of non-separable qubits."""
    return len(entangled_qubits(state))


def entanglement_lower_bound(state: QState) -> int:
    """Admissible CNOT lower bound ``ceil(k / 2)`` (paper Sec. V-A).

    Every CNOT touches exactly two qubits, and only CNOTs change the
    entanglement structure, so a circuit reaching the (fully separable)
    ground state from a state with ``k`` entangled qubits must contain at
    least ``ceil(k/2)`` CNOTs.  For the 4-qubit GHZ state this returns 2
    while the true optimum is 3 — an admissible underestimate, exactly as
    discussed in the paper.
    """
    k = num_entangled_qubits(state)
    return (k + 1) // 2


def qubit_marginal(state: QState, qubit: int) -> tuple[float, float]:
    """Measurement probabilities ``(p0, p1)`` of one qubit."""
    p1 = sum(a * a for i, a in state.items()
             if bit_of(i, qubit, state.num_qubits) == 1)
    return (max(0.0, 1.0 - p1), p1)


def pair_distribution(state: QState, qa: int, qb: int) -> np.ndarray:
    """Joint measurement distribution of two qubits as a 2x2 array."""
    dist = np.zeros((2, 2))
    n = state.num_qubits
    for i, a in state.items():
        dist[bit_of(i, qa, n), bit_of(i, qb, n)] += a * a
    return dist


def _entropy(probs: np.ndarray) -> float:
    p = probs[probs > ATOL]
    return float(-(p * np.log2(p)).sum()) if p.size else 0.0


def mutual_information(state: QState, qa: int, qb: int) -> float:
    """Shannon mutual information ``I(qa; qb)`` of the computational-basis
    measurement distribution (the quantity the paper cites for acquiring
    entangled qubit pairs)."""
    joint = pair_distribution(state, qa, qb)
    h_a = _entropy(joint.sum(axis=1))
    h_b = _entropy(joint.sum(axis=0))
    h_ab = _entropy(joint.reshape(-1))
    return max(0.0, h_a + h_b - h_ab)


def mutual_information_matrix(state: QState) -> np.ndarray:
    """Symmetric ``n x n`` matrix of pairwise mutual information."""
    n = state.num_qubits
    out = np.zeros((n, n))
    for a in range(n):
        for b in range(a + 1, n):
            mi = mutual_information(state, a, b)
            out[a, b] = out[b, a] = mi
    return out


def entangled_pairs_mi(state: QState, threshold: float = MI_PAIR_THRESHOLD
                       ) -> list[tuple[int, int]]:
    """Qubit pairs whose basis-measurement mutual information exceeds the
    threshold — the paper's "number of entangled qubit pairs" probe.

    The default threshold is the shared :data:`repro.constants
    .MI_PAIR_THRESHOLD` — entanglement signatures key on this pair set,
    so the floor must be one pinned constant, not a per-call literal."""
    mi = mutual_information_matrix(state)
    n = state.num_qubits
    return [(a, b) for a in range(n) for b in range(a + 1, n)
            if mi[a, b] > threshold]


def schmidt_rank(state: QState, subset: list[int]) -> int:
    """Schmidt rank of the bipartition ``subset`` vs the rest.

    Rank 1 means the bipartition is separable.  Computed exactly from the
    sparse amplitude matrix (rows = subset configurations, columns = rest).
    """
    n = state.num_qubits
    rest = [q for q in range(n) if q not in subset]
    rows: dict[int, int] = {}
    cols: dict[int, int] = {}
    entries: dict[tuple[int, int], float] = defaultdict(float)
    for i, a in state.items():
        r = 0
        for q in subset:
            r = (r << 1) | bit_of(i, q, n)
        c = 0
        for q in rest:
            c = (c << 1) | bit_of(i, q, n)
        ri = rows.setdefault(r, len(rows))
        ci = cols.setdefault(c, len(cols))
        entries[(ri, ci)] += a
    mat = np.zeros((len(rows), max(1, len(cols))))
    for (ri, ci), a in entries.items():
        mat[ri, ci] = a
    return int(np.linalg.matrix_rank(mat, tol=1e-9))


def _coefficient_matrix(state: QState, subset: list[int]) -> np.ndarray:
    """Sparse amplitude matrix of the bipartition (subset rows, rest cols)."""
    n = state.num_qubits
    rest = [q for q in range(n) if q not in subset]
    rows: dict[int, int] = {}
    cols: dict[int, int] = {}
    entries: dict[tuple[int, int], float] = defaultdict(float)
    for i, a in state.items():
        r = 0
        for q in subset:
            r = (r << 1) | bit_of(i, q, n)
        c = 0
        for q in rest:
            c = (c << 1) | bit_of(i, q, n)
        ri = rows.setdefault(r, len(rows))
        ci = cols.setdefault(c, len(cols))
        entries[(ri, ci)] += a
    mat = np.zeros((max(1, len(rows)), max(1, len(cols))))
    for (ri, ci), a in entries.items():
        mat[ri, ci] = a
    return mat


def schmidt_coefficients(state: QState, subset: list[int]) -> np.ndarray:
    """Schmidt coefficients (descending singular values) across the
    bipartition ``subset`` vs the rest.

    Their squares sum to 1 for a normalized state; the number of nonzero
    entries is :func:`schmidt_rank`.
    """
    subset = sorted(set(subset))
    n = state.num_qubits
    if any(q < 0 or q >= n for q in subset):
        raise ValueError(f"subset {subset} outside the {n}-qubit register")
    if not subset or len(subset) == n:
        return np.array([state.norm()])
    return np.linalg.svd(_coefficient_matrix(state, subset),
                         compute_uv=False)


def entanglement_entropy(state: QState, subset: list[int],
                         base: float = 2.0) -> float:
    """Von Neumann entanglement entropy across ``subset`` vs the rest.

    ``S = -sum_i  l_i * log(l_i)`` over the squared Schmidt coefficients
    ``l_i``; 0 for separable cuts, 1 for a Bell pair, bounded by
    ``min(|subset|, n - |subset|)`` in base 2.
    """
    if base <= 1.0:
        raise ValueError("entropy base must exceed 1")
    coefficients = schmidt_coefficients(state, subset)
    probs = coefficients ** 2
    probs = probs[probs > 1e-15]
    total = probs.sum()
    if total <= 0:
        return 0.0
    probs = probs / total
    return float(-(probs * (np.log(probs) / math.log(base))).sum())

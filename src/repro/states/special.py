"""Extended state families (extension).

Beyond the paper's benchmark families (:mod:`repro.states.families`), these
are the application states its introduction motivates: entanglement
resources for communication (Bell pairs, graph/cluster states), metrology
probes (spin-squeezing inputs), and amplitude encodings of classical
probability distributions for quantum machine learning and finance — all
real-amplitude, hence directly preparable by the paper's workflow.

Graph and hypergraph states carry amplitudes ``+-1/sqrt(2**n)``:
``|G> = prod_{e in E} CZ_e  H^n |0>``, so the amplitude of ``|x>`` is
``(-1)^{#induced edges of x}/sqrt(2**n)`` — real, as required.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import StateError
from repro.states.qstate import QState
from repro.utils.bits import bit_of

__all__ = [
    "bell_state",
    "graph_state",
    "cluster_state_1d",
    "cluster_state_2d",
    "hypergraph_state",
    "distribution_state",
    "gaussian_state",
    "binomial_state",
    "exponential_state",
    "bitstring_superposition",
    "domain_wall_state",
    "unary_encoding_state",
]


def bell_state(kind: int = 0) -> QState:
    """One of the four Bell states (real-amplitude form).

    ``kind``: 0 = ``(|00>+|11>)/sqrt2``, 1 = ``(|00>-|11>)/sqrt2``,
    2 = ``(|01>+|10>)/sqrt2``, 3 = ``(|01>-|10>)/sqrt2``.
    """
    table = {
        0: {0b00: 1.0, 0b11: 1.0},
        1: {0b00: 1.0, 0b11: -1.0},
        2: {0b01: 1.0, 0b10: 1.0},
        3: {0b01: 1.0, 0b10: -1.0},
    }
    if kind not in table:
        raise StateError(f"Bell kind must be 0..3, got {kind}")
    inv = 1.0 / math.sqrt(2.0)
    return QState(2, {i: a * inv for i, a in table[kind].items()})


def graph_state(graph: nx.Graph, num_qubits: int | None = None) -> QState:
    """The graph state of ``graph`` (nodes must be ``0 .. n-1``).

    Amplitude of ``|x>`` is ``(-1)^{e(x)} / sqrt(2**n)`` where ``e(x)``
    counts the edges of ``graph`` with both endpoints set in ``x``.
    """
    nodes = sorted(graph.nodes())
    if num_qubits is None:
        num_qubits = (max(nodes) + 1) if nodes else 1
    if nodes and (nodes[0] < 0 or nodes[-1] >= num_qubits):
        raise StateError(
            f"graph nodes {nodes[0]}..{nodes[-1]} outside register "
            f"of {num_qubits}")
    n = num_qubits
    if n > 20:
        raise StateError(f"graph state on {n} qubits is too dense to store")
    edges = [(int(a), int(b)) for a, b in graph.edges()]
    inv = 1.0 / math.sqrt(float(1 << n))
    amplitudes: dict[int, float] = {}
    for index in range(1 << n):
        parity = 0
        for a, b in edges:
            if bit_of(index, a, n) and bit_of(index, b, n):
                parity ^= 1
        amplitudes[index] = -inv if parity else inv
    return QState(n, amplitudes)


def cluster_state_1d(num_qubits: int) -> QState:
    """Linear cluster state (graph state of the path graph)."""
    if num_qubits < 1:
        raise StateError("cluster state needs at least one qubit")
    return graph_state(nx.path_graph(num_qubits), num_qubits)


def cluster_state_2d(rows: int, cols: int) -> QState:
    """2D cluster state (graph state of the grid graph), row-major qubits."""
    if rows < 1 or cols < 1:
        raise StateError(f"bad cluster shape {rows}x{cols}")
    grid = nx.convert_node_labels_to_integers(nx.grid_2d_graph(rows, cols),
                                              ordering="sorted")
    return graph_state(grid, rows * cols)


def hypergraph_state(num_qubits: int,
                     hyperedges: Iterable[Sequence[int]]) -> QState:
    """Hypergraph state: ``C^k Z`` on every hyperedge applied to ``H^n|0>``.

    The amplitude of ``|x>`` flips sign once per hyperedge fully contained
    in the support of ``x``.
    """
    if num_qubits < 1 or num_qubits > 20:
        raise StateError(f"hypergraph state width {num_qubits} unsupported")
    edge_list: list[tuple[int, ...]] = []
    for edge in hyperedges:
        qubits = tuple(sorted(set(int(q) for q in edge)))
        if not qubits:
            raise StateError("empty hyperedge")
        if qubits[0] < 0 or qubits[-1] >= num_qubits:
            raise StateError(f"hyperedge {qubits} outside the register")
        edge_list.append(qubits)
    n = num_qubits
    inv = 1.0 / math.sqrt(float(1 << n))
    amplitudes: dict[int, float] = {}
    for index in range(1 << n):
        parity = 0
        for qubits in edge_list:
            if all(bit_of(index, q, n) for q in qubits):
                parity ^= 1
        amplitudes[index] = -inv if parity else inv
    return QState(n, amplitudes)


def distribution_state(weights: Sequence[float],
                       num_qubits: int | None = None) -> QState:
    """Amplitude encoding ``sum_x sqrt(p_x) |x>`` of a distribution.

    ``weights`` are unnormalized non-negative probabilities over basis
    indices ``0 .. len-1``; zero entries are dropped (keeping the state
    sparse).  This is the QML/finance loading workload the paper's
    introduction cites as a QSP application.
    """
    weights = list(weights)
    if not weights:
        raise StateError("empty weight vector")
    if any(w < 0 for w in weights):
        raise StateError("negative probability weight")
    total = float(sum(weights))
    if total <= 0:
        raise StateError("weights sum to zero")
    if num_qubits is None:
        num_qubits = max(1, (len(weights) - 1).bit_length())
    if len(weights) > (1 << num_qubits):
        raise StateError(
            f"{len(weights)} weights exceed 2**{num_qubits} basis states")
    amplitudes = {i: math.sqrt(w / total)
                  for i, w in enumerate(weights) if w > 0}
    return QState(num_qubits, amplitudes)


def gaussian_state(num_qubits: int, mean: float | None = None,
                   std: float | None = None) -> QState:
    """Discretized Gaussian amplitude encoding on ``2**n`` grid points."""
    size = 1 << num_qubits
    mean = (size - 1) / 2.0 if mean is None else mean
    std = size / 6.0 if std is None else std
    if std <= 0:
        raise StateError("std must be positive")
    xs = np.arange(size, dtype=np.float64)
    weights = np.exp(-0.5 * ((xs - mean) / std) ** 2)
    return distribution_state(list(weights), num_qubits)


def binomial_state(num_qubits: int, probability: float = 0.5) -> QState:
    """Binomial(B(2**n - 1, p)) amplitude encoding — the lattice random
    walk used in option-pricing QSP demos."""
    if not 0.0 < probability < 1.0:
        raise StateError("binomial probability must lie in (0, 1)")
    size = 1 << num_qubits
    trials = size - 1
    log_p = math.log(probability)
    log_q = math.log(1.0 - probability)
    weights = [math.exp(math.lgamma(trials + 1) - math.lgamma(k + 1)
                        - math.lgamma(trials - k + 1)
                        + k * log_p + (trials - k) * log_q)
               for k in range(size)]
    return distribution_state(weights, num_qubits)


def exponential_state(num_qubits: int, rate: float = 1.0) -> QState:
    """Exponential-decay amplitude encoding ``p_x ~ exp(-rate * x / 2**n)``."""
    if rate <= 0:
        raise StateError("rate must be positive")
    size = 1 << num_qubits
    weights = [math.exp(-rate * x / size) for x in range(size)]
    return distribution_state(weights, num_qubits)


def bitstring_superposition(bitstrings: Iterable[str],
                            amplitudes: Iterable[float] | None = None
                            ) -> QState:
    """State over explicit bitstrings, e.g. ``['000', '011', '101']``.

    Uniform when ``amplitudes`` is omitted; otherwise paired with the
    (unnormalized, possibly signed) amplitudes.
    """
    bits = list(bitstrings)
    if not bits:
        raise StateError("no bitstrings given")
    width = len(bits[0])
    if any(len(b) != width or any(c not in "01" for c in b) for b in bits):
        raise StateError("bitstrings must share a width and be binary")
    indices = [int(b, 2) for b in bits]
    if len(set(indices)) != len(indices):
        raise StateError("duplicate bitstring")
    if amplitudes is None:
        return QState.uniform(width, indices)
    amps = list(amplitudes)
    if len(amps) != len(indices):
        raise StateError("amplitude count does not match bitstrings")
    return QState(width, dict(zip(indices, amps)))


def domain_wall_state(num_qubits: int) -> QState:
    """Uniform superposition of all ``0^a 1^b`` domain-wall strings
    (``n + 1`` of them) — a sparse family with long-range structure."""
    if num_qubits < 1:
        raise StateError("need at least one qubit")
    indices = [(1 << k) - 1 for k in range(num_qubits + 1)]
    return QState.uniform(num_qubits, indices)


def unary_encoding_state(values: Sequence[float]) -> QState:
    """Unary (one-hot) amplitude encoding: ``sum_i c_i |e_i>`` with
    ``e_i`` the one-hot string with qubit ``i`` set — the W-state-like
    encoding used by variational finance circuits."""
    values = [float(v) for v in values]
    if not values:
        raise StateError("empty value vector")
    norm = math.sqrt(sum(v * v for v in values))
    if norm <= 0:
        raise StateError("all-zero value vector")
    n = len(values)
    amplitudes = {1 << (n - 1 - i): v / norm
                  for i, v in enumerate(values) if v != 0.0}
    return QState(n, amplitudes)


def _apply_map(fn: Callable[[int], float], size: int) -> list[float]:
    return [fn(i) for i in range(size)]

"""Sparse real-amplitude quantum states.

This is the paper's ``n x m`` classical-bit encoding (Sec. VI-D): a state is
stored as its index set — the ``m`` basis indices with nonzero amplitude —
together with the ``m`` signed real amplitudes.  Dense ``2**n`` vectors are
only materialized on demand (for simulation and verification).

Conventions
-----------
* Qubit 0 is the **most significant** bit of a basis index, matching the
  paper's ``|q1 q2 ... qn>`` notation (see :mod:`repro.utils.bits`).
* Amplitudes are real (the paper restricts transitions to the X-Z plane, so
  every single-qubit gate is an ``Ry`` and amplitudes stay real).
* Equality and hashing quantize amplitudes to
  :data:`repro.constants.AMP_DECIMALS` decimals.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from repro.constants import AMP_DECIMALS, ATOL, quantize
from repro.exceptions import NormalizationError, StateError
from repro.utils.bits import (
    bit_of,
    flip_bit,
    index_to_bitstring,
    permute_index,
)

__all__ = ["QState", "StateKey"]

#: Hashable canonical key of a state: ``(num_qubits, ((index, amp), ...))``
#: with entries sorted by index and amplitudes quantized.
StateKey = tuple[int, tuple[tuple[int, float], ...]]


class QState:
    """An ``n``-qubit pure state with real amplitudes, stored sparsely.

    Parameters
    ----------
    num_qubits:
        Register width ``n``.
    amplitudes:
        Mapping from basis index to real amplitude.  Zero entries (below the
        library tolerance) are dropped.
    normalize:
        When true (default), rescale to unit norm; otherwise require the
        input to already be normalized.

    Examples
    --------
    >>> bell = QState(2, {0b00: 1.0, 0b11: 1.0})
    >>> bell.cardinality
    2
    >>> round(bell.amplitude(0), 6)
    0.707107
    """

    __slots__ = ("_n", "_amps", "_key", "_sorted")

    def __init__(self, num_qubits: int, amplitudes: Mapping[int, float],
                 normalize: bool = True):
        if num_qubits < 1:
            raise StateError(f"need at least one qubit, got {num_qubits}")
        dim = 1 << num_qubits
        amps: dict[int, float] = {}
        for idx, amp in amplitudes.items():
            if not 0 <= idx < dim:
                raise StateError(
                    f"basis index {idx} out of range for {num_qubits} qubits")
            a = float(amp)
            if abs(a) > ATOL:
                amps[int(idx)] = a
        if not amps:
            raise StateError("state has no nonzero amplitude")
        norm = math.sqrt(sum(a * a for a in amps.values()))
        if normalize:
            amps = {i: a / norm for i, a in amps.items()}
        elif abs(norm - 1.0) > 1e-6:
            raise NormalizationError(f"state norm {norm} != 1")
        self._n = num_qubits
        self._amps = amps
        self._key: StateKey | None = None
        self._sorted: tuple[tuple[int, float], ...] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def ground(cls, num_qubits: int) -> "QState":
        """The all-zeros computational basis state ``|0...0>``."""
        return cls(num_qubits, {0: 1.0}, normalize=False)

    @classmethod
    def basis(cls, num_qubits: int, index: int) -> "QState":
        """The computational basis state ``|index>``."""
        return cls(num_qubits, {index: 1.0}, normalize=False)

    @classmethod
    def uniform(cls, num_qubits: int, indices: Iterable[int]) -> "QState":
        """Uniform superposition over the given basis indices."""
        idx = list(indices)
        if not idx:
            raise StateError("uniform state needs at least one index")
        return cls(num_qubits, {i: 1.0 for i in idx})

    @classmethod
    def from_vector(cls, vector: np.ndarray, atol: float = 1e-9) -> "QState":
        """Build a sparse state from a dense real (or real-valued complex)
        statevector of length ``2**n``."""
        vec = np.asarray(vector)
        if np.iscomplexobj(vec):
            if np.max(np.abs(vec.imag)) > 1e-8:
                raise StateError("QState holds real amplitudes only")
            vec = vec.real
        size = vec.shape[0]
        n = int(round(math.log2(size)))
        if 1 << n != size:
            raise StateError(f"vector length {size} is not a power of two")
        amps = {int(i): float(v) for i, v in enumerate(vec) if abs(v) > atol}
        return cls(n, amps)

    @classmethod
    def from_bitstring_weights(cls, weights: Mapping[str, float]) -> "QState":
        """Build a state from ``{'0110': w, ...}`` bitstring weights."""
        if not weights:
            raise StateError("no bitstrings given")
        lengths = {len(b) for b in weights}
        if len(lengths) != 1:
            raise StateError(f"inconsistent bitstring lengths: {lengths}")
        n = lengths.pop()
        return cls(n, {int(b, 2): w for b, w in weights.items()})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Register width ``n``."""
        return self._n

    @property
    def cardinality(self) -> int:
        """``m = |S(psi)|``, the number of nonzero amplitudes."""
        return len(self._amps)

    @property
    def index_set(self) -> frozenset[int]:
        """The set ``S(psi)`` of basis indices with nonzero amplitude."""
        return frozenset(self._amps)

    def amplitude(self, index: int) -> float:
        """Amplitude of basis ``index`` (0.0 when absent)."""
        return self._amps.get(index, 0.0)

    def items(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(index, amplitude)`` pairs in ascending index order."""
        if self._sorted is None:
            self._sorted = tuple(sorted(self._amps.items()))
        return iter(self._sorted)

    def is_ground(self) -> bool:
        """True when this is ``|0...0>`` (up to global sign)."""
        return len(self._amps) == 1 and 0 in self._amps

    def is_basis_state(self) -> bool:
        """True when the state is a single computational basis state."""
        return len(self._amps) == 1

    def is_sparse(self) -> bool:
        """Paper's sparsity test (Sec. VI-A): ``n * m < 2**n``."""
        return self._n * self.cardinality < (1 << self._n)

    def norm(self) -> float:
        """Euclidean norm (1.0 by construction, up to float error)."""
        return math.sqrt(sum(a * a for a in self._amps.values()))

    # ------------------------------------------------------------------
    # Dense conversions
    # ------------------------------------------------------------------

    def to_vector(self) -> np.ndarray:
        """Dense ``2**n`` float64 statevector."""
        vec = np.zeros(1 << self._n, dtype=np.float64)
        for idx, amp in self._amps.items():
            vec[idx] = amp
        return vec

    # ------------------------------------------------------------------
    # Packed-array bridge (repro.core.kernel)
    # ------------------------------------------------------------------

    def packed_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The state as aligned ``(indices, amplitudes)`` arrays.

        Indices are the sorted 64-bit basis indices (``int64``; 62 qubits
        is far beyond any representable sparse working set), amplitudes the
        raw (unquantized) float64 values aligned with them.  This is the
        bridge into the packed search kernel; no validation is re-run.
        """
        if self._sorted is None:
            self._sorted = tuple(sorted(self._amps.items()))
        pairs = self._sorted
        idx = np.fromiter((i for i, _ in pairs), dtype=np.int64,
                          count=len(pairs))
        amp = np.fromiter((a for _, a in pairs), dtype=np.float64,
                          count=len(pairs))
        return idx, amp

    @classmethod
    def from_packed(cls, num_qubits: int, indices: np.ndarray,
                    amplitudes: np.ndarray) -> "QState":
        """Rebuild a ``QState`` from packed kernel arrays without checks.

        Trusted constructor for the kernel bridge: the caller guarantees the
        indices are sorted, in range and unique, and the amplitudes nonzero
        and normalized.  Skips ``__init__`` validation entirely and pre-seeds
        the sorted-items cache, so the round trip costs one dict build.
        """
        self = cls.__new__(cls)
        self._n = num_qubits
        pairs = tuple(zip((int(i) for i in indices),
                          (float(a) for a in amplitudes)))
        self._amps = dict(pairs)
        self._key = None
        self._sorted = pairs
        return self

    # ------------------------------------------------------------------
    # Hashing and equality
    # ------------------------------------------------------------------

    def key(self) -> StateKey:
        """Quantized, hashable representation (sorted by index)."""
        if self._key is None:
            entries = tuple(sorted(
                (idx, quantize(amp)) for idx, amp in self._amps.items()))
            self._key = (self._n, entries)
        return self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QState):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def approx_equal(self, other: "QState", atol: float = 1e-7,
                     up_to_global_sign: bool = True) -> bool:
        """Float-tolerant comparison, optionally up to a global ``+-1`` phase.

        Real states prepared through ``Ry``-only circuits are only defined up
        to global sign, so verification uses ``up_to_global_sign=True``.
        """
        if self._n != other._n:
            return False
        if self.index_set != other.index_set:
            return False
        signs = [1.0]
        if up_to_global_sign:
            signs.append(-1.0)
        for sign in signs:
            if all(abs(self._amps[i] - sign * other._amps[i]) <= atol
                   for i in self._amps):
                return True
        return False

    # ------------------------------------------------------------------
    # Index-set structure
    # ------------------------------------------------------------------

    def cofactor_indices(self, qubit: int, value: int) -> frozenset[int]:
        """Index set of the cofactor ``psi | qubit=value``.

        Returned indices keep their full width (the selected bit is *not*
        removed), which makes cofactor comparison a simple set operation
        after masking.
        """
        return frozenset(i for i in self._amps
                         if bit_of(i, qubit, self._n) == value)

    def cofactor(self, qubit: int, value: int) -> dict[int, float]:
        """Sub-state amplitudes over indices with ``qubit == value``, keyed
        by the index *with the selected bit cleared* so the two cofactors of
        a qubit are directly comparable."""
        out: dict[int, float] = {}
        for i, a in self._amps.items():
            if bit_of(i, qubit, self._n) == value:
                out[flip_bit(i, qubit, self._n) if value else i] = a
        return out

    def qubit_column(self, qubit: int) -> tuple[int, ...]:
        """The bit column of ``qubit`` across the sorted index set.

        This is one column of the paper's ``n x m`` bit matrix.
        """
        return tuple(bit_of(i, qubit, self._n)
                     for i in sorted(self._amps))

    # ------------------------------------------------------------------
    # Zero-cost transformations (used by canonicalization and moves)
    # ------------------------------------------------------------------

    def apply_x(self, qubit: int) -> "QState":
        """Return the state with ``X`` applied on ``qubit`` (free gate)."""
        amps = {flip_bit(i, qubit, self._n): a for i, a in self._amps.items()}
        return QState(self._n, amps, normalize=False)

    def apply_cx(self, control: int, target: int, phase: int = 1) -> "QState":
        """Return the state after a CNOT with the given control ``phase``.

        ``phase=1`` is the ordinary CNOT (flip target when control is 1);
        ``phase=0`` is the negated-control variant (still 1 CNOT once free
        ``X`` conjugation is absorbed).
        """
        if control == target:
            raise StateError("control and target must differ")
        amps: dict[int, float] = {}
        for i, a in self._amps.items():
            j = flip_bit(i, target, self._n) \
                if bit_of(i, control, self._n) == phase else i
            amps[j] = a
        if len(amps) != len(self._amps):
            raise StateError("CNOT must permute the index set")
        return QState(self._n, amps, normalize=False)

    def permute(self, perm: Iterable[int]) -> "QState":
        """Return the state with qubits permuted.

        ``perm[i] = j``: output qubit ``i`` carries input qubit ``j``.
        """
        perm = list(perm)
        if sorted(perm) != list(range(self._n)):
            raise StateError(f"not a permutation of {self._n} qubits: {perm}")
        amps = {permute_index(i, perm, self._n): a
                for i, a in self._amps.items()}
        return QState(self._n, amps, normalize=False)

    def negate(self) -> "QState":
        """Return the state with all amplitudes negated (global sign)."""
        return QState(self._n, {i: -a for i, a in self._amps.items()},
                      normalize=False)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"QState(n={self._n}, m={self.cardinality})"

    def __str__(self) -> str:
        terms = []
        for idx, amp in self.items():
            terms.append(f"{amp:+.4f}|{index_to_bitstring(idx, self._n)}>")
        return " ".join(terms)

    def pretty(self, max_terms: int = 16) -> str:
        """Human-readable rendering, truncated to ``max_terms`` terms."""
        terms = list(self.items())
        shown = terms[:max_terms]
        body = " ".join(
            f"{amp:+.4f}|{index_to_bitstring(idx, self._n)}>"
            for idx, amp in shown)
        if len(terms) > max_terms:
            body += f" ... (+{len(terms) - max_terms} more)"
        return body

"""Named quantum state families used throughout the paper's evaluation.

* **Dicke states** ``|D^k_n>`` — uniform superposition of all ``n``-bit basis
  states with Hamming weight ``k`` (Sec. VI-B).
* **W states** — the ``k = 1`` Dicke states.
* **GHZ states** — ``(|0...0> + |1...1>)/sqrt(2)`` (used by the paper to
  show the heuristic may underestimate).
* **Uniform states** over an arbitrary index set (Table III enumeration).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.exceptions import StateError
from repro.states.qstate import QState
from repro.utils.bits import indices_with_weight

__all__ = [
    "dicke_state",
    "w_state",
    "ghz_state",
    "uniform_state",
    "product_state",
    "dicke_cardinality",
]


def dicke_cardinality(num_qubits: int, weight: int) -> int:
    """Cardinality ``C(n, k)`` of the Dicke state ``|D^k_n>``."""
    return math.comb(num_qubits, weight)


def dicke_state(num_qubits: int, weight: int) -> QState:
    """The Dicke state ``|D^k_n>``.

    >>> dicke_state(3, 1).cardinality
    3
    """
    if not 0 <= weight <= num_qubits:
        raise StateError(
            f"Dicke weight {weight} out of range for {num_qubits} qubits")
    indices = indices_with_weight(num_qubits, weight)
    return QState.uniform(num_qubits, indices)


def w_state(num_qubits: int) -> QState:
    """The W state ``|D^1_n>``."""
    return dicke_state(num_qubits, 1)


def ghz_state(num_qubits: int) -> QState:
    """The GHZ state ``(|0...0> + |1...1>)/sqrt(2)``."""
    if num_qubits < 2:
        raise StateError("GHZ needs at least 2 qubits")
    return QState.uniform(num_qubits, [0, (1 << num_qubits) - 1])


def uniform_state(num_qubits: int, indices: Iterable[int]) -> QState:
    """Uniform superposition over an arbitrary index set."""
    return QState.uniform(num_qubits, indices)


def product_state(bits: str) -> QState:
    """Computational basis product state from a bitstring, e.g. ``'0110'``."""
    if not bits or any(c not in "01" for c in bits):
        raise StateError(f"not a bitstring: {bits!r}")
    return QState.basis(len(bits), int(bits, 2))

"""Exception hierarchy for the ``repro`` library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StateError",
    "NormalizationError",
    "CircuitError",
    "QasmError",
    "SynthesisError",
    "SearchBudgetExceeded",
    "MemoryCompatibilityError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class StateError(ReproError):
    """Invalid quantum state construction or manipulation."""


class NormalizationError(StateError):
    """A state vector does not have unit norm."""


class CircuitError(ReproError):
    """Invalid circuit or gate construction."""


class QasmError(CircuitError):
    """Malformed OpenQASM input or unsupported construct."""


class SynthesisError(ReproError):
    """A synthesis algorithm could not produce a circuit."""


class SearchBudgetExceeded(SynthesisError):
    """The exact search exhausted its node or time budget.

    Carries the best lower bound proven so far (``lower_bound``), the
    search counters at the moment of exhaustion (``stats``, when the
    engine provides them — a time-limited run may have expanded far fewer
    nodes than its node budget), and, when a feasible but unproven
    solution was found, that incumbent circuit.
    """

    def __init__(self, message: str, lower_bound: int = 0, incumbent=None,
                 stats=None):
        super().__init__(message)
        self.lower_bound = lower_bound
        self.incumbent = incumbent
        self.stats = stats


class MemoryCompatibilityError(SynthesisError):
    """A ``SearchMemory`` was attached under an incompatible regime.

    Persistent canon keys and transposition entries are only valid for the
    exact canonicalization level/caps, move-set options, and heuristic they
    were recorded under; reusing them elsewhere would be unsound, so the
    attach is rejected instead.
    """


class VerificationError(ReproError):
    """A synthesized circuit does not prepare its target state."""

"""repro — Quantum State Preparation Using an Exact CNOT Synthesis
Formulation (DATE 2024 reproduction).

Public API tour
---------------
States (:mod:`repro.states`)
    ``QState`` (sparse real-amplitude states), ``dicke_state``, ``w_state``,
    ``ghz_state``, random benchmark generators, entanglement analysis.
Circuits (:mod:`repro.circuits`)
    ``QCircuit``, the gate set with Table-I CNOT costs, Gray-code
    multiplexor decomposition, OpenQASM 2 I/O.
Simulation (:mod:`repro.sim`)
    Statevector simulator and verification helpers.
Exact synthesis (:mod:`repro.core`)
    ``ExactSynthesizer`` — the paper's shortest-path formulation (A* with
    canonicalization), plus the anytime beam variant.
Workflow (:mod:`repro.qsp`)
    ``prepare_state`` / ``prepare`` — the scalable Fig.-5 workflow
    (sparse/dense reduction + exact core).
Baselines (:mod:`repro.baselines`)
    m-flow, n-flow, one-ancilla hybrid, manual Dicke/W designs.
Extensions (:mod:`repro.opt`, :mod:`repro.arch`, :mod:`repro.sim.noise`)
    Peephole + commutation optimization, device placement/routing
    (``prepare_on_device``), depolarizing-noise fidelity estimation,
    complex-amplitude phase oracle.

Quickstart
----------
>>> from repro import dicke_state, synthesize_exact
>>> result = synthesize_exact(dicke_state(4, 2))
>>> result.cnot_cost
6
"""

from repro.arch import CouplingMap, prepare_on_device
from repro.circuits import QCircuit, estimate_resources, from_qasm, to_qasm
from repro.core import (
    ExactConfig,
    ExactSynthesizer,
    SearchConfig,
    SearchResult,
    synthesize_exact,
)
from repro.qsp import QSPConfig, QSPResult, compare_methods, prepare, prepare_state
from repro.sim import (
    NoiseModel,
    assert_prepares,
    prepares_state,
    simulate_circuit,
    sparse_prepares,
)
from repro.states import (
    QState,
    dicke_state,
    ghz_state,
    random_dense_state,
    random_sparse_state,
    w_state,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "QState",
    "QCircuit",
    "dicke_state",
    "w_state",
    "ghz_state",
    "random_dense_state",
    "random_sparse_state",
    "ExactSynthesizer",
    "ExactConfig",
    "SearchConfig",
    "SearchResult",
    "synthesize_exact",
    "QSPConfig",
    "QSPResult",
    "prepare",
    "prepare_state",
    "compare_methods",
    "simulate_circuit",
    "prepares_state",
    "assert_prepares",
    "to_qasm",
    "from_qasm",
    "estimate_resources",
    "CouplingMap",
    "prepare_on_device",
    "NoiseModel",
    "sparse_prepares",
]

"""Device coupling topologies.

The paper motivates CNOT minimization with the *coupling constraints* of
NISQ devices (Sec. I) and its permutation equivalence explicitly assumes a
symmetric coupling graph (Sec. V-B).  This module provides the device-side
half of that story: a :class:`CouplingMap` describing which physical qubit
pairs support a native CNOT, together with the standard topology families
used by real machines.

A :class:`CouplingMap` is an undirected graph on physical qubits
``0 .. size - 1`` (CNOT direction can always be reversed with free local
gates in the paper's cost model, so undirected edges suffice).

Topology families
-----------------
``line``       linear nearest-neighbour chain (ion traps, early IBM chips)
``ring``       chain with a wrap-around edge
``grid``       2D square lattice (Google Sycamore style)
``star``       one hub connected to all leaves (some NV-center devices)
``full``       all-to-all (trapped ions with global buses; also the
               implicit topology of the paper's cost model)
``heavy_hex``  IBM's heavy-hexagon lattice
``tree``       balanced binary tree (photonic switch networks)
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

import networkx as nx

from repro.exceptions import CircuitError

__all__ = ["CouplingMap"]


class CouplingMap:
    """An undirected coupling graph over physical qubits ``0 .. size - 1``.

    Wraps :class:`networkx.Graph` with quantum-compilation conveniences:
    all-pairs distances (cached), adjacency tests, shortest paths, and the
    named constructors used throughout the test suite and benchmarks.

    Examples
    --------
    >>> cmap = CouplingMap.line(4)
    >>> cmap.distance(0, 3)
    3
    >>> cmap.is_adjacent(1, 2)
    True
    """

    __slots__ = ("_graph", "_dist", "_name")

    def __init__(self, edges: Iterable[tuple[int, int]], size: int | None = None,
                 name: str = "custom"):
        graph = nx.Graph()
        edge_list = [(int(a), int(b)) for a, b in edges]
        for a, b in edge_list:
            if a == b:
                raise CircuitError(f"self-loop on physical qubit {a}")
            if a < 0 or b < 0:
                raise CircuitError(f"negative physical qubit in edge ({a},{b})")
        nodes = {q for e in edge_list for q in e}
        if size is None:
            size = max(nodes) + 1 if nodes else 0
        if nodes and max(nodes) >= size:
            raise CircuitError(
                f"edge endpoint {max(nodes)} outside register of size {size}")
        graph.add_nodes_from(range(size))
        graph.add_edges_from(edge_list)
        self._graph = graph
        self._dist: dict[int, dict[int, int]] | None = None
        self._name = name

    # ------------------------------------------------------------------
    # Named constructors
    # ------------------------------------------------------------------

    @classmethod
    def line(cls, size: int) -> "CouplingMap":
        """Linear chain ``0 - 1 - ... - size-1``."""
        _require_size(size)
        return cls(((i, i + 1) for i in range(size - 1)), size, name="line")

    @classmethod
    def ring(cls, size: int) -> "CouplingMap":
        """Cycle; needs ``size >= 3`` for a proper ring."""
        _require_size(size)
        if size < 3:
            return cls.line(size)
        edges = [(i, (i + 1) % size) for i in range(size)]
        return cls(edges, size, name="ring")

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        """2D square lattice, row-major physical numbering."""
        if rows < 1 or cols < 1:
            raise CircuitError(f"bad grid shape {rows}x{cols}")
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(edges, rows * cols, name=f"grid{rows}x{cols}")

    @classmethod
    def star(cls, size: int) -> "CouplingMap":
        """Hub qubit 0 connected to every other qubit."""
        _require_size(size)
        return cls(((0, i) for i in range(1, size)), size, name="star")

    @classmethod
    def full(cls, size: int) -> "CouplingMap":
        """All-to-all connectivity (the paper's implicit cost model)."""
        _require_size(size)
        return cls(itertools.combinations(range(size), 2), size, name="full")

    @classmethod
    def tree(cls, size: int) -> "CouplingMap":
        """Balanced binary tree: parent of node ``i > 0`` is ``(i-1)//2``."""
        _require_size(size)
        return cls(((i, (i - 1) // 2) for i in range(1, size)), size,
                   name="tree")

    @classmethod
    def heavy_hex(cls, distance: int = 3) -> "CouplingMap":
        """IBM heavy-hexagon lattice of code distance ``distance`` (odd).

        Built as the subdivision of a hexagonal lattice: every edge of the
        hex lattice carries an extra qubit, so all nodes have degree <= 3.
        """
        if distance < 3 or distance % 2 == 0:
            raise CircuitError("heavy-hex distance must be an odd int >= 3")
        hexagonal = nx.hexagonal_lattice_graph(distance // 2 + 1,
                                               distance // 2 + 1)
        heavy = _subdivide(hexagonal)
        relabeled = nx.convert_node_labels_to_integers(heavy)
        return cls(relabeled.edges(), relabeled.number_of_nodes(),
                   name=f"heavy_hex_d{distance}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def size(self) -> int:
        """Number of physical qubits."""
        return self._graph.number_of_nodes()

    @property
    def graph(self) -> nx.Graph:
        """The underlying (shared, do-not-mutate) networkx graph."""
        return self._graph

    def edges(self) -> list[tuple[int, int]]:
        """Sorted list of coupling edges, each as ``(min, max)``."""
        return sorted((min(a, b), max(a, b)) for a, b in self._graph.edges())

    def degree(self, qubit: int) -> int:
        self._check(qubit)
        return self._graph.degree[qubit]

    def neighbors(self, qubit: int) -> list[int]:
        self._check(qubit)
        return sorted(self._graph.neighbors(qubit))

    def is_adjacent(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        return self._graph.has_edge(a, b)

    def is_connected(self) -> bool:
        if self.size == 0:
            return True
        return nx.is_connected(self._graph)

    def distance(self, a: int, b: int) -> int:
        """Shortest-path hop count between physical qubits ``a`` and ``b``.

        Raises :class:`CircuitError` when the two sit in different
        components.
        """
        self._check(a)
        self._check(b)
        dist = self._distances().get(a, {}).get(b)
        if dist is None:
            raise CircuitError(f"physical qubits {a} and {b} are disconnected")
        return dist

    def shortest_path(self, a: int, b: int) -> list[int]:
        """One shortest physical path from ``a`` to ``b`` (inclusive)."""
        self._check(a)
        self._check(b)
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath as exc:
            raise CircuitError(
                f"physical qubits {a} and {b} are disconnected") from exc

    def diameter(self) -> int:
        """Largest pairwise distance (requires a connected map)."""
        if not self.is_connected():
            raise CircuitError("diameter undefined on a disconnected map")
        return nx.diameter(self._graph)

    def is_full(self) -> bool:
        """True when every pair is directly coupled."""
        n = self.size
        return self._graph.number_of_edges() == n * (n - 1) // 2

    def subgraph_distance_sum(self, nodes: Iterable[int]) -> int:
        """Sum of pairwise distances among ``nodes`` (placement quality)."""
        nodes = list(nodes)
        return sum(self.distance(a, b)
                   for a, b in itertools.combinations(nodes, 2))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _distances(self) -> dict[int, dict[int, int]]:
        if self._dist is None:
            self._dist = {
                src: dict(lengths) for src, lengths in
                nx.all_pairs_shortest_path_length(self._graph)
            }
        return self._dist

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self.size:
            raise CircuitError(
                f"physical qubit {qubit} outside register of size {self.size}")

    def __repr__(self) -> str:
        return (f"CouplingMap({self._name!r}, size={self.size}, "
                f"edges={self._graph.number_of_edges()})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CouplingMap):
            return NotImplemented
        return self.size == other.size and self.edges() == other.edges()


def _subdivide(graph: nx.Graph) -> nx.Graph:
    """Insert one auxiliary node on every edge (heavy-hex construction)."""
    out = nx.Graph()
    out.add_nodes_from(graph.nodes())
    for a, b in graph.edges():
        mid = ("mid", a, b)
        out.add_edge(a, mid)
        out.add_edge(mid, b)
    return out


def _require_size(size: int) -> None:
    if size < 1:
        raise CircuitError(f"topology needs at least one qubit, got {size}")

"""Device coupling topologies.

The paper motivates CNOT minimization with the *coupling constraints* of
NISQ devices (Sec. I) and its permutation equivalence explicitly assumes a
symmetric coupling graph (Sec. V-B).  This module provides the device-side
half of that story: a :class:`CouplingMap` describing which physical qubit
pairs support a native CNOT, together with the standard topology families
used by real machines.

A :class:`CouplingMap` is an undirected graph on physical qubits
``0 .. size - 1`` (CNOT direction can always be reversed with free local
gates in the paper's cost model, so undirected edges suffice).

Topology families
-----------------
``line``       linear nearest-neighbour chain (ion traps, early IBM chips)
``ring``       chain with a wrap-around edge
``grid``       2D square lattice (Google Sycamore style)
``star``       one hub connected to all leaves (some NV-center devices)
``full``       all-to-all (trapped ions with global buses; also the
               implicit topology of the paper's cost model)
``heavy_hex``  IBM's heavy-hexagon lattice
``tree``       balanced binary tree (photonic switch networks)
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

import networkx as nx

from repro.exceptions import CircuitError

__all__ = ["CouplingMap", "native_topology", "named_topology",
           "TOPOLOGY_FAMILIES"]


class CouplingMap:
    """An undirected coupling graph over physical qubits ``0 .. size - 1``.

    Wraps :class:`networkx.Graph` with quantum-compilation conveniences:
    all-pairs distances (cached), adjacency tests, shortest paths, and the
    named constructors used throughout the test suite and benchmarks.

    Examples
    --------
    >>> cmap = CouplingMap.line(4)
    >>> cmap.distance(0, 3)
    3
    >>> cmap.is_adjacent(1, 2)
    True
    """

    __slots__ = ("_graph", "_dist", "_name", "_hash", "_canonical",
                 "_neighbor_masks", "_automorphisms")

    def __init__(self, edges: Iterable[tuple[int, int]], size: int | None = None,
                 name: str = "custom"):
        graph = nx.Graph()
        edge_list = [(int(a), int(b)) for a, b in edges]
        for a, b in edge_list:
            if a == b:
                raise CircuitError(f"self-loop on physical qubit {a}")
            if a < 0 or b < 0:
                raise CircuitError(f"negative physical qubit in edge ({a},{b})")
        nodes = {q for e in edge_list for q in e}
        if size is None:
            size = max(nodes) + 1 if nodes else 0
        if nodes and max(nodes) >= size:
            raise CircuitError(
                f"edge endpoint {max(nodes)} outside register of size {size}")
        graph.add_nodes_from(range(size))
        graph.add_edges_from(edge_list)
        self._graph = graph
        self._dist: dict[int, dict[int, int]] | None = None
        self._name = name
        self._hash: int | None = None
        self._canonical: tuple | None = None
        self._neighbor_masks: tuple[int, ...] | None = None
        self._automorphisms: dict[int, list[list[int]]] = {}

    # ------------------------------------------------------------------
    # Named constructors
    # ------------------------------------------------------------------

    @classmethod
    def line(cls, size: int) -> "CouplingMap":
        """Linear chain ``0 - 1 - ... - size-1``."""
        _require_size(size)
        return cls(((i, i + 1) for i in range(size - 1)), size, name="line")

    @classmethod
    def ring(cls, size: int) -> "CouplingMap":
        """Cycle; needs ``size >= 3`` for a proper ring."""
        _require_size(size)
        if size < 3:
            return cls.line(size)
        edges = [(i, (i + 1) % size) for i in range(size)]
        return cls(edges, size, name="ring")

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        """2D square lattice, row-major physical numbering."""
        if rows < 1 or cols < 1:
            raise CircuitError(f"bad grid shape {rows}x{cols}")
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(edges, rows * cols, name=f"grid{rows}x{cols}")

    @classmethod
    def star(cls, size: int) -> "CouplingMap":
        """Hub qubit 0 connected to every other qubit."""
        _require_size(size)
        return cls(((0, i) for i in range(1, size)), size, name="star")

    @classmethod
    def full(cls, size: int) -> "CouplingMap":
        """All-to-all connectivity (the paper's implicit cost model)."""
        _require_size(size)
        return cls(itertools.combinations(range(size), 2), size, name="full")

    @classmethod
    def tree(cls, size: int) -> "CouplingMap":
        """Balanced binary tree: parent of node ``i > 0`` is ``(i-1)//2``."""
        _require_size(size)
        return cls(((i, (i - 1) // 2) for i in range(1, size)), size,
                   name="tree")

    @classmethod
    def heavy_hex(cls, distance: int = 3) -> "CouplingMap":
        """IBM heavy-hexagon lattice of code distance ``distance`` (odd).

        Built as the subdivision of a hexagonal lattice: every edge of the
        hex lattice carries an extra qubit, so all nodes have degree <= 3.
        """
        if distance < 3 or distance % 2 == 0:
            raise CircuitError("heavy-hex distance must be an odd int >= 3")
        hexagonal = nx.hexagonal_lattice_graph(distance // 2 + 1,
                                               distance // 2 + 1)
        heavy = _subdivide(hexagonal)
        relabeled = nx.convert_node_labels_to_integers(heavy)
        return cls(relabeled.edges(), relabeled.number_of_nodes(),
                   name=f"heavy_hex_d{distance}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def size(self) -> int:
        """Number of physical qubits."""
        return self._graph.number_of_nodes()

    @property
    def graph(self) -> nx.Graph:
        """The underlying (shared, do-not-mutate) networkx graph."""
        return self._graph

    def edges(self) -> list[tuple[int, int]]:
        """Sorted list of coupling edges, each as ``(min, max)``."""
        return sorted((min(a, b), max(a, b)) for a, b in self._graph.edges())

    def degree(self, qubit: int) -> int:
        self._check(qubit)
        return self._graph.degree[qubit]

    def neighbors(self, qubit: int) -> list[int]:
        self._check(qubit)
        return sorted(self._graph.neighbors(qubit))

    def is_adjacent(self, a: int, b: int) -> bool:
        self._check(a)
        self._check(b)
        return self._graph.has_edge(a, b)

    def is_connected(self) -> bool:
        if self.size == 0:
            return True
        return nx.is_connected(self._graph)

    def distance(self, a: int, b: int) -> int:
        """Shortest-path hop count between physical qubits ``a`` and ``b``.

        Raises :class:`CircuitError` when the two sit in different
        components.
        """
        self._check(a)
        self._check(b)
        dist = self._distances().get(a, {}).get(b)
        if dist is None:
            raise CircuitError(f"physical qubits {a} and {b} are disconnected")
        return dist

    def shortest_path(self, a: int, b: int) -> list[int]:
        """One shortest physical path from ``a`` to ``b`` (inclusive)."""
        self._check(a)
        self._check(b)
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath as exc:
            raise CircuitError(
                f"physical qubits {a} and {b} are disconnected") from exc

    def diameter(self) -> int:
        """Largest pairwise distance (requires a connected map)."""
        if not self.is_connected():
            raise CircuitError("diameter undefined on a disconnected map")
        return nx.diameter(self._graph)

    def is_full(self) -> bool:
        """True when every pair is directly coupled."""
        n = self.size
        return self._graph.number_of_edges() == n * (n - 1) // 2

    def subgraph_distance_sum(self, nodes: Iterable[int]) -> int:
        """Sum of pairwise distances among ``nodes`` (placement quality)."""
        nodes = list(nodes)
        return sum(self.distance(a, b)
                   for a, b in itertools.combinations(nodes, 2))

    # ------------------------------------------------------------------
    # Canonical identity (fingerprints, snapshots, hashing)
    # ------------------------------------------------------------------

    def canonical_key(self) -> tuple:
        """Stable canonical identity: ``(size, sorted edge tuple)``.

        Two maps compare equal exactly when their canonical keys match
        (same physical labeling — no graph-isomorphism folding, because
        physical qubit numbers are load-bearing for placement and search).
        This is the identity the regime fingerprint and the snapshot
        formats key on.
        """
        if self._canonical is None:
            self._canonical = (self.size, tuple(self.edges()))
        return self._canonical

    def to_canonical_dict(self) -> dict:
        """JSON-safe canonical serialization (sorted edge list + size)."""
        size, edges = self.canonical_key()
        return {"size": size, "edges": [[a, b] for a, b in edges]}

    @classmethod
    def from_canonical_dict(cls, data: dict, name: str = "custom"
                            ) -> "CouplingMap":
        """Inverse of :meth:`to_canonical_dict`."""
        try:
            edges = [(int(a), int(b)) for a, b in data["edges"]]
            size = int(data["size"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CircuitError(
                f"malformed coupling-map serialization {data!r}") from exc
        return cls(edges, size, name=name)

    def neighbor_masks(self) -> tuple[int, ...]:
        """Per-qubit adjacency bitmasks: bit ``t`` of entry ``c`` is set
        when ``(c, t)`` is a coupled pair (the move-enumeration fast test)."""
        if self._neighbor_masks is None:
            masks = [0] * self.size
            for a, b in self._graph.edges():
                masks[a] |= 1 << b
                masks[b] |= 1 << a
            self._neighbor_masks = tuple(masks)
        return self._neighbor_masks

    def automorphism_orderings(self, cap: int) -> list[list[int]]:
        """Up to ``cap`` automorphisms of the coupling graph, as qubit
        orderings (position ``i`` holds the image qubit), identity first.

        On a restricted topology, relabeling qubits is free exactly for
        graph automorphisms (conjugating a native circuit by one keeps
        every CNOT on a coupled pair), so these are the only permutations
        canonicalization may still fold together.  Enumeration is
        deterministic; truncation at ``cap`` can only split equivalence
        classes (weaker pruning, never unsound).  The full group is the
        whole symmetric group only for the all-to-all map, which callers
        short-circuit before ever calling this.
        """
        cap = max(1, int(cap))
        cached = self._automorphisms.get(cap)
        if cached is not None:
            return cached
        from networkx.algorithms import isomorphism

        n = self.size
        matcher = isomorphism.GraphMatcher(self._graph, self._graph)
        orderings: list[list[int]] = []
        for mapping in matcher.isomorphisms_iter():
            orderings.append([mapping[q] for q in range(n)])
            if len(orderings) >= cap:
                break
        identity = list(range(n))
        if identity not in orderings:
            orderings.append(identity)
        orderings.sort()  # deterministic order, identity first
        self._automorphisms[cap] = orderings
        return orderings

    def induced(self, nodes: Iterable[int]
                ) -> tuple["CouplingMap", list[int]]:
        """Induced sub-map on ``nodes``, relabeled to ``0 .. len - 1``.

        Returns ``(submap, mapping)`` with ``mapping[new] = old`` sorted
        ascending, so a circuit synthesized on the sub-map embeds onto the
        device by sending wire ``i`` to physical qubit ``mapping[i]``.
        """
        mapping = sorted(set(int(q) for q in nodes))
        for q in mapping:
            self._check(q)
        index_of = {old: new for new, old in enumerate(mapping)}
        edges = [(index_of[a], index_of[b])
                 for a, b in self._graph.edges()
                 if a in index_of and b in index_of]
        sub = CouplingMap(edges, len(mapping),
                          name=f"{self._name}[{len(mapping)}]")
        return sub, mapping

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _distances(self) -> dict[int, dict[int, int]]:
        if self._dist is None:
            self._dist = {
                src: dict(lengths) for src, lengths in
                nx.all_pairs_shortest_path_length(self._graph)
            }
        return self._dist

    def _check(self, qubit: int) -> None:
        if not 0 <= qubit < self.size:
            raise CircuitError(
                f"physical qubit {qubit} outside register of size {self.size}")

    def __repr__(self) -> str:
        return (f"CouplingMap({self._name!r}, size={self.size}, "
                f"edges={self._graph.number_of_edges()})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CouplingMap):
            return NotImplemented
        return self.size == other.size and self.edges() == other.edges()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.canonical_key())
        return self._hash


def native_topology(topology: "CouplingMap | None") -> "CouplingMap | None":
    """Normalize a topology for the synthesis stack.

    ``None`` and all-to-all maps mean "the paper's unrestricted model" and
    normalize to ``None`` — the identity fast path that keeps every search
    bit-identical to seed behavior.  Anything else must be connected (the
    restricted move set is only complete on a connected graph: SWAP chains
    of native CNOTs can simulate any unrestricted move sequence).
    """
    if topology is None or topology.is_full():
        return None
    if not topology.is_connected():
        raise CircuitError(
            "topology-native synthesis needs a connected coupling map "
            f"(got {topology!r})")
    return topology


#: Topology families addressable by name (CLI flags, benchmarks, requests).
TOPOLOGY_FAMILIES = ("line", "ring", "grid", "star", "tree", "full",
                     "heavy_hex")


def named_topology(name: str, size: int) -> CouplingMap:
    """A coupling map of exactly ``size`` qubits from a named family.

    Families whose natural construction does not hit ``size`` exactly are
    cut down to a connected ``size``-qubit fragment: ``grid`` builds the
    smallest 2-row lattice that fits and drops the surplus corner,
    ``heavy_hex`` BFS-grows a fragment of the smallest heavy-hex lattice
    that fits.  This is what lets every device family serve any register
    size — the whole point of topology-native synthesis as a servable
    workload.
    """
    if name == "line":
        return CouplingMap.line(size)
    if name == "ring":
        return CouplingMap.ring(size)
    if name == "star":
        return CouplingMap.star(size)
    if name == "tree":
        return CouplingMap.tree(size)
    if name == "full":
        return CouplingMap.full(size)
    if name == "grid":
        _require_size(size)
        cols = max(2, (size + 1) // 2)
        base = CouplingMap.grid(2, cols) if size > 1 else CouplingMap.line(1)
        if base.size == size:
            return base
        sub, _ = base.induced(range(size))
        return CouplingMap(sub.edges(), size, name=f"grid2x{cols}[{size}]")
    if name == "heavy_hex":
        _require_size(size)
        if size <= 2:
            return CouplingMap.line(size)
        distance = 3
        base = CouplingMap.heavy_hex(distance)
        while base.size < size:
            distance += 2
            base = CouplingMap.heavy_hex(distance)
        fragment: list[int] = []
        for node in nx.bfs_tree(base.graph, 0):
            fragment.append(node)
            if len(fragment) == size:
                break
        sub, _ = base.induced(fragment)
        return CouplingMap(sub.edges(), size,
                           name=f"heavy_hex_d{distance}[{size}]")
    raise CircuitError(
        f"unknown topology family {name!r}; choose from {TOPOLOGY_FAMILIES}")


def _subdivide(graph: nx.Graph) -> nx.Graph:
    """Insert one auxiliary node on every edge (heavy-hex construction)."""
    out = nx.Graph()
    out.add_nodes_from(graph.nodes())
    for a, b in graph.edges():
        mid = ("mid", a, b)
        out.add_edge(a, mid)
        out.add_edge(mid, b)
    return out


def _require_size(size: int) -> None:
    if size < 1:
        raise CircuitError(f"topology needs at least one qubit, got {size}")

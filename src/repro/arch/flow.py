"""End-to-end device-aware state preparation.

Chains the paper's synthesis workflow with placement and routing:

1. synthesize a minimum-CNOT logical circuit (:func:`repro.qsp.prepare_state`);
2. decompose to ``{X, Ry, CX}``;
3. place logical qubits on the device (:mod:`repro.arch.placement`);
4. route with SWAP insertion (:mod:`repro.arch.router`);
5. verify that the physical circuit prepares the target on the final
   layout's wires (small registers only).

The routed CNOT count quantifies the topology tax on top of the paper's
all-to-all numbers, which is the deployment question the paper's
introduction raises but leaves to the compiler.

Since the search stack became topology-native, synthesize-then-route is
no longer the only way onto a device: ``mode="native"`` selects a
connected physical sub-register, searches *directly on the restricted
move set* (every emitted CNOT already sits on a coupled pair — zero
SWAPs by construction), and embeds the result; ``mode="race"`` runs both
pipelines and returns the verified cheaper physical circuit.  Native
search can find circuits the route pipeline structurally cannot (routing
can only append SWAPs to one fixed logical circuit), at the price of a
harder search problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.placement import (
    annealed_placement,
    greedy_placement,
    trivial_placement,
)
from repro.arch.router import RoutedCircuit, route_circuit
from repro.arch.topologies import CouplingMap
from repro.circuits.circuit import QCircuit
from repro.constants import SIM_ATOL
from repro.exceptions import (
    CircuitError,
    SearchBudgetExceeded,
    SynthesisError,
    VerificationError,
)
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.sim.statevector import simulate_circuit
from repro.states.qstate import QState
from repro.utils.bits import bit_mask, bit_of

__all__ = ["DeviceResult", "prepare_on_device", "routed_prepares",
           "expected_physical_vector"]

_VERIFY_MAX_QUBITS = 12

_PLACEMENT_STRATEGIES = ("trivial", "greedy", "annealed")


_DEVICE_MODES = ("route", "native", "race")


@dataclass
class DeviceResult:
    """Outcome of device-aware preparation.

    ``logical_cnots`` is the paper-model cost before routing;
    ``physical_cnots`` after.  ``verified`` is ``None`` when the register
    was too large to simulate.  ``mode`` records which pipeline produced
    the physical circuit (``'route'``, or ``'native'`` — a ``race`` result
    reports its winner).
    """

    routed: RoutedCircuit
    logical_circuit: QCircuit
    logical_cnots: int
    physical_cnots: int
    placement_strategy: str
    verified: bool | None = None
    mode: str = "route"

    @property
    def overhead_cnots(self) -> int:
        """Topology tax: CNOTs added on top of the logical circuit."""
        return self.physical_cnots - self.logical_cnots


def _native_region(state: QState, cmap: CouplingMap) -> list[int]:
    """Pick a connected ``n``-qubit physical sub-register for native search.

    BFS-grows a candidate region from every physical qubit and keeps the
    one with the smallest pairwise-distance sum — the same compactness
    objective placement optimizes, evaluated before any circuit exists
    (native search has no logical circuit to read interactions from).
    """
    import networkx as nx

    n = state.num_qubits
    if cmap.size == n:
        return list(range(n))
    best: tuple[int, list[int]] | None = None
    for start in range(cmap.size):
        region = [start]
        seen = {start}
        for node in nx.bfs_tree(cmap.graph, start):
            if node in seen:
                continue
            region.append(node)
            seen.add(node)
            if len(region) == n:
                break
        if len(region) < n:
            continue  # disconnected component smaller than the register
        score = cmap.subgraph_distance_sum(region)
        if best is None or (score, sorted(region)) < best:
            best = (score, sorted(region))
    if best is None:
        raise CircuitError(
            f"no connected {n}-qubit region in {cmap!r}")
    return best[1]


def _prepare_native(state: QState, cmap: CouplingMap,
                    config: QSPConfig | None,
                    memory=None) -> DeviceResult:
    """Topology-native pipeline: induced sub-map -> native search -> embed."""
    region = _native_region(state, cmap)
    submap, mapping = cmap.induced(region)
    result = prepare_state(state, config, memory=memory, topology=submap)
    logical = result.circuit.decompose()
    physical = logical.embedded(cmap.size, mapping)
    routed = RoutedCircuit(circuit=physical, initial_layout=list(mapping),
                           final_layout=list(mapping), swap_count=0,
                           coupling=cmap)
    verified: bool | None = None
    if cmap.size <= _VERIFY_MAX_QUBITS:
        verified = routed_prepares(routed, state)
        if not verified:
            raise VerificationError(
                "native circuit failed to prepare the target state")
    elif state.num_qubits <= (config or QSPConfig()).verify_max_qubits:
        # the workflow already simulated the logical circuit against the
        # target (it raises otherwise), and the embedding is a pure wire
        # relabeling onto the chosen region — so the physical circuit is
        # verified even when the full device register is too wide to
        # simulate directly
        verified = True
    return DeviceResult(routed=routed, logical_circuit=logical,
                        logical_cnots=logical.cnot_cost(),
                        physical_cnots=physical.cnot_cost(),
                        placement_strategy="native", verified=verified,
                        mode="native")


def prepare_on_device(state: QState, cmap: CouplingMap,
                      config: QSPConfig | None = None,
                      placement: str = "greedy",
                      seed: int = 0, mode: str = "route",
                      memory=None) -> DeviceResult:
    """Prepare ``state`` on ``cmap`` and verify the physical circuit.

    ``placement`` is one of ``'trivial'``, ``'greedy'``, ``'annealed'``
    (route pipeline only).  ``mode`` selects the pipeline: ``'route'``
    (synthesize all-to-all, place, SWAP-route — the seed behavior),
    ``'native'`` (search directly on the restricted move set; the result
    needs no SWAPs by construction), or ``'race'`` (run both, return the
    verified cheaper physical circuit; ties and native failures fall back
    to the routed result).  ``memory`` threads a
    :class:`~repro.core.memory.SearchMemory` into the native search.
    """
    if mode not in _DEVICE_MODES:
        raise CircuitError(
            f"unknown mode {mode!r}; choose from {_DEVICE_MODES}")
    if placement not in _PLACEMENT_STRATEGIES:
        raise CircuitError(
            f"unknown placement {placement!r}; "
            f"choose from {_PLACEMENT_STRATEGIES}")
    if state.num_qubits > cmap.size:
        raise CircuitError(
            f"state needs {state.num_qubits} qubits, device has {cmap.size}")
    if not cmap.is_connected():
        raise CircuitError("cannot route on a disconnected coupling map")

    if mode == "native":
        return _prepare_native(state, cmap, config, memory=memory)
    if mode == "race":
        routed_result = prepare_on_device(state, cmap, config=config,
                                          placement=placement, seed=seed)
        try:
            native_result = _prepare_native(state, cmap, config,
                                            memory=memory)
        except (SynthesisError, SearchBudgetExceeded):
            return routed_result  # native search gave up; routed still wins
        if native_result.physical_cnots < routed_result.physical_cnots:
            return native_result
        return routed_result

    logical = prepare_state(state, config).circuit.decompose()
    if placement == "trivial":
        layout = trivial_placement(logical.num_qubits, cmap)
    elif placement == "greedy":
        layout = greedy_placement(logical, cmap)
    else:
        layout = annealed_placement(logical, cmap, seed=seed)

    routed = route_circuit(logical, cmap, layout)
    verified: bool | None = None
    if cmap.size <= _VERIFY_MAX_QUBITS:
        verified = routed_prepares(routed, state)
        if not verified:
            raise VerificationError(
                "routed circuit failed to prepare the target state")
    return DeviceResult(routed=routed, logical_circuit=logical,
                        logical_cnots=logical.cnot_cost(),
                        physical_cnots=routed.cnot_cost,
                        placement_strategy=placement, verified=verified)


def expected_physical_vector(state: QState, final_layout: list[int],
                             num_physical: int) -> np.ndarray:
    """Dense physical statevector with logical qubit ``i`` living on
    physical wire ``final_layout[i]`` and every other wire in ``|0>``."""
    if len(final_layout) != state.num_qubits:
        raise CircuitError("layout width does not match the state")
    vec = np.zeros(1 << num_physical, dtype=np.float64)
    n = state.num_qubits
    for index, amp in state.items():
        phys_index = 0
        for logical in range(n):
            if bit_of(index, logical, n):
                phys_index |= bit_mask(final_layout[logical], num_physical)
        vec[phys_index] = amp
    return vec


def routed_prepares(routed: RoutedCircuit, state: QState,
                    atol: float = SIM_ATOL) -> bool:
    """Check the routed circuit prepares ``state`` up to the final layout
    (and a global sign, as everywhere in the real-amplitude setting)."""
    vec = simulate_circuit(routed.circuit)
    expected = expected_physical_vector(state, routed.final_layout,
                                        routed.circuit.num_qubits)
    vec = np.real_if_close(vec)
    return bool(np.allclose(vec, expected, atol=atol) or
                np.allclose(vec, -expected, atol=atol))

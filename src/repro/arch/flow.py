"""End-to-end device-aware state preparation.

Chains the paper's synthesis workflow with placement and routing:

1. synthesize a minimum-CNOT logical circuit (:func:`repro.qsp.prepare_state`);
2. decompose to ``{X, Ry, CX}``;
3. place logical qubits on the device (:mod:`repro.arch.placement`);
4. route with SWAP insertion (:mod:`repro.arch.router`);
5. verify that the physical circuit prepares the target on the final
   layout's wires (small registers only).

The routed CNOT count quantifies the topology tax on top of the paper's
all-to-all numbers, which is the deployment question the paper's
introduction raises but leaves to the compiler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.placement import (
    annealed_placement,
    greedy_placement,
    trivial_placement,
)
from repro.arch.router import RoutedCircuit, route_circuit
from repro.arch.topologies import CouplingMap
from repro.circuits.circuit import QCircuit
from repro.constants import SIM_ATOL
from repro.exceptions import CircuitError, VerificationError
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.sim.statevector import simulate_circuit
from repro.states.qstate import QState
from repro.utils.bits import bit_mask, bit_of

__all__ = ["DeviceResult", "prepare_on_device", "routed_prepares",
           "expected_physical_vector"]

_VERIFY_MAX_QUBITS = 12

_PLACEMENT_STRATEGIES = ("trivial", "greedy", "annealed")


@dataclass
class DeviceResult:
    """Outcome of device-aware preparation.

    ``logical_cnots`` is the paper-model cost before routing;
    ``physical_cnots`` after.  ``verified`` is ``None`` when the register
    was too large to simulate.
    """

    routed: RoutedCircuit
    logical_circuit: QCircuit
    logical_cnots: int
    physical_cnots: int
    placement_strategy: str
    verified: bool | None = None

    @property
    def overhead_cnots(self) -> int:
        """Topology tax: CNOTs added by routing."""
        return self.physical_cnots - self.logical_cnots


def prepare_on_device(state: QState, cmap: CouplingMap,
                      config: QSPConfig | None = None,
                      placement: str = "greedy",
                      seed: int = 0) -> DeviceResult:
    """Synthesize, place, route, and verify ``state`` on ``cmap``.

    ``placement`` is one of ``'trivial'``, ``'greedy'``, ``'annealed'``.
    """
    if placement not in _PLACEMENT_STRATEGIES:
        raise CircuitError(
            f"unknown placement {placement!r}; "
            f"choose from {_PLACEMENT_STRATEGIES}")
    if state.num_qubits > cmap.size:
        raise CircuitError(
            f"state needs {state.num_qubits} qubits, device has {cmap.size}")
    if not cmap.is_connected():
        raise CircuitError("cannot route on a disconnected coupling map")

    logical = prepare_state(state, config).circuit.decompose()
    if placement == "trivial":
        layout = trivial_placement(logical.num_qubits, cmap)
    elif placement == "greedy":
        layout = greedy_placement(logical, cmap)
    else:
        layout = annealed_placement(logical, cmap, seed=seed)

    routed = route_circuit(logical, cmap, layout)
    verified: bool | None = None
    if cmap.size <= _VERIFY_MAX_QUBITS:
        verified = routed_prepares(routed, state)
        if not verified:
            raise VerificationError(
                "routed circuit failed to prepare the target state")
    return DeviceResult(routed=routed, logical_circuit=logical,
                        logical_cnots=logical.cnot_cost(),
                        physical_cnots=routed.cnot_cost,
                        placement_strategy=placement, verified=verified)


def expected_physical_vector(state: QState, final_layout: list[int],
                             num_physical: int) -> np.ndarray:
    """Dense physical statevector with logical qubit ``i`` living on
    physical wire ``final_layout[i]`` and every other wire in ``|0>``."""
    if len(final_layout) != state.num_qubits:
        raise CircuitError("layout width does not match the state")
    vec = np.zeros(1 << num_physical, dtype=np.float64)
    n = state.num_qubits
    for index, amp in state.items():
        phys_index = 0
        for logical in range(n):
            if bit_of(index, logical, n):
                phys_index |= bit_mask(final_layout[logical], num_physical)
        vec[phys_index] = amp
    return vec


def routed_prepares(routed: RoutedCircuit, state: QState,
                    atol: float = SIM_ATOL) -> bool:
    """Check the routed circuit prepares ``state`` up to the final layout
    (and a global sign, as everywhere in the real-amplitude setting)."""
    vec = simulate_circuit(routed.circuit)
    expected = expected_physical_vector(state, routed.final_layout,
                                        routed.circuit.num_qubits)
    vec = np.real_if_close(vec)
    return bool(np.allclose(vec, expected, atol=atol) or
                np.allclose(vec, -expected, atol=atol))

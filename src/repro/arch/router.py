"""SWAP-insertion routing onto a coupling map.

Takes any circuit over ``{X, Ry, Rz, CX}`` (call :meth:`QCircuit.decompose`
first for higher-level gates) and produces an equivalent *physical* circuit
in which every CNOT acts on a coupled pair, by inserting SWAPs (3 CNOTs
each) along shortest physical paths.

The router is the greedy nearest-neighbour scheme with a SABRE-style
lookahead tie-break: when a CNOT's endpoints are ``d`` hops apart it walks
the pair together along a shortest path, choosing at each hop the swap that
most helps the next few pending CNOTs.

State preparation never needs the final layout restored — the output wire
labeling is free — so :class:`RoutedCircuit` reports the final layout
instead of appending an unmapping network (ask :func:`restore_layout` for
one explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.placement import trivial_placement, validate_placement
from repro.arch.topologies import CouplingMap
from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, Gate
from repro.exceptions import CircuitError

__all__ = ["RoutedCircuit", "route_circuit", "swap_gates", "restore_layout"]

#: How many upcoming CNOTs the lookahead tie-break inspects.
_LOOKAHEAD = 8
#: Weight of the lookahead term relative to the current CNOT's distance.
_LOOKAHEAD_WEIGHT = 0.5


@dataclass
class RoutedCircuit:
    """Result of routing a logical circuit onto a coupling map.

    Attributes
    ----------
    circuit:
        Physical circuit (every CX endpoint pair is coupled).  Gate indices
        refer to *physical* qubits.
    initial_layout / final_layout:
        ``layout[logical] = physical`` before/after execution.  SWAPs move
        logical qubits around, so the two differ whenever routing happened.
    swap_count:
        Number of SWAPs inserted (each contributes 3 CNOTs).
    """

    circuit: QCircuit
    initial_layout: list[int]
    final_layout: list[int]
    swap_count: int = 0
    coupling: CouplingMap | None = field(default=None, repr=False)

    @property
    def cnot_cost(self) -> int:
        return self.circuit.cnot_cost()

    def overhead(self, logical_circuit: QCircuit) -> int:
        """Extra CNOTs paid for the topology (routed minus unrouted)."""
        return self.cnot_cost - logical_circuit.decompose().cnot_cost()


def swap_gates(a: int, b: int) -> list[Gate]:
    """A SWAP between physical qubits as its 3-CNOT expansion."""
    return [CXGate.make(a, b), CXGate.make(b, a), CXGate.make(a, b)]


def route_circuit(circuit: QCircuit, cmap: CouplingMap,
                  placement: list[int] | None = None) -> RoutedCircuit:
    """Insert SWAPs so every CNOT acts on a coupled physical pair.

    Parameters
    ----------
    circuit:
        Logical circuit; must already be over ``{X, Ry, Rz, CX}``
        (single-qubit gates plus plain/negated CNOT).
    cmap:
        Target coupling map; must be connected on the used region.
    placement:
        Initial layout ``placement[logical] = physical``; identity by
        default.  See :mod:`repro.arch.placement` for good choices.

    Raises
    ------
    CircuitError
        On multi-control gates (decompose first) or a disconnected map.
    """
    n = circuit.num_qubits
    if placement is None:
        placement = trivial_placement(n, cmap)
    validate_placement(placement, n, cmap)

    layout = list(placement)            # layout[logical] = physical
    physical = QCircuit(max(cmap.size, 1))
    swap_count = 0

    pending = list(circuit.gates)
    future_pairs = _cx_pairs(pending)

    for position, gate in enumerate(pending):
        if gate.num_controls > 1:
            raise CircuitError(
                f"route_circuit needs a decomposed circuit, found {gate}")
        if gate.num_controls == 0:
            physical.append(gate.remap({gate.target: layout[gate.target]}))
            continue

        control = gate.controls[0][0]
        target = gate.target
        while not cmap.is_adjacent(layout[control], layout[target]):
            swap = _choose_swap(layout, control, target, cmap,
                                future_pairs[position:])
            _apply_swap(layout, physical, swap)
            swap_count += 1
        physical.append(gate.remap({control: layout[control],
                                    target: layout[target]}))

    return RoutedCircuit(circuit=physical, initial_layout=list(placement),
                         final_layout=layout, swap_count=swap_count,
                         coupling=cmap)


def restore_layout(routed: RoutedCircuit) -> RoutedCircuit:
    """Append a SWAP network returning every logical qubit to its initial
    physical position (when the unmapped wire order matters downstream)."""
    if routed.coupling is None:
        raise CircuitError("routed circuit lost its coupling map")
    from repro.arch.swap_network import permutation_swaps

    layout = list(routed.final_layout)
    circuit = QCircuit(routed.circuit.num_qubits, routed.circuit.gates)
    swaps = permutation_swaps(
        routed.coupling,
        {src: dst for src, dst in zip(layout, routed.initial_layout)})
    count = routed.swap_count
    for a, b in swaps:
        circuit.extend(swap_gates(a, b))
        _record_swap(layout, a, b)
        count += 1
    if layout != routed.initial_layout:
        raise CircuitError("restore_layout failed to realize the permutation")
    return RoutedCircuit(circuit=circuit,
                         initial_layout=routed.initial_layout,
                         final_layout=layout, swap_count=count,
                         coupling=routed.coupling)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _cx_pairs(gates: list[Gate]) -> list[tuple[int, int] | None]:
    """Per-gate logical CX endpoints (``None`` for single-qubit gates)."""
    out: list[tuple[int, int] | None] = []
    for g in gates:
        if g.num_controls == 1:
            out.append((g.controls[0][0], g.target))
        else:
            out.append(None)
    return out


def _choose_swap(layout: list[int], control: int, target: int,
                 cmap: CouplingMap,
                 upcoming: list[tuple[int, int] | None]) -> tuple[int, int]:
    """Pick the physical swap that brings ``control``/``target`` together,
    tie-broken by the next few pending CNOTs (SABRE-style lookahead)."""
    phys_c, phys_t = layout[control], layout[target]

    candidates: list[tuple[int, int]] = []
    for phys in (phys_c, phys_t):
        for neighbor in cmap.neighbors(phys):
            candidates.append((min(phys, neighbor), max(phys, neighbor)))
    candidates = sorted(set(candidates))

    def score(swap: tuple[int, int]) -> float:
        trial = list(layout)
        _record_swap(trial, *swap)
        primary = cmap.distance(trial[control], trial[target])
        look = 0.0
        seen = 0
        for pair in upcoming:
            if pair is None:
                continue
            seen += 1
            if seen > _LOOKAHEAD:
                break
            look += cmap.distance(trial[pair[0]], trial[pair[1]])
        return primary + _LOOKAHEAD_WEIGHT * look

    best = min(candidates, key=score)
    # Guard against a stuck router: the chosen swap must strictly reduce
    # the primary distance or leave it equal with a better lookahead;
    # falling back to the shortest-path hop guarantees progress.
    trial = list(layout)
    _record_swap(trial, *best)
    if cmap.distance(trial[control], trial[target]) >= \
            cmap.distance(phys_c, phys_t):
        path = cmap.shortest_path(phys_c, phys_t)
        best = (min(path[0], path[1]), max(path[0], path[1]))
    return best


def _record_swap(layout: list[int], a: int, b: int) -> None:
    """Update ``layout`` after swapping physical qubits ``a`` and ``b``."""
    for logical, phys in enumerate(layout):
        if phys == a:
            layout[logical] = b
        elif phys == b:
            layout[logical] = a


def _apply_swap(layout: list[int], physical: QCircuit,
                swap: tuple[int, int]) -> None:
    physical.extend(swap_gates(*swap))
    _record_swap(layout, *swap)

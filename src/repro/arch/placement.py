"""Initial placement of logical qubits onto a coupling map.

For state preparation the wire labeling is free (the paper's qubit
permutation equivalence, Sec. V-B), so a good initial placement directly
reduces routed CNOT cost.  Three strategies, in increasing effort:

* :func:`trivial_placement` — identity (baseline for ablations);
* :func:`greedy_placement` — match the most-interacting logical qubits to
  the best-connected physical region, one qubit at a time;
* :func:`annealed_placement` — simulated annealing over swaps of the
  greedy placement, scored by the routed-distance objective.

A *placement* is a list ``p`` with ``p[logical] = physical``, always a
partial injection of logical wires into the physical register.
"""

from __future__ import annotations

import math

import numpy as np

from repro.arch.topologies import CouplingMap
from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError

__all__ = [
    "interaction_graph",
    "placement_cost",
    "trivial_placement",
    "greedy_placement",
    "annealed_placement",
    "validate_placement",
]


def interaction_graph(circuit: QCircuit) -> np.ndarray:
    """Symmetric matrix of pairwise two-qubit interaction counts.

    Entry ``[a, b]`` counts the decomposed CNOTs the circuit executes
    between logical qubits ``a`` and ``b``.
    """
    n = circuit.num_qubits
    weights = np.zeros((n, n), dtype=np.int64)
    for gate in circuit.decompose():
        if gate.name != "cx":
            continue
        a = gate.controls[0][0]
        b = gate.target
        weights[a, b] += 1
        weights[b, a] += 1
    return weights


def validate_placement(placement: list[int], num_logical: int,
                       cmap: CouplingMap) -> None:
    """Raise :class:`CircuitError` unless ``placement`` injects
    ``num_logical`` wires into the physical register."""
    if len(placement) != num_logical:
        raise CircuitError(
            f"placement covers {len(placement)} wires, need {num_logical}")
    if len(set(placement)) != len(placement):
        raise CircuitError(f"placement repeats a physical qubit: {placement}")
    for phys in placement:
        if not 0 <= phys < cmap.size:
            raise CircuitError(
                f"physical qubit {phys} outside register of {cmap.size}")


def placement_cost(weights: np.ndarray, placement: list[int],
                   cmap: CouplingMap) -> float:
    """Interaction-weighted sum of physical distances.

    The exact routed cost depends on SWAP scheduling; this distance-weighted
    proxy is the standard placement objective and is what the annealer
    minimizes.
    """
    n = weights.shape[0]
    total = 0.0
    for a in range(n):
        for b in range(a + 1, n):
            w = weights[a, b]
            if w:
                total += w * cmap.distance(placement[a], placement[b])
    return total


def trivial_placement(num_logical: int, cmap: CouplingMap) -> list[int]:
    """Identity placement: logical ``i`` on physical ``i``."""
    if num_logical > cmap.size:
        raise CircuitError(
            f"{num_logical} logical qubits exceed {cmap.size} physical")
    return list(range(num_logical))


def greedy_placement(circuit: QCircuit, cmap: CouplingMap) -> list[int]:
    """Interaction-guided greedy placement.

    Seeds the heaviest-interacting logical qubit on the best-connected
    physical qubit, then repeatedly places the unplaced logical qubit with
    the strongest ties to already-placed ones on the free physical qubit
    minimizing weighted distance to its placed partners.
    """
    n = circuit.num_qubits
    if n > cmap.size:
        raise CircuitError(
            f"{n} logical qubits exceed {cmap.size} physical")
    weights = interaction_graph(circuit)
    placement: dict[int, int] = {}
    free_phys = set(range(cmap.size))

    order = sorted(range(n), key=lambda q: -int(weights[q].sum()))
    seed_logical = order[0]
    seed_physical = max(range(cmap.size), key=lambda p: cmap.degree(p))
    placement[seed_logical] = seed_physical
    free_phys.discard(seed_physical)

    remaining = [q for q in order if q != seed_logical]
    while remaining:
        # the unplaced logical qubit most attached to the placed set
        def attachment(q: int) -> int:
            return int(sum(weights[q, p] for p in placement))
        remaining.sort(key=attachment, reverse=True)
        logical = remaining.pop(0)

        def phys_score(phys: int) -> float:
            score = 0.0
            for placed_logical, placed_phys in placement.items():
                w = weights[logical, placed_logical]
                if w:
                    score += w * cmap.distance(phys, placed_phys)
            if score == 0.0:
                # no ties yet: prefer staying near the placed cluster
                score = min((cmap.distance(phys, p)
                             for p in placement.values()), default=0)
            return score

        best = min(sorted(free_phys), key=phys_score)
        placement[logical] = best
        free_phys.discard(best)

    return [placement[q] for q in range(n)]


def annealed_placement(circuit: QCircuit, cmap: CouplingMap,
                       iterations: int = 2000, seed: int = 0,
                       start: list[int] | None = None) -> list[int]:
    """Simulated-annealing refinement of a placement.

    Moves are swaps of two positions (two used, or one used and one free
    physical qubit).  Geometric cooling; accepts uphill moves with the
    Metropolis rule.  Deterministic for a fixed ``seed``.
    """
    n = circuit.num_qubits
    weights = interaction_graph(circuit)
    current = list(start) if start is not None else \
        greedy_placement(circuit, cmap)
    validate_placement(current, n, cmap)
    rng = np.random.default_rng(seed)

    cost = placement_cost(weights, current, cmap)
    best, best_cost = list(current), cost
    if n < 2 or iterations <= 0:
        return best

    temp_start = max(1.0, cost / 4.0)
    temp_end = 0.01
    free = sorted(set(range(cmap.size)) - set(current))

    for step in range(iterations):
        frac = step / max(1, iterations - 1)
        temperature = temp_start * (temp_end / temp_start) ** frac
        candidate = list(current)
        if free and rng.random() < 0.3:
            # relocate one logical qubit onto a free physical slot
            i = int(rng.integers(n))
            j = int(rng.integers(len(free)))
            candidate[i], free_slot = free[j], candidate[i]
            new_free = list(free)
            new_free[j] = free_slot
        else:
            i, j = rng.choice(n, size=2, replace=False)
            candidate[i], candidate[j] = candidate[j], candidate[i]
            new_free = free
        new_cost = placement_cost(weights, candidate, cmap)
        delta = new_cost - cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature,
                                                              1e-12)):
            current, cost = candidate, new_cost
            free = sorted(new_free) if new_free is not free else free
            if cost < best_cost:
                best, best_cost = list(current), cost
    return best

"""Permutation routing by token swapping.

Realizes a permutation of physical qubits using SWAPs restricted to
coupling-map edges — the classic *token swapping* problem.  Exact token
swapping is NP-hard; the greedy cycle-walking heuristic here is the
standard 2-approximation-style approach: repeatedly pick a misplaced token
and walk it one edge along a shortest path toward its destination,
preferring swaps that also help (or at least do not hurt) the other token.

Used by :func:`repro.arch.router.restore_layout` and useful on its own to
realize the wire permutations that the paper's ``P``-equivalence
(Sec. V-B) treats as free on symmetric topologies — this module quantifies
exactly what they cost on a *restricted* topology.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.arch.topologies import CouplingMap
from repro.exceptions import CircuitError

__all__ = ["permutation_swaps", "apply_swap_sequence", "swap_sequence_cost"]


def permutation_swaps(cmap: CouplingMap,
                      destination: Mapping[int, int]) -> list[tuple[int, int]]:
    """Edge-restricted SWAP sequence realizing a permutation.

    Parameters
    ----------
    cmap:
        Coupling map; swaps are restricted to its edges.
    destination:
        ``destination[src] = dst``: the token currently on physical qubit
        ``src`` must end on ``dst``.  Qubits absent from the mapping are
        fixed points.

    Returns
    -------
    List of ``(a, b)`` physical swaps; applying them in order moves every
    token home.

    Raises
    ------
    CircuitError
        If ``destination`` is not a permutation or the map is disconnected
        where connectivity is required.
    """
    perm = _complete_permutation(cmap, destination)
    # token[q] = the destination of the token currently sitting on q
    token = dict(perm)
    swaps: list[tuple[int, int]] = []

    moved = {q for q, dst in perm.items() if dst != q}
    if not moved:
        return swaps
    component = _routing_component(cmap, moved)

    # Spanning-tree elimination: repeatedly pick a tree leaf, walk its
    # destined token home along tree edges, then lock the leaf.  Each
    # phase homes one token permanently, so the loop always terminates.
    import networkx as nx

    tree = nx.minimum_spanning_tree(cmap.graph.subgraph(component))
    while tree.number_of_nodes() > 1:
        leaf = min(v for v in tree.nodes() if tree.degree[v] <= 1)
        source = next(q for q, dst in token.items() if dst == leaf)
        if source != leaf:
            path = nx.shortest_path(tree, source, leaf)
            for here, there in zip(path, path[1:]):
                swaps.append((min(here, there), max(here, there)))
                token[here], token[there] = token[there], token[here]
        tree.remove_node(leaf)
    return swaps


def apply_swap_sequence(positions: Mapping[int, int],
                        swaps: list[tuple[int, int]]) -> dict[int, int]:
    """Apply swaps to a ``{qubit: token}`` assignment; returns a new dict."""
    out = dict(positions)
    for a, b in swaps:
        va = out.get(a, a)
        vb = out.get(b, b)
        out[a], out[b] = vb, va
    return out


def swap_sequence_cost(swaps: list[tuple[int, int]]) -> int:
    """CNOT cost of a swap sequence (3 CNOTs per SWAP)."""
    return 3 * len(swaps)


def _routing_component(cmap: CouplingMap, moved: set[int]) -> set[int]:
    """The connected physical region hosting every moved token.

    Raises :class:`CircuitError` when the moved tokens span multiple
    components (no swap sequence can cross a gap).
    """
    import networkx as nx

    for nodes in nx.connected_components(cmap.graph):
        if moved <= nodes:
            return set(nodes)
    raise CircuitError(
        "permutation moves tokens across disconnected coupling regions")


def _complete_permutation(cmap: CouplingMap,
                          destination: Mapping[int, int]) -> dict[int, int]:
    perm = {q: q for q in range(cmap.size)}
    for src, dst in destination.items():
        if not 0 <= src < cmap.size or not 0 <= dst < cmap.size:
            raise CircuitError(
                f"permutation entry {src}->{dst} outside register "
                f"of size {cmap.size}")
        perm[src] = dst
    values = sorted(perm.values())
    if values != list(range(cmap.size)):
        raise CircuitError(f"not a permutation: {dict(destination)}")
    return perm

"""Architecture-aware compilation (extension).

The paper's cost model assumes all-to-all connectivity; this subpackage
quantifies and pays the *topology tax* of real devices:

* :mod:`repro.arch.topologies` — coupling maps (line, ring, grid, star,
  heavy-hex, tree, full);
* :mod:`repro.arch.placement` — initial placement (greedy, annealed);
* :mod:`repro.arch.router` — SWAP-insertion routing with lookahead;
* :mod:`repro.arch.swap_network` — token swapping for permutations;
* :mod:`repro.arch.flow` — end-to-end ``prepare_on_device``.
"""

from repro.arch.flow import (
    DeviceResult,
    expected_physical_vector,
    prepare_on_device,
    routed_prepares,
)
from repro.arch.placement import (
    annealed_placement,
    greedy_placement,
    interaction_graph,
    placement_cost,
    trivial_placement,
)
from repro.arch.router import RoutedCircuit, restore_layout, route_circuit
from repro.arch.swap_network import (
    apply_swap_sequence,
    permutation_swaps,
    swap_sequence_cost,
)
from repro.arch.topologies import CouplingMap, native_topology

__all__ = [
    "CouplingMap",
    "native_topology",
    "RoutedCircuit",
    "DeviceResult",
    "route_circuit",
    "restore_layout",
    "prepare_on_device",
    "routed_prepares",
    "expected_physical_vector",
    "trivial_placement",
    "greedy_placement",
    "annealed_placement",
    "interaction_graph",
    "placement_cost",
    "permutation_swaps",
    "apply_swap_sequence",
    "swap_sequence_cost",
]

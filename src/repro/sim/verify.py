"""Verification of state-preparation circuits.

Matches the paper's workflow (Sec. VI-A): every synthesized circuit is
checked against its target by simulation.  Because all circuits here are
Ry/CNOT circuits on real targets, comparison is up to a global ``+-1`` sign.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.exceptions import VerificationError
from repro.sim.statevector import simulate_circuit
from repro.states.qstate import QState

__all__ = [
    "prepares_state",
    "assert_prepares",
    "fidelity",
    "verification_report",
]


def fidelity(circuit: QCircuit, target: QState,
             initial: QState | None = None) -> float:
    """``|<target|C|initial>|^2`` (initial defaults to ``|0...0>``)."""
    vec = simulate_circuit(circuit, initial)
    overlap = np.vdot(target.to_vector().astype(np.complex128), vec)
    return float(abs(overlap) ** 2)


def prepares_state(circuit: QCircuit, target: QState,
                   atol: float = 1e-7,
                   initial: QState | None = None) -> bool:
    """True when ``C|0...0>`` equals the target up to global phase."""
    return fidelity(circuit, target, initial) >= 1.0 - atol


def verification_report(circuit: QCircuit, target: QState,
                        initial: QState | None = None) -> str:
    """Readable diagnostic comparing the produced and target states."""
    vec = simulate_circuit(circuit, initial)
    produced = np.round(vec, 6)
    nonzero = np.nonzero(np.abs(produced) > 1e-6)[0]
    lines = [f"fidelity = {fidelity(circuit, target, initial):.9f}",
             f"target   = {target.pretty()}",
             "produced = " + " ".join(
                 f"{produced[i].real:+.4f}"
                 + (f"{produced[i].imag:+.4f}j" if abs(produced[i].imag) > 1e-6 else "")
                 + f"|{i:0{circuit.num_qubits}b}>"
                 for i in nonzero[:16])]
    if nonzero.size > 16:
        lines[-1] += f" ... (+{nonzero.size - 16} more)"
    return "\n".join(lines)


def assert_prepares(circuit: QCircuit, target: QState,
                    atol: float = 1e-7,
                    initial: QState | None = None) -> None:
    """Raise :class:`VerificationError` when the circuit misses its target."""
    if not prepares_state(circuit, target, atol=atol, initial=initial):
        raise VerificationError(
            "circuit does not prepare the target state\n"
            + verification_report(circuit, target, initial))

"""Noisy execution model: why CNOT count is the objective.

The paper's premise (Sec. I/II-B) is that on NISQ hardware "CNOTs introduce
more noise than single-qubit gates", so minimizing the CNOT count directly
improves preparation fidelity.  This module makes that premise quantitative
with three estimators of the fidelity between the ideal target state and
the noisy prepared state, all driven by a :class:`NoiseModel` of
depolarizing strength per gate:

* :func:`analytic_fidelity_bound` — the closed-form product
  ``prod (1 - p_g)`` over gates: the probability that *no* gate faults,
  a lower bound that every practitioner uses for back-of-envelope sizing;
* :func:`density_matrix_fidelity` — exact evolution of the density matrix
  through depolarizing channels (``O(4**n)`` memory, small ``n`` only);
* :func:`monte_carlo_fidelity` — Pauli-trajectory sampling, scaling to
  wider registers at the price of sampling error.

The three agree in their regimes (checked by the test suite), and the
benchmark ``benchmarks/bench_noise_motivation.py`` uses them to turn the
paper's CNOT-count tables into fidelity gaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.sim.statevector import apply_gate
from repro.sim.unitary import gate_unitary
from repro.states.qstate import QState

__all__ = [
    "NoiseModel",
    "analytic_fidelity_bound",
    "density_matrix_fidelity",
    "monte_carlo_fidelity",
    "noisy_density_matrix",
    "state_fidelity",
]

_DENSITY_MAX_QUBITS = 8

_PAULIS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing noise strengths per gate class.

    ``p_cx`` is applied (as a two-qubit depolarizing channel) after every
    CNOT of the *decomposed* circuit; ``p_1q`` (single-qubit channel) after
    every single-qubit gate.  Typical NISQ numbers: ``p_cx`` around 1e-2,
    ``p_1q`` one order of magnitude smaller — the gap the paper's objective
    exploits.
    """

    p_cx: float = 1e-2
    p_1q: float = 1e-3

    def __post_init__(self):
        for name, p in (("p_cx", self.p_cx), ("p_1q", self.p_1q)):
            if not 0.0 <= p <= 1.0:
                raise CircuitError(f"{name} must be a probability, got {p}")

    @classmethod
    def ideal(cls) -> "NoiseModel":
        return cls(p_cx=0.0, p_1q=0.0)

    def gate_error(self, num_qubits_touched: int) -> float:
        """Depolarizing strength for a gate touching that many qubits."""
        return self.p_cx if num_qubits_touched >= 2 else self.p_1q


def analytic_fidelity_bound(circuit: QCircuit, noise: NoiseModel) -> float:
    """No-fault probability ``prod_g (1 - p_g)`` of the decomposed circuit.

    A depolarizing fault of strength ``p`` leaves the state untouched only
    on the no-error branch, so the product of no-error probabilities lower
    bounds the final state fidelity (faults cannot conspire to help more
    than they hurt, up to the small identity component of the error
    channel — the density-matrix estimator measures the exact value).
    """
    low = circuit.decompose()
    bound = 1.0
    for gate in low:
        bound *= 1.0 - noise.gate_error(len(gate.qubits()))
    return bound


def state_fidelity(target: QState, rho: np.ndarray) -> float:
    """``<psi| rho |psi>`` for a pure target state."""
    vec = target.to_vector().astype(np.complex128)
    if rho.shape != (vec.size, vec.size):
        raise CircuitError(
            f"density matrix shape {rho.shape} does not match the state")
    return float(np.real(np.conj(vec) @ rho @ vec))


def noisy_density_matrix(circuit: QCircuit, noise: NoiseModel) -> np.ndarray:
    """Exact density matrix after the decomposed circuit with a
    depolarizing channel following every gate."""
    low = circuit.decompose()
    n = low.num_qubits
    if n > _DENSITY_MAX_QUBITS:
        raise CircuitError(
            f"density simulation limited to {_DENSITY_MAX_QUBITS} qubits, "
            f"got {n}")
    dim = 1 << n
    rho = np.zeros((dim, dim), dtype=np.complex128)
    rho[0, 0] = 1.0
    for gate in low:
        unitary = gate_unitary(gate, n)
        rho = unitary @ rho @ unitary.conj().T
        rho = _depolarize(rho, gate.qubits(), noise.gate_error(
            len(gate.qubits())), n)
    return rho


def density_matrix_fidelity(circuit: QCircuit, target: QState,
                            noise: NoiseModel) -> float:
    """Exact fidelity of the noisy preparation against ``target``."""
    return state_fidelity(target, noisy_density_matrix(circuit, noise))


def monte_carlo_fidelity(circuit: QCircuit, target: QState,
                         noise: NoiseModel, shots: int = 2000,
                         seed: int = 0) -> float:
    """Pauli-trajectory estimate of the preparation fidelity.

    Each shot runs the decomposed circuit as a pure-state trajectory,
    inserting a uniformly random non-identity Pauli on a gate's qubits with
    probability ``p * (4**k) / (4**k - 1)``... more precisely, sampling the
    Kraus decomposition of the depolarizing channel exactly: with
    probability ``1 - p`` nothing happens, otherwise one of the ``4**k``
    Pauli strings (including identity) is applied uniformly.
    """
    low = circuit.decompose()
    n = low.num_qubits
    rng = np.random.default_rng(seed)
    tvec = target.to_vector().astype(np.complex128)
    total = 0.0
    pauli_names = ("I", "X", "Y", "Z")
    for _ in range(shots):
        vec = np.zeros(1 << n, dtype=np.complex128)
        vec[0] = 1.0
        for gate in low:
            apply_gate(vec, gate, n)
            qubits = gate.qubits()
            p = noise.gate_error(len(qubits))
            if p > 0.0 and rng.random() < p:
                for q in qubits:
                    name = pauli_names[rng.integers(4)]
                    if name != "I":
                        vec = _apply_pauli(vec, name, q, n)
        overlap = np.vdot(tvec, vec)
        total += float(np.real(overlap * np.conj(overlap)))
    return total / shots


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------


def _apply_pauli(vec: np.ndarray, name: str, qubit: int,
                 n: int) -> np.ndarray:
    """Apply a single-qubit Pauli to a dense statevector."""
    dim = vec.size
    shift = n - 1 - qubit
    idx = np.arange(dim)
    flipped = idx ^ (1 << shift)
    bit = (idx >> shift) & 1
    if name == "X":
        return vec[flipped]
    if name == "Z":
        out = vec.copy()
        out[bit == 1] *= -1.0
        return out
    if name == "Y":
        out = vec[flipped].astype(np.complex128)
        out[bit == 1] *= 1j
        out[bit == 0] *= -1j
        return out
    raise CircuitError(f"unknown Pauli {name!r}")


def _pauli_operator(names: tuple[str, ...], qubits: tuple[int, ...],
                    n: int) -> np.ndarray:
    """Dense operator of a Pauli string on selected qubits."""
    ops = ["I"] * n
    for name, q in zip(names, qubits):
        ops[q] = name
    out = np.array([[1.0]], dtype=np.complex128)
    for name in ops:
        out = np.kron(out, _PAULIS[name])
    return out


def _depolarize(rho: np.ndarray, qubits: tuple[int, ...], p: float,
                n: int) -> np.ndarray:
    """Depolarizing channel of strength ``p`` on ``qubits``:

    ``rho -> (1-p) rho + p/4**k sum_P  P rho P``  (sum over all ``4**k``
    Pauli strings, identity included — the uniform Pauli-twirl form whose
    no-error branch matches the Monte Carlo sampler exactly).
    """
    if p <= 0.0:
        return rho
    k = len(qubits)
    num_strings = 4 ** k
    mixed = np.zeros_like(rho)
    import itertools

    for names in itertools.product("IXYZ", repeat=k):
        op = _pauli_operator(names, qubits, n)
        mixed += op @ rho @ op.conj().T
    return (1.0 - p) * rho + (p / num_strings) * mixed

"""Dense statevector simulator.

This module substitutes the Qiskit simulator the paper uses for verification
(Sec. VI-A): it applies each gate — uniformly modeled as a controlled
single-qubit operation — to a dense ``2**n`` vector with vectorized numpy
index arithmetic.

Qubit 0 is the most significant bit of the basis index, matching
:mod:`repro.states.qstate`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError
from repro.states.qstate import QState

__all__ = ["apply_gate", "simulate_circuit", "simulate_to_state"]


def _selection(num_qubits: int, gate: Gate) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs ``(i0, i1)`` the gate mixes: ``i0`` has target bit 0,
    ``i1`` target bit 1, and both satisfy every control."""
    dim = 1 << num_qubits
    idx = np.arange(dim, dtype=np.intp)
    t_shift = num_qubits - 1 - gate.target
    sel = ((idx >> t_shift) & 1) == 0
    for q, p in gate.controls:
        shift = num_qubits - 1 - q
        sel &= ((idx >> shift) & 1) == p
    i0 = idx[sel]
    i1 = i0 | (1 << t_shift)
    return i0, i1


def apply_gate(vector: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate in place and return the vector."""
    if vector.shape[0] != (1 << num_qubits):
        raise CircuitError(
            f"vector length {vector.shape[0]} != 2**{num_qubits}")
    mat = gate.base_matrix()
    if np.iscomplexobj(mat) and not np.iscomplexobj(vector):
        raise CircuitError("complex gate on real vector; "
                           "allocate the vector as complex128")
    i0, i1 = _selection(num_qubits, gate)
    a = vector[i0]
    b = vector[i1]
    vector[i0] = mat[0, 0] * a + mat[0, 1] * b
    vector[i1] = mat[1, 0] * a + mat[1, 1] * b
    return vector


def simulate_circuit(circuit: QCircuit,
                     initial: np.ndarray | QState | None = None,
                     dtype=np.complex128) -> np.ndarray:
    """Run a circuit and return the final statevector.

    Parameters
    ----------
    circuit:
        The circuit to execute (gates applied left to right).
    initial:
        Starting vector or :class:`QState`; defaults to ``|0...0>``.
    dtype:
        Vector dtype.  ``complex128`` by default so Rz gates are legal; pass
        ``float64`` for Ry/CNOT-only circuits when speed matters.
    """
    dim = 1 << circuit.num_qubits
    if initial is None:
        vec = np.zeros(dim, dtype=dtype)
        vec[0] = 1.0
    elif isinstance(initial, QState):
        if initial.num_qubits != circuit.num_qubits:
            raise CircuitError("initial state register width mismatch")
        vec = initial.to_vector().astype(dtype)
    else:
        vec = np.array(initial, dtype=dtype, copy=True)
        if vec.shape[0] != dim:
            raise CircuitError(
                f"initial vector length {vec.shape[0]} != {dim}")
    for gate in circuit:
        apply_gate(vec, gate, circuit.num_qubits)
    return vec


def simulate_to_state(circuit: QCircuit,
                      initial: np.ndarray | QState | None = None,
                      atol: float = 1e-9) -> QState:
    """Run a circuit and return the (real) final state as a :class:`QState`.

    Raises if the final vector has a non-negligible imaginary part — real
    targets prepared with Ry/CNOT circuits never do.
    """
    vec = simulate_circuit(circuit, initial)
    if np.max(np.abs(vec.imag)) > 1e-8:
        raise CircuitError("final state is not real; use simulate_circuit")
    return QState.from_vector(vec.real, atol=atol)

"""Sparse circuit simulation on the paper's ``n x m`` state encoding.

The dense simulator (:mod:`repro.sim.statevector`) materializes ``2**n``
amplitudes, which caps verification at ~14 qubits.  For the circuits this
library produces — ``{X, Ry, CX, CRy, MCRy}`` on real amplitudes — every
gate maps a sparse :class:`QState` to a sparse :class:`QState` whose
cardinality at most doubles per rotation, so states of the paper's sparse
benchmark suite (``m = n`` at ``n = 20``) simulate in milliseconds.

This is exactly the evolution the paper's Sec. VI-D credits for the
solver's scalability; here it also powers wide-register verification
(:func:`sparse_prepares`), closing the gap the dense verifier leaves
above 14 qubits.
"""

from __future__ import annotations

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import (
    CRYGate,
    CXGate,
    Gate,
    MCRYGate,
    RYGate,
    XGate,
)
from repro.constants import ATOL
from repro.core.moves import apply_controlled_ry
from repro.exceptions import CircuitError
from repro.states.qstate import QState

__all__ = [
    "apply_gate_sparse",
    "simulate_sparse",
    "sparse_prepares",
    "sparse_fidelity",
]


def apply_gate_sparse(state: QState, gate: Gate,
                      drop_tol: float = ATOL) -> QState:
    """Apply one real-amplitude gate to a sparse state.

    Supports the full synthesis gate set; raises :class:`CircuitError` on
    complex gates (Rz — use the dense simulator for phase circuits).
    """
    n = state.num_qubits
    if any(q >= n for q in gate.qubits()):
        raise CircuitError(
            f"gate {gate} outside the {n}-qubit register")
    if isinstance(gate, XGate):
        return state.apply_x(gate.target)
    if isinstance(gate, CXGate):
        return state.apply_cx(gate.control, gate.target, gate.phase)
    if isinstance(gate, (RYGate, CRYGate, MCRYGate)):
        return apply_controlled_ry(state, gate.controls, gate.target,
                                   gate.theta, drop_tol=drop_tol)
    raise CircuitError(
        f"sparse simulation does not support {type(gate).__name__} "
        f"(real amplitudes only)")


def simulate_sparse(circuit: QCircuit,
                    initial: QState | None = None,
                    drop_tol: float = ATOL) -> QState:
    """Run a circuit on the sparse encoding; defaults to ``|0...0>``.

    Memory scales with the peak cardinality, not ``2**n`` — rotations can
    at most double it, and the circuits this library emits keep it near
    the target's ``m``.
    """
    state = initial if initial is not None \
        else QState.ground(circuit.num_qubits)
    if state.num_qubits != circuit.num_qubits:
        raise CircuitError(
            f"initial state has {state.num_qubits} qubits, circuit "
            f"{circuit.num_qubits}")
    for gate in circuit:
        state = apply_gate_sparse(state, gate, drop_tol=drop_tol)
    return state


def sparse_fidelity(circuit: QCircuit, target: QState,
                    drop_tol: float = ATOL) -> float:
    """``|<target|C|0>|^2`` computed entirely on sparse states."""
    prepared = simulate_sparse(circuit, drop_tol=drop_tol)
    overlap = 0.0
    for index, amp in prepared.items():
        overlap += amp * target.amplitude(index)
    return overlap * overlap


def sparse_prepares(circuit: QCircuit, target: QState,
                    atol: float = 1e-7) -> bool:
    """True when the circuit prepares ``target`` up to a global sign.

    The wide-register replacement for
    :func:`repro.sim.verify.prepares_state`.
    """
    return sparse_fidelity(circuit, target) >= (1.0 - atol) ** 2

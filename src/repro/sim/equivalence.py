"""Circuit equivalence checking.

Two strategies, chosen by register width:

* **Exact** (small ``n``): compare full unitaries, optionally up to global
  phase.
* **Probing** (any ``n`` the simulator can hold): apply both circuits to a
  batch of random complex states; equal outputs on ``k`` random probes
  bound the failure probability exponentially in ``k`` (random states are
  almost surely cyclic vectors, so a single probe already separates
  distinct unitaries with probability 1 — multiple probes guard against
  numerically marginal cases).

The synthesis flows use this to validate optimization passes on circuits
too wide for ``O(4**n)`` unitary construction.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.sim.statevector import simulate_circuit
from repro.sim.unitary import circuit_unitary, unitaries_equal

__all__ = ["circuits_equivalent", "probe_equivalent"]

_EXACT_MAX_QUBITS = 8


def probe_equivalent(a: QCircuit, b: QCircuit, probes: int = 4,
                     seed: int = 2024, atol: float = 1e-7,
                     up_to_global_phase: bool = True) -> bool:
    """Randomized equivalence test (see module docstring)."""
    if a.num_qubits != b.num_qubits:
        return False
    rng = np.random.default_rng(seed)
    dim = 1 << a.num_qubits
    for _ in range(max(1, probes)):
        vec = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
        vec /= np.linalg.norm(vec)
        out_a = simulate_circuit(a, initial=vec)
        out_b = simulate_circuit(b, initial=vec)
        if up_to_global_phase:
            ref = int(np.argmax(np.abs(out_a)))
            if abs(out_b[ref]) < atol:
                return False
            phase = out_a[ref] / out_b[ref]
            if abs(abs(phase) - 1.0) > 1e-6 or \
                    not np.allclose(out_a, phase * out_b, atol=atol):
                return False
        elif not np.allclose(out_a, out_b, atol=atol):
            return False
    return True


def circuits_equivalent(a: QCircuit, b: QCircuit,
                        up_to_global_phase: bool = True,
                        atol: float = 1e-8) -> bool:
    """Equivalence check, exact when feasible, probing otherwise."""
    if a.num_qubits != b.num_qubits:
        return False
    if a.num_qubits > 20:
        raise CircuitError("register too wide even for probing")
    if a.num_qubits <= _EXACT_MAX_QUBITS:
        return unitaries_equal(circuit_unitary(a), circuit_unitary(b),
                               atol=atol,
                               up_to_global_phase=up_to_global_phase)
    return probe_equivalent(a, b, up_to_global_phase=up_to_global_phase,
                            atol=max(atol, 1e-7))

"""Full-unitary construction for small circuits.

Useful for testing gate decompositions exactly: two circuits are equivalent
iff their unitaries agree (optionally up to global phase).  Cost is
``O(4**n)`` — keep ``n`` small.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import Gate
from repro.sim.statevector import apply_gate

__all__ = ["gate_unitary", "circuit_unitary", "unitaries_equal"]

_MAX_QUBITS = 12


def _check_width(num_qubits: int) -> None:
    if num_qubits > _MAX_QUBITS:
        raise ValueError(
            f"unitary construction limited to {_MAX_QUBITS} qubits")


def gate_unitary(gate: Gate, num_qubits: int) -> np.ndarray:
    """Dense ``2**n x 2**n`` matrix of a single gate."""
    _check_width(num_qubits)
    dim = 1 << num_qubits
    mat = np.eye(dim, dtype=np.complex128)
    for col in range(dim):
        apply_gate(mat[:, col], gate, num_qubits)
    return mat


def circuit_unitary(circuit: QCircuit) -> np.ndarray:
    """Dense unitary of a whole circuit (gates applied left to right)."""
    _check_width(circuit.num_qubits)
    dim = 1 << circuit.num_qubits
    mat = np.eye(dim, dtype=np.complex128)
    for col in range(dim):
        vec = mat[:, col].copy()
        for gate in circuit:
            apply_gate(vec, gate, circuit.num_qubits)
        mat[:, col] = vec
    return mat


def unitaries_equal(u: np.ndarray, v: np.ndarray, atol: float = 1e-9,
                    up_to_global_phase: bool = False) -> bool:
    """Compare two unitaries, optionally modulo a global phase."""
    if u.shape != v.shape:
        return False
    if not up_to_global_phase:
        return bool(np.allclose(u, v, atol=atol))
    # Align on the largest entry of u to fix the phase.
    flat = np.argmax(np.abs(u))
    ref_u = u.reshape(-1)[flat]
    ref_v = v.reshape(-1)[flat]
    if abs(ref_v) < atol:
        return False
    phase = ref_u / ref_v
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(u, phase * v, atol=atol))

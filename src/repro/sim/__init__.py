"""Statevector simulation and circuit verification (Qiskit substitute)."""

from repro.sim.equivalence import circuits_equivalent, probe_equivalent
from repro.sim.noise import (
    NoiseModel,
    analytic_fidelity_bound,
    density_matrix_fidelity,
    monte_carlo_fidelity,
    noisy_density_matrix,
    state_fidelity,
)
from repro.sim.sparse import (
    apply_gate_sparse,
    simulate_sparse,
    sparse_fidelity,
    sparse_prepares,
)
from repro.sim.statevector import apply_gate, simulate_circuit, simulate_to_state
from repro.sim.unitary import circuit_unitary, gate_unitary, unitaries_equal
from repro.sim.verify import (
    assert_prepares,
    fidelity,
    prepares_state,
    verification_report,
)

__all__ = [
    "NoiseModel",
    "analytic_fidelity_bound",
    "density_matrix_fidelity",
    "monte_carlo_fidelity",
    "noisy_density_matrix",
    "state_fidelity",
    "circuits_equivalent",
    "probe_equivalent",
    "apply_gate",
    "apply_gate_sparse",
    "simulate_sparse",
    "sparse_fidelity",
    "sparse_prepares",
    "simulate_circuit",
    "simulate_to_state",
    "circuit_unitary",
    "gate_unitary",
    "unitaries_equal",
    "assert_prepares",
    "fidelity",
    "prepares_state",
    "verification_report",
]

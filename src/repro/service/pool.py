"""Multi-process serving tier: ``repro-qsp serve --listen ... --workers N``.

One asyncio acceptor (the unchanged :class:`~repro.service.asyncserver
.AsyncFrontEnd`) fronts ``N`` scheduler processes, each running a full
:class:`~repro.service.server.SynthesisService` — its own cross-request
scheduler, request cache, :class:`~repro.core.memory.SearchMemory`, and
WAL shard (``<wal>.w<i>`` + sidecar).  :class:`WorkerPool` duck-types
the exact service surface the front end drives (``submit`` /
``scheduler.pending`` / ``scheduler.run_turn`` /
``scheduler.cancel_client`` / ``shutdown`` / ``errors`` / ``obs``), so
the acceptor cannot tell a pool from an inline service.

Routing is least-in-flight with signature-affinity stickiness: a
request whose entanglement signature was last served by worker ``w``
stays on ``w`` while ``w``'s load is within
:data:`~repro.constants.POOL_STICKY_SLACK` of the least-loaded worker,
so the flywheel caches (request cache, near-hit donors, PDB evidence)
for a traffic cluster heat up in one process instead of being diluted
across all of them.

What one worker learns, the others receive: every
:data:`~repro.constants.POOL_CROSS_MERGE_INTERVAL` settled requests the
router pulls each worker's learned-memory delta — the same WAL-record
wire shape :class:`~repro.service.persistence.MemoryWAL` appends to
disk — and fans it out to every *other* worker
(:func:`~repro.service.persistence.merge_wal_delta`).  Deltas are
improve-only and idempotent, so ordering, re-shipment, and crossing
with a worker's own learning are all harmless; the interval trades
only propagation latency against IPC volume.

Graceful drain fans out: each worker runs its own
:meth:`~repro.service.server.SynthesisService.shutdown` (deadline-flush
of in-flight sessions — every pending caller still gets its
best-so-far answer — then WAL compaction and cache persistence), and
the pool aggregates the per-worker summaries.

All pool IPC runs over :mod:`multiprocessing` pipes from the event-loop
thread; the parent never blocks longer than one short
:func:`multiprocessing.connection.wait` per scheduler turn, so socket
reads and writes stay live exactly as with an inline service.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as _connection_wait

from repro.constants import (
    POOL_CROSS_MERGE_INTERVAL,
    POOL_STICKY_SLACK,
    SHUTDOWN_DRAIN_MS,
)
from repro.core.pdb import entanglement_signature
from repro.obs import ObsConfig, build_obs
from repro.service.persistence import merge_wal_delta
from repro.service.server import (
    ServiceConfig,
    SynthesisService,
    parse_request_state,
)
from repro.utils.serialization import (
    memory_baseline,
    memory_to_dict,
    wal_record_to_dict,
)

__all__ = ["WorkerPool", "worker_shard_path"]

#: Wall-clock allowance (seconds) for a blocking control-op round trip
#: to a worker before the router gives up and answers with an error
#: (control ops are cheap — stats, snapshots, trace — so a worker that
#: cannot answer within this is wedged, not busy).
_CONTROL_TIMEOUT_S = 30.0

#: Per-turn poll window (seconds) of the router: short enough that the
#: event loop stays responsive, long enough to sleep instead of
#: busy-spinning when every worker is deep in a search.
_TURN_WAIT_S = 0.005

#: Signature-affinity entries kept before the oldest mapping is
#: forgotten (affinity is a cache hint, never correctness).
_AFFINITY_CAP = 1 << 16


def worker_shard_path(base: str | None, index: int) -> str | None:
    """Per-worker variant of a shared persistence path (``<base>.w<i>``).

    Applied to both the WAL (whose sidecar snapshot then lands at
    ``<base>.w<i>.snapshot``) and the request-cache snapshot, so ``N``
    workers never contend for one append-only file.
    """
    return None if base is None else f"{base}.w{index}"


def _delta_is_empty(delta: dict) -> bool:
    """True when a ``memory_to_dict(..., since=...)`` delta carries
    nothing worth shipping (same test the WAL's ``record_learned``
    applies before appending)."""
    table = delta["transposition"]
    return not (delta["canon_store"] or delta["h_store"] or table["data"]
                or table["cond"] or delta["lane_stats"]
                or delta["pdb"]["entries"])


def _pool_worker_main(conn, config: ServiceConfig, index: int) -> None:
    """One worker process: a full service driven by pipe messages.

    The loop interleaves the message pump with scheduler turns the same
    way the asyncio driver does — one turn, then a poll — so a routed
    light request is admitted (and time-shared) while a heavy one runs.
    Message kinds from the router:

    ``("request", mid, request, token_key)``
        Admit via ``service.submit``; the reply (immediate or settled)
        travels back as ``("reply", mid, response)``.  ``token_key`` is
        interned to a process-local identity object so the scheduler's
        ``is``-based client matching works across pickling.
    ``("cancel", token_key)``
        The client disconnected: abort its in-flight sessions.
    ``("merge", record)``
        Fold a sibling worker's learned delta into this memory.
    ``("pull",)``
        Ship what this memory learned since the last pull as
        ``("delta", index, record-or-None)``.
    ``("handle", mid, request)``
        Synchronous control op; answered as a ``reply``.
    ``("drain", drain_ms)``
        Graceful shutdown; answers ``("drained", index, summary)`` and
        exits the loop.
    """
    service = SynthesisService(config)
    tokens: dict[int, object] = {}
    baseline = memory_baseline(service.memory)
    pull_seq = 0
    try:
        while True:
            timeout = 0.0 if service.scheduler.pending else 0.05
            if conn.poll(timeout):
                message = conn.recv()
                kind = message[0]
                if kind == "request":
                    _, mid, request, token_key = message
                    client = tokens.setdefault(token_key, object())

                    def reply(response: dict, _mid=mid) -> None:
                        conn.send(("reply", _mid, response))

                    try:
                        service.submit(request, reply, client=client)
                    except Exception as exc:  # same guard as the loops
                        service.errors += 1
                        reply({"id": request.get("id"), "ok": False,
                               "error": f"{type(exc).__name__}: {exc}"})
                elif kind == "cancel":
                    client = tokens.pop(message[1], None)
                    if client is not None:
                        service.scheduler.cancel_client(client)
                elif kind == "merge":
                    merge_wal_delta(service.memory, message[1])
                elif kind == "pull":
                    delta = memory_to_dict(service.memory, since=baseline)
                    if _delta_is_empty(delta):
                        conn.send(("delta", index, None))
                    else:
                        pull_seq += 1
                        baseline = memory_baseline(service.memory)
                        conn.send(("delta", index,
                                   wal_record_to_dict(pull_seq, delta)))
                elif kind == "handle":
                    _, mid, request = message
                    conn.send(("reply", mid, service.handle(request)))
                elif kind == "drain":
                    summary = service.shutdown(message[1])
                    summary["worker"] = index
                    conn.send(("drained", index, summary))
                    return
            elif service.scheduler.pending:
                service.scheduler.run_turn()
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # router gone (or interrupt): nothing left to serve
    finally:
        conn.close()


@dataclass
class _Worker:
    index: int
    process: object
    conn: object
    inflight: int = 0
    summary: dict | None = None

    @property
    def alive(self) -> bool:
        return self.summary is None and self.process.is_alive()


class _PoolScheduler:
    """The scheduler-shaped surface the async front end drives."""

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool

    @property
    def sessions(self):
        """In-flight request ids (sized by ``obs.collect``)."""
        return self._pool._callbacks

    @property
    def pending(self) -> bool:
        return bool(self._pool._callbacks)

    def run_turn(self) -> bool:
        return self._pool._run_turn()

    def cancel_client(self, client: object) -> None:
        self._pool._cancel_client(client)

    def snapshot(self) -> dict:
        return self._pool.routing_snapshot()


class WorkerPool:
    """N service processes behind one acceptor (see the module docstring).

    Construct *before* starting the event loop (workers are forked at
    construction).  ``config`` is the single-service configuration; each
    worker receives a copy with per-worker persistence shards
    (:func:`worker_shard_path`) and observability disabled — the pool's
    own ``obs`` (built from ``obs_config``) carries the ``qsp_pool_*``
    routing/merge metrics and serves the ``--metrics`` exposition.
    """

    def __init__(self, config: ServiceConfig, workers: int,
                 obs_config: ObsConfig | None = None) -> None:
        if workers < 2:
            raise ValueError(
                f"a worker pool needs at least 2 workers, got {workers} "
                f"(run the inline service instead)")
        self.config = config
        self.num_workers = workers
        self.obs = build_obs(obs_config)
        self.errors = 0
        #: the front end's duck-typed surface expects these (obs.collect
        #: skips memory/cache occupancy when they are None)
        self.memory = None
        self.cache = None
        self.scheduler = _PoolScheduler(self)
        self._workers: list[_Worker] = []
        self._by_conn: dict = {}
        ctx = multiprocessing.get_context("fork")
        for index in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            worker_config = replace(
                config,
                wal_path=worker_shard_path(config.wal_path, index),
                cache_snapshot_path=worker_shard_path(
                    config.cache_snapshot_path, index),
                race_workers=0, obs=None)
            process = ctx.Process(target=_pool_worker_main,
                                  args=(child_conn, worker_config, index),
                                  daemon=True)
            process.start()
            child_conn.close()
            worker = _Worker(index=index, process=process, conn=parent_conn)
            self._workers.append(worker)
            self._by_conn[parent_conn] = worker
        self._mid = 0
        #: mid -> (reply, worker index, token key) for requests in flight
        self._callbacks: dict[int, tuple] = {}
        self._client_keys: dict[object, int] = {}
        self._client_mids: dict[int, set[int]] = {}
        self._next_token_key = 0
        self._affinity: dict = {}
        self._settled_since_merge = 0
        # routing/merge counters (routing_snapshot + op: stats)
        self.routed = [0] * workers
        self.affinity_hits = 0
        self.merge_rounds = 0
        self.deltas_pulled = 0
        self.deltas_shipped = 0

    # -- admission (front-end surface) -----------------------------------

    def submit(self, request: dict, reply, client: object = None) -> bool:
        """Route one request; mirrors ``SynthesisService.submit``.

        Synthesis ops (``exact``/``prepare``/``fast``) are routed to a
        worker and settle asynchronously (returns ``True``).  ``stats``
        aggregates every worker plus the pool's routing section; the
        remaining control ops run on worker 0, whose shards are the
        pool's canonical persistence (returns ``False`` — answered
        before returning, like any control op).
        """
        op = request.get("op", "prepare")
        if op in ("exact", "prepare", "fast"):
            return self._route(request, reply, client)
        if op == "stats":
            reply(self._aggregate_stats(request))
            return False
        reply(self._control(0, request))
        return False

    def _route(self, request: dict, reply, client: object) -> bool:
        worker, policy = self._pick_worker(request)
        if worker is None:
            self.errors += 1
            reply({"id": request.get("id"), "ok": False,
                   "error": "no live pool workers"})
            return False
        self._mid += 1
        mid = self._mid
        token_key = self._token_key(client)
        try:
            worker.conn.send(("request", mid, request, token_key))
        except OSError:
            self.errors += 1
            reply({"id": request.get("id"), "ok": False,
                   "error": f"pool worker {worker.index} unreachable"})
            return False
        self._callbacks[mid] = (reply, worker.index, token_key,
                                request.get("id"))
        if token_key is not None:
            self._client_mids.setdefault(token_key, set()).add(mid)
        worker.inflight += 1
        self.routed[worker.index] += 1
        if self.obs is not None:
            self.obs.pool_routed_to(worker.index, policy, worker.inflight)
        return True

    def _pick_worker(self, request: dict):
        live = [w for w in self._workers if w.alive]
        if not live:
            return None, ""
        least = min(live, key=lambda w: (w.inflight, w.index))
        signature = self._signature_of(request)
        if signature is None:
            return least, "least_loaded"
        sticky = self._affinity.get(signature)
        if sticky is not None:
            worker = self._workers[sticky]
            if worker.alive and \
                    worker.inflight <= least.inflight + POOL_STICKY_SLACK:
                self.affinity_hits += 1
                return worker, "affinity"
        self._affinity[signature] = least.index
        if len(self._affinity) > _AFFINITY_CAP:
            self._affinity.pop(next(iter(self._affinity)))
        return least, "least_loaded"

    @staticmethod
    def _signature_of(request: dict):
        """Affinity key, or ``None`` when the request cannot say (a
        worker will then produce the real parse error)."""
        try:
            return entanglement_signature(parse_request_state(request))
        except Exception:
            return None

    def _token_key(self, client: object) -> int | None:
        if client is None:
            return None
        key = self._client_keys.get(client)
        if key is None:
            self._next_token_key += 1
            key = self._client_keys[client] = self._next_token_key
        return key

    # -- scheduler surface ------------------------------------------------

    def _run_turn(self) -> bool:
        """One router turn: drain whatever the workers have to say."""
        conns = [w.conn for w in self._workers if w.alive]
        if not conns:
            return False
        progressed = False
        for conn in _connection_wait(conns, timeout=_TURN_WAIT_S):
            worker = self._by_conn[conn]
            try:
                while conn.poll(0):
                    self._dispatch(worker, conn.recv())
                    progressed = True
            except (EOFError, OSError):
                self._worker_lost(worker)
        return progressed

    def _dispatch(self, worker: _Worker, message: tuple) -> None:
        kind = message[0]
        if kind == "reply":
            self._on_reply(message[1], message[2])
        elif kind == "delta":
            self._on_delta(message[1], message[2])
        elif kind == "drained":
            self._workers[message[1]].summary = message[2]

    def _on_reply(self, mid: int, response: dict) -> None:
        entry = self._callbacks.pop(mid, None)
        if entry is None:
            return  # cancelled while the reply was in flight
        reply, worker_index, token_key, _rid = entry
        worker = self._workers[worker_index]
        worker.inflight = max(0, worker.inflight - 1)
        if token_key is not None:
            self._client_mids.get(token_key, set()).discard(mid)
        if self.obs is not None:
            self.obs.pool_worker_inflight(worker_index, worker.inflight)
        try:
            reply(response)
        except Exception:
            pass  # client gone mid-settle: nothing left to tell
        self._settled_since_merge += 1
        if self._settled_since_merge >= POOL_CROSS_MERGE_INTERVAL:
            self._begin_cross_merge()

    def _begin_cross_merge(self) -> None:
        """Ask every worker for its learned delta (answers arrive as
        ``delta`` messages through the normal turn loop — the router
        never blocks on the round)."""
        self._settled_since_merge = 0
        self.merge_rounds += 1
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.conn.send(("pull",))
                except OSError:
                    self._worker_lost(worker)

    def _on_delta(self, source_index: int, record: dict | None) -> None:
        if record is None:
            return
        self.deltas_pulled += 1
        if self.obs is not None:
            self.obs.pool_delta_pulled(source_index)
        for worker in self._workers:
            if worker.index == source_index or not worker.alive:
                continue
            try:
                worker.conn.send(("merge", record))
            except OSError:
                self._worker_lost(worker)
                continue
            self.deltas_shipped += 1
            if self.obs is not None:
                self.obs.pool_delta_merged(worker.index)

    def _cancel_client(self, client: object) -> None:
        key = self._client_keys.pop(client, None)
        if key is None:
            return
        for mid in self._client_mids.pop(key, set()):
            entry = self._callbacks.pop(mid, None)
            if entry is not None:
                worker = self._workers[entry[1]]
                worker.inflight = max(0, worker.inflight - 1)
                if self.obs is not None:
                    self.obs.pool_worker_inflight(worker.index,
                                                  worker.inflight)
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.conn.send(("cancel", key))
                except OSError:
                    self._worker_lost(worker)

    def _worker_lost(self, worker: _Worker) -> None:
        """A worker died mid-serve: fail its in-flight requests loudly
        (improve-only memory means nothing else needs repair)."""
        if worker.summary is None:
            worker.summary = {"worker": worker.index, "lost": True}
        for mid, entry in list(self._callbacks.items()):
            if entry[1] != worker.index:
                continue
            reply, _, token_key, rid = self._callbacks.pop(mid)
            if token_key is not None:
                self._client_mids.get(token_key, set()).discard(mid)
            self.errors += 1
            try:
                reply({"id": rid, "ok": False,
                       "error": f"pool worker {worker.index} died "
                                f"mid-request"})
            except Exception:
                pass
        worker.inflight = 0

    # -- control ops -------------------------------------------------------

    def _control(self, index: int, request: dict) -> dict:
        """Blocking round trip of one control op to one worker."""
        worker = self._workers[index]
        if not worker.alive:
            return {"id": request.get("id"), "ok": False,
                    "error": f"pool worker {index} is not running"}
        self._mid += 1
        mid = self._mid
        try:
            worker.conn.send(("handle", mid, request))
            return self._await_reply(worker, mid)
        except (EOFError, OSError):
            self._worker_lost(worker)
            return {"id": request.get("id"), "ok": False,
                    "error": f"pool worker {index} died during a "
                             f"control op"}

    def _await_reply(self, worker: _Worker, mid: int) -> dict:
        """Wait for one specific reply, dispatching everything else."""
        deadline = time.monotonic() + _CONTROL_TIMEOUT_S
        while time.monotonic() < deadline:
            if not worker.conn.poll(0.05):
                continue
            message = worker.conn.recv()
            if message[0] == "reply" and message[1] == mid:
                return message[2]
            self._dispatch(worker, message)
        raise OSError(f"pool worker {worker.index} control-op timeout")

    def _aggregate_stats(self, request: dict) -> dict:
        """``op: stats`` across the pool: summed front-door counters,
        per-worker sections, and the routing/merge section."""
        per_worker: dict[str, dict] = {}
        totals = {"requests": 0, "cache_hits": 0, "errors": self.errors,
                  "busy_rejections": 0}
        for worker in self._workers:
            if not worker.alive:
                per_worker[str(worker.index)] = {"ok": False,
                                                 "error": "not running"}
                continue
            stats = self._control(worker.index, dict(request, id=None))
            per_worker[str(worker.index)] = stats
            if stats.get("ok"):
                for key in ("requests", "cache_hits", "busy_rejections",
                            "errors"):
                    totals[key] += stats.get(key, 0)
        response = {"id": request.get("id"), "ok": True, "op": "stats",
                    **totals,
                    "pool": self.routing_snapshot(),
                    "workers": per_worker}
        if self.obs is not None:
            response["metrics"] = self.obs.metrics_snapshot(self)
        return response

    def routing_snapshot(self) -> dict:
        """Router counters (``op: stats`` ``pool`` section)."""
        return {
            "workers": self.num_workers,
            "live": sum(1 for w in self._workers if w.alive),
            "inflight": [w.inflight for w in self._workers],
            "routed": list(self.routed),
            "affinity_hits": self.affinity_hits,
            "affinity_entries": len(self._affinity),
            "merge_rounds": self.merge_rounds,
            "deltas_pulled": self.deltas_pulled,
            "deltas_shipped": self.deltas_shipped,
            "cross_merge_interval": POOL_CROSS_MERGE_INTERVAL,
            "sticky_slack": POOL_STICKY_SLACK,
        }

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, drain_ms: float = SHUTDOWN_DRAIN_MS) -> dict:
        """Fan the graceful drain out; aggregate the worker summaries.

        Replies workers flush during their drain are still delivered
        (the message pump keeps running until every worker reports
        ``drained`` or dies), so pending callers receive their
        best-so-far answers exactly as with an inline service.
        """
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.conn.send(("drain", float(drain_ms)))
                except OSError:
                    self._worker_lost(worker)
        deadline = time.monotonic() + max(0.0, drain_ms) / 1000.0 + 10.0
        while time.monotonic() < deadline:
            waiting = [w for w in self._workers if w.summary is None
                       and w.process.is_alive()]
            if not waiting:
                break
            for conn in _connection_wait([w.conn for w in waiting],
                                         timeout=0.1):
                worker = self._by_conn[conn]
                try:
                    while conn.poll(0):
                        self._dispatch(worker, conn.recv())
                except (EOFError, OSError):
                    self._worker_lost(worker)
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
            if worker.summary is None:
                worker.summary = {"worker": worker.index, "lost": True}
        if self.obs is not None:
            self.obs.tracer.event(
                "pool_shutdown",
                drained=[w.summary.get("drained") for w in self._workers])
            self.obs.close()
        return {
            "drained": sum(w.summary.get("drained", 0) or 0
                           for w in self._workers),
            "workers": {str(w.index): w.summary for w in self._workers},
            "pool": self.routing_snapshot(),
        }

"""Engine portfolio scheduling: race configurations, share the winnings.

No single engine dominates the synthesis workload: beam returns a
feasible circuit almost immediately but never proves optimality, A* is
the fastest prover on states whose frontier fits in memory, IDA* wins
when it does not (and its transposition proofs persist), and weighted
variants trade proof for speed.  The portfolio runs a request against a
set of :class:`EngineSpec` configurations instead of betting on one:

* **Sequential mode** (:func:`run_portfolio`, the in-process default) runs
  the specs in order with *incumbent threading*: the best feasible cost
  so far is handed to every later A* spec, whose branch-and-bound mode
  (see :func:`repro.core.astar.astar_search`) prunes against it — and,
  via the shared memory's transposition table, against IDA* exhaustion
  proofs.  The first proven-optimal result stops the line.
* **Race mode** (:func:`race_portfolio`) spawns one worker process per
  spec, each seeded from the same on-disk memory snapshot, and cancels
  the stragglers the moment any worker reports a proven-optimal result
  (first-optimal-wins); otherwise the best feasible cost wins.

Either way the portfolio result is the best of its member results on the
same budgets, so it is never worse than the best single engine — the
service acceptance test asserts exactly that.

:func:`run_batch` shards a request list across worker processes; each
worker carries its own warm memory seeded from the snapshot and ships its
store delta back to the parent on exit, so batch traffic keeps fattening
the service memory instead of discarding what the workers learned.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace

from repro.core.astar import SearchConfig, SearchResult, astar_search
from repro.core.beam import BeamConfig, beam_search
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.core.memory import SearchMemory
from repro.exceptions import SearchBudgetExceeded, SynthesisError
from repro.states.qstate import QState
from repro.utils.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    memory_baseline,
    memory_merge_dict,
    memory_to_dict,
    state_from_dict,
    state_to_dict,
)

__all__ = [
    "EngineSpec",
    "PortfolioOutcome",
    "default_portfolio",
    "run_engine_spec",
    "run_portfolio",
    "race_portfolio",
    "run_batch",
]

_ENGINES = ("astar", "idastar", "beam")


@dataclass(frozen=True)
class EngineSpec:
    """One racing lane: an engine plus its lane-specific knobs.

    Everything regime-relevant (canon level, caps, move set, budgets)
    comes from the request's shared :class:`SearchConfig`, so every lane
    attaches to the same :class:`SearchMemory` fingerprint; ``weight``
    (A* heap weight / beam score weight) and ``width`` deliberately sit
    outside the fingerprint — they change which computations run, never
    what stored values mean.
    """

    name: str
    engine: str
    weight: float = 1.0
    width: int = 128

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"choose from {_ENGINES}")


def default_portfolio() -> tuple[EngineSpec, ...]:
    """The standard four lanes, in sequential-mode order.

    Beam runs first because it is cheap and its feasible cost arms the
    branch-and-bound pruning of the A* lane that follows; IDA* covers the
    frontier-bound regime (and deposits reusable exhaustion proofs);
    weighted A* is the anytime last resort, also incumbent-bounded.
    """
    return (
        EngineSpec("beam", "beam", weight=1.5, width=128),
        EngineSpec("astar", "astar"),
        EngineSpec("idastar", "idastar"),
        EngineSpec("astar-w2", "astar", weight=2.0),
    )


@dataclass
class PortfolioOutcome:
    """Best result across the lanes plus the per-lane audit trail."""

    result: SearchResult | None
    winner: str | None
    attempts: list[dict] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        return self.result is not None

    @property
    def lower_bound(self) -> int:
        """Best proven lower bound across failed lanes (0 if none ran)."""
        return max((a.get("lower_bound", 0) or 0 for a in self.attempts),
                   default=0)


def run_engine_spec(spec: EngineSpec, state: QState, search: SearchConfig,
                    memory: SearchMemory | None = None,
                    incumbent=None) -> SearchResult:
    """Run one lane.  Only A* lanes honor ``incumbent`` (branch-and-bound);
    beam lanes derive their config from ``search`` so every lane shares
    one memory regime."""
    if spec.engine == "astar":
        config = search if spec.weight == search.weight \
            else replace(search, weight=spec.weight)
        return astar_search(state, config, memory=memory,
                            incumbent=incumbent)
    if spec.engine == "idastar":
        return idastar_search(state, IDAStarConfig(search=search),
                              memory=memory)
    beam_config = BeamConfig(
        width=spec.width, heuristic_weight=spec.weight,
        canon_level=search.canon_level, time_limit=search.time_limit,
        max_merge_controls=search.max_merge_controls,
        include_x_moves=search.include_x_moves,
        tie_cap=search.tie_cap, perm_cap=search.perm_cap,
        cache_cap=search.cache_cap, topology=search.topology)
    return beam_search(state, beam_config, memory=memory)


def _better(candidate: SearchResult, best: SearchResult | None) -> bool:
    if best is None:
        return True
    if candidate.cnot_cost != best.cnot_cost:
        return candidate.cnot_cost < best.cnot_cost
    return candidate.optimal and not best.optimal


def run_portfolio(state: QState, search: SearchConfig | None = None,
                  specs: tuple[EngineSpec, ...] | None = None,
                  memory: SearchMemory | None = None) -> PortfolioOutcome:
    """Sequential portfolio with incumbent threading (see module docs)."""
    search = search or SearchConfig()
    specs = specs or default_portfolio()
    best: SearchResult | None = None
    winner: str | None = None
    attempts: list[dict] = []
    for spec in specs:
        incumbent = best if spec.engine == "astar" else None
        start = time.perf_counter()
        try:
            result = run_engine_spec(spec, state, search, memory=memory,
                                     incumbent=incumbent)
        except (SearchBudgetExceeded, SynthesisError) as exc:
            # SynthesisError: a topology-restricted beam lane has no
            # m-flow completion tail and may finish empty-handed — a
            # failed lane, not a failed portfolio
            attempts.append({
                "name": spec.name, "solved": False,
                "lower_bound": getattr(exc, "lower_bound", 0),
                "seconds": round(time.perf_counter() - start, 6),
            })
            continue
        attempts.append({
            "name": spec.name, "solved": True,
            "cnot_cost": result.cnot_cost, "optimal": result.optimal,
            "nodes_expanded": result.stats.nodes_expanded,
            "seconds": round(time.perf_counter() - start, 6),
        })
        if _better(result, best):
            best, winner = result, spec.name
        if best is not None and best.optimal:
            break  # first-optimal-wins: later lanes cannot do better
    return PortfolioOutcome(result=best, winner=winner, attempts=attempts)


# ----------------------------------------------------------------------
# Multi-process racing + batch sharding
# ----------------------------------------------------------------------

def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _load_worker_memory(snapshot_path) -> SearchMemory | None:
    if snapshot_path is None:
        return None
    from repro.service.persistence import load_memory_snapshot
    return load_memory_snapshot(snapshot_path)


def _race_worker(spec: EngineSpec, state_data: dict, search: SearchConfig,
                 snapshot_path, memory, queue) -> None:
    """Race-lane entry point (own process, own warm memory)."""
    start = time.perf_counter()
    payload: dict = {"name": spec.name, "solved": False}
    try:
        if memory is None:
            memory = _load_worker_memory(snapshot_path)
        result = run_engine_spec(spec, state_from_dict(state_data), search,
                                 memory=memory)
        payload.update(solved=True, cnot_cost=result.cnot_cost,
                       optimal=result.optimal,
                       nodes_expanded=result.stats.nodes_expanded,
                       circuit=circuit_to_dict(result.circuit))
    except SearchBudgetExceeded as exc:
        payload["lower_bound"] = exc.lower_bound
    except Exception as exc:  # pragma: no cover - defensive lane isolation
        payload["error"] = repr(exc)
    payload["seconds"] = round(time.perf_counter() - start, 6)
    queue.put(payload)


def race_portfolio(state: QState, search: SearchConfig | None = None,
                   specs: tuple[EngineSpec, ...] | None = None,
                   snapshot_path=None, memory: SearchMemory | None = None,
                   lane_timeout: float = 600.0) -> PortfolioOutcome:
    """Process-parallel portfolio with first-optimal-wins cancellation.

    One worker process per spec.  Under the ``fork`` start method a live
    ``memory`` is handed to the racers directly — each lane inherits a
    copy-on-write view of the parent's warm memory for free, instead of
    re-reading and re-keying the snapshot on every request; otherwise
    (or when no memory is given) each lane seeds itself from
    ``snapshot_path``.  The moment a lane reports a proven-optimal
    result, the remaining lanes are terminated — their partial work is
    discarded, the winning cost cannot be improved.  If no lane proves
    optimality the best feasible cost wins.  Worker results travel as
    serialized circuits, so no live search object crosses the process
    boundary.
    """
    search = search or SearchConfig()
    specs = specs or default_portfolio()
    ctx = _mp_context()
    queue = ctx.Queue()
    state_data = state_to_dict(state)
    lane_memory = memory if ctx.get_start_method() == "fork" else None
    procs = [ctx.Process(target=_race_worker,
                         args=(spec, state_data, search, snapshot_path,
                               lane_memory, queue),
                         daemon=True)
             for spec in specs]
    for proc in procs:
        proc.start()
    payloads: list[dict] = []
    try:
        for _ in range(len(procs)):
            try:
                payload = queue.get(timeout=lane_timeout)
            except Exception:  # queue.Empty: stragglers get terminated
                break
            payloads.append(payload)
            if payload.get("optimal"):
                break  # first-optimal-wins: cancel the remaining lanes
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
    best: SearchResult | None = None
    winner: str | None = None
    for payload in payloads:
        if not payload.get("solved"):
            continue
        candidate = SearchResult(
            circuit=circuit_from_dict(payload["circuit"]),
            cnot_cost=payload["cnot_cost"],
            optimal=payload["optimal"])
        if _better(candidate, best):
            best, winner = candidate, payload["name"]
    attempts = [{k: v for k, v in p.items() if k != "circuit"}
                for p in payloads]
    return PortfolioOutcome(result=best, winner=winner, attempts=attempts)


def _synthesize_one(rid, state: QState, search: SearchConfig,
                    specs: tuple[EngineSpec, ...],
                    memory: SearchMemory | None,
                    with_circuit: bool) -> dict:
    start = time.perf_counter()
    outcome = run_portfolio(state, search, specs, memory=memory)
    row: dict = {"id": rid, "solved": outcome.solved,
                 "seconds": round(time.perf_counter() - start, 6)}
    if outcome.solved:
        assert outcome.result is not None
        row.update(cnot_cost=outcome.result.cnot_cost,
                   optimal=outcome.result.optimal, engine=outcome.winner)
        if with_circuit:
            row["circuit"] = circuit_to_dict(outcome.result.circuit)
    else:
        row["lower_bound"] = outcome.lower_bound
    return row


def _batch_worker(shard: list[tuple[object, dict]], search: SearchConfig,
                  specs: tuple[EngineSpec, ...], snapshot_path,
                  with_circuit: bool, queue) -> None:
    """Batch-shard entry point: warm memory in, results + delta out."""
    memory = _load_worker_memory(snapshot_path) or SearchMemory()
    # ship home only what this worker *learns* — the snapshot's own
    # entries are already in the parent, and re-serializing them would
    # make the exit delta scale with the snapshot instead of the shard
    baseline = memory_baseline(memory)
    rows = []
    for rid, state_data in shard:
        try:
            rows.append(_synthesize_one(rid, state_from_dict(state_data),
                                        search, specs, memory,
                                        with_circuit))
        except Exception as exc:  # one bad row must not sink the shard
            rows.append({"id": rid, "solved": False, "error": repr(exc)})
    try:
        delta = memory_to_dict(memory, since=baseline)
    except Exception:  # unserializable regime: results still count
        delta = None
    queue.put({"rows": rows, "memory": delta})


def run_batch(requests: list[tuple[object, QState]],
              search: SearchConfig | None = None,
              specs: tuple[EngineSpec, ...] | None = None,
              snapshot_path=None, workers: int = 1,
              memory: SearchMemory | None = None,
              with_circuit: bool = False,
              shard_timeout: float = 3600.0) -> list[dict]:
    """Shard ``requests`` (id, state) across workers; one row dict each.

    ``workers <= 1`` runs in-process against ``memory`` (loaded from
    ``snapshot_path`` when not supplied).  With more workers, requests are
    sharded round-robin; every worker seeds its own memory from the
    snapshot and ships its learned entries back, which are merged into
    ``memory`` (when given) so the parent keeps everything the batch
    learned.  Rows come back in request order regardless of sharding.
    """
    search = search or SearchConfig()
    specs = specs or default_portfolio()
    if workers <= 1 or len(requests) <= 1:
        if memory is None:
            memory = _load_worker_memory(snapshot_path) or SearchMemory()
        return [_synthesize_one(rid, state, search, specs, memory,
                                with_circuit)
                for rid, state in requests]

    workers = min(workers, len(requests))
    shards: list[list[tuple[object, dict]]] = [[] for _ in range(workers)]
    order: dict = {}
    for pos, (rid, state) in enumerate(requests):
        order[pos] = rid
        shards[pos % workers].append((pos, state_to_dict(state)))
    ctx = _mp_context()
    queue = ctx.Queue()
    procs = [ctx.Process(target=_batch_worker,
                         args=(shard, search, specs, snapshot_path,
                               with_circuit, queue),
                         daemon=True)
             for shard in shards if shard]
    for proc in procs:
        proc.start()
    by_pos: dict[int, dict] = {}
    try:
        for _ in range(len(procs)):
            try:
                payload = queue.get(timeout=shard_timeout)
            except Exception:
                break
            for row in payload["rows"]:
                by_pos[row["id"]] = row
            if memory is not None and payload.get("memory") is not None:
                memory_merge_dict(memory, payload["memory"])
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
    rows = []
    for pos, rid in order.items():
        row = by_pos.get(pos)
        if row is None:  # a shard died: fail its rows loudly, keep order
            row = {"id": pos, "solved": False,
                   "error": "batch worker did not report"}
        rows.append(dict(row, id=rid))
    return rows

"""Engine portfolio scheduling: race configurations, share the winnings.

No single engine dominates the synthesis workload: beam returns a
feasible circuit almost immediately but never proves optimality, A* is
the fastest prover on states whose frontier fits in memory, IDA* wins
when it does not (and its transposition proofs persist), and weighted
variants trade proof for speed.  The portfolio runs a request against a
set of :class:`EngineSpec` configurations instead of betting on one:

* **Interleaved mode** (:func:`interleaved_portfolio`, the anytime
  scheduler built on the stepwise :class:`~repro.core.engine.EngineRun`
  protocol) time-slices *all* lanes round-robin inside one process: every
  lane advances a few hundred expansions per turn, any feasible cost one
  lane finds is injected into every other lane's branch-and-bound **the
  moment it appears** (beam exposes intermediate incumbents while still
  running), and the first proven-optimal outcome — a lane solving, or a
  lane exhausting its space under the shared incumbent bound — cancels
  the rest.  Race-mode semantics with zero process overhead, which is
  what the single-CPU serving host actually needs, plus wall-clock
  ``deadline_ms`` support: when the deadline expires the scheduler
  cancels the remaining lanes and returns the best feasible circuit seen
  so far instead of raising.
* **Sequential mode** (:func:`run_portfolio`, the historical default)
  runs the specs in order with *incumbent threading*: the best feasible
  cost so far is handed to every later A* spec, whose branch-and-bound
  mode (see :func:`repro.core.astar.astar_search`) prunes against it —
  and, via the shared memory's transposition table, against IDA*
  exhaustion proofs.  The first proven-optimal result stops the line.
* **Race mode** (:func:`race_portfolio`) spawns one worker process per
  spec, each seeded from the same on-disk memory snapshot, and cancels
  the stragglers the moment any worker reports a proven-optimal result
  (first-optimal-wins); otherwise the best feasible cost wins.

Every mode is best-of over its member results on the same budgets, so the
portfolio is never worse than the best single engine — the service
acceptance test asserts exactly that, and ``benchmarks/bench_portfolio.py``
additionally asserts sequential and interleaved return identical costs.

**Adaptive lane ordering.**  When a :class:`~repro.core.memory
.SearchMemory` is supplied, both in-process modes order their lanes by
historical win rate (:func:`order_specs`): per-lane win/feasible/timeout
counters accumulate in ``memory.lane_stats``, persist inside memory
snapshots, and ties break by the caller's spec order, so runs stay
reproducible.  Ordering only changes *which lane gets CPU first* — the
best-of result contract is order-independent.

:func:`run_batch` shards a request list across worker processes; each
worker carries its own warm memory seeded from the snapshot and ships its
store delta back to the parent on exit, so batch traffic keeps fattening
the service memory instead of discarding what the workers learned.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace

from repro.constants import PORTFOLIO_SLICE_EXPANSIONS
from repro.core.astar import AStarRun, SearchConfig, SearchResult, \
    astar_search
from repro.core.beam import BeamConfig, BeamRun
from repro.core.engine import EngineRun, RunStatus
from repro.core.idastar import IDAStarConfig, IDAStarRun
from repro.core.memory import SearchMemory
from repro.exceptions import SearchBudgetExceeded, SynthesisError
from repro.states.qstate import QState
from repro.utils.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    memory_baseline,
    memory_merge_dict,
    memory_to_dict,
    state_from_dict,
    state_to_dict,
)
from repro.utils.timing import Stopwatch

__all__ = [
    "EngineSpec",
    "PortfolioOutcome",
    "LaneScheduler",
    "default_portfolio",
    "order_specs",
    "autotune_specs",
    "build_engine_run",
    "run_engine_spec",
    "run_portfolio",
    "interleaved_portfolio",
    "run_mode_portfolio",
    "race_portfolio",
    "run_batch",
]

_ENGINES = ("astar", "idastar", "beam")


@dataclass(frozen=True)
class EngineSpec:
    """One racing lane: an engine plus its lane-specific knobs.

    Everything regime-relevant (canon level, caps, move set, budgets)
    comes from the request's shared :class:`SearchConfig`, so every lane
    attaches to the same :class:`SearchMemory` fingerprint; ``weight``
    (A* heap weight / beam score weight) and ``width`` deliberately sit
    outside the fingerprint — they change which computations run, never
    what stored values mean.
    """

    name: str
    engine: str
    weight: float = 1.0
    width: int = 128

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"choose from {_ENGINES}")


def default_portfolio() -> tuple[EngineSpec, ...]:
    """The standard four lanes, in sequential-mode order.

    Beam runs first because it is cheap and its feasible cost arms the
    branch-and-bound pruning of the A* lane that follows; IDA* covers the
    frontier-bound regime (and deposits reusable exhaustion proofs);
    weighted A* is the anytime last resort, also incumbent-bounded.
    With lane history (see :func:`order_specs`) the order adapts to the
    traffic instead.
    """
    return (
        EngineSpec("beam", "beam", weight=1.5, width=128),
        EngineSpec("astar", "astar"),
        EngineSpec("idastar", "idastar"),
        EngineSpec("astar-w2", "astar", weight=2.0),
    )


def order_specs(specs: tuple[EngineSpec, ...],
                memory: SearchMemory | None, *,
                anytime_first: bool = False) -> tuple[EngineSpec, ...]:
    """Order lanes by historical win rate (adaptive portfolio ordering).

    Win rate is the Laplace-smoothed ``(wins + 1) / (runs + 2)`` from
    ``memory.lane_stats``; the tie-break is the caller's original spec
    order, via a stable sort, so two runs over the same history schedule
    lanes identically — reproducibility is part of the contract.  The
    smoothing is what keeps the ordering *adaptive* rather than frozen:
    sequential first-optimal-wins never runs the lanes behind the
    winner, so a raw ``wins / runs`` would pin an early winner first
    forever (everyone else stays at 0/0).  Smoothed, a never-run lane
    scores the neutral 0.5 — ahead of lanes that run and keep losing,
    behind a leader with a real winning record — so mediocre leaders get
    challenged and newly added specs are not born last.

    ``anytime_first`` is the *sequential* mode's constraint: its
    incumbent threading only works front-to-back, so an anytime (beam)
    lane must stay ahead of the exact lanes it arms — reordering an A*
    lane before every feasible-producing lane would strip it of its
    incumbent, and a budget-bound row would then lose its optimality
    proof (or its whole result) to the reordering.  Under the
    constraint, beam lanes keep the front block and each block reorders
    internally by win rate.  The interleaved scheduler needs no such
    constraint (incumbents are injected live, whatever the order), so it
    uses the unconstrained ordering.

    Scope of the guarantee: with per-lane budgets fixed, ordering never
    changes any individual lane's *cost* and the portfolio stays best-of
    over the lanes that complete.  Whether a budget-*bound* exact lane
    completes can still depend on what earlier lanes deposited in a
    shared memory (e.g. IDA* exhaustion proofs arming A* pruning), so on
    such rows two different histories may prove different amounts within
    the same budgets — deterministically per history, never unsoundly.
    """
    if memory is None or not memory.lane_stats:
        return tuple(specs)

    def win_rate(spec: EngineSpec) -> float:
        row = memory.lane_stats.get(spec.name) or {}
        return (row.get("wins", 0) + 1.0) / (row.get("runs", 0) + 2.0)

    indexed = sorted(range(len(specs)),
                     key=lambda i: (-win_rate(specs[i]), i))
    ordered = [specs[i] for i in indexed]
    if anytime_first:
        ordered = [s for s in ordered if s.engine == "beam"] + \
            [s for s in ordered if s.engine != "beam"]
    return tuple(ordered)


@dataclass
class PortfolioOutcome:
    """Best result across the lanes plus the per-lane audit trail."""

    result: SearchResult | None
    winner: str | None
    attempts: list[dict] = field(default_factory=list)
    #: interleaved mode only: the wall-clock deadline expired and the
    #: remaining lanes were cancelled — ``result`` is the best feasible
    #: circuit found before the cutoff (or ``None`` if none was)
    deadline_expired: bool = False

    @property
    def solved(self) -> bool:
        return self.result is not None

    @property
    def lower_bound(self) -> int:
        """Best proven lower bound across failed lanes (0 if none ran)."""
        return max((a.get("lower_bound", 0) or 0 for a in self.attempts),
                   default=0)


def build_engine_run(spec: EngineSpec, state: QState, search: SearchConfig,
                     memory: SearchMemory | None = None,
                     incumbent=None,
                     pdb_tier: str = "admissible") -> EngineRun:
    """Arm one lane as a stepwise :class:`~repro.core.engine.EngineRun`.

    Lane configs derive from the shared ``search`` so every lane attaches
    to the same memory regime; ``incumbent`` seeds branch-and-bound for
    A* lanes only (the sequential mode's historical contract — in the
    interleaved scheduler every lane instead receives incumbents live via
    ``inject_incumbent``).  ``pdb_tier`` selects the IDA* lane's
    pattern-database root-bound tier (``"learned"`` only for the
    service's ``fast`` mode — its inadmissible seed trades the optimality
    proof for fewer deepening rounds; exact modes keep the sound
    default).
    """
    if spec.engine == "astar":
        config = search if spec.weight == search.weight \
            else replace(search, weight=spec.weight)
        return AStarRun(state, config, memory=memory, incumbent=incumbent)
    if spec.engine == "idastar":
        return IDAStarRun(state,
                          IDAStarConfig(search=search, pdb_tier=pdb_tier),
                          memory=memory)
    beam_config = BeamConfig(
        width=spec.width, heuristic_weight=spec.weight,
        canon_level=search.canon_level, time_limit=search.time_limit,
        max_merge_controls=search.max_merge_controls,
        include_x_moves=search.include_x_moves,
        tie_cap=search.tie_cap, perm_cap=search.perm_cap,
        cache_cap=search.cache_cap, topology=search.topology,
        profile=search.profile)
    return BeamRun(state, beam_config, memory=memory)


def run_engine_spec(spec: EngineSpec, state: QState, search: SearchConfig,
                    memory: SearchMemory | None = None,
                    incumbent=None) -> SearchResult:
    """Run one lane to completion.  Only A* lanes honor ``incumbent``
    (branch-and-bound); beam lanes derive their config from ``search`` so
    every lane shares one memory regime.

    An A* lane with ``use_kernel=False`` runs the one-shot reference loop
    (stepwise runs are kernel-only): the historical dispatch for callers
    benchmarking the dict-based path through a sequential portfolio.  The
    *interleaved* scheduler has no such fallback — it needs pausable
    runs, so :func:`build_engine_run` rejects non-kernel configs there.
    """
    if spec.engine == "astar" and not search.use_kernel:
        config = search if spec.weight == search.weight \
            else replace(search, weight=spec.weight)
        return astar_search(state, config, memory=memory,
                            incumbent=incumbent)
    return build_engine_run(spec, state, search, memory=memory,
                            incumbent=incumbent).run_to_completion()


def _better(candidate: SearchResult, best: SearchResult | None) -> bool:
    if best is None:
        return True
    if candidate.cnot_cost != best.cnot_cost:
        return candidate.cnot_cost < best.cnot_cost
    return candidate.optimal and not best.optimal


def _record_lane_outcomes(memory: SearchMemory | None, attempts: list[dict],
                          winner: str | None) -> None:
    """Feed the adaptive-ordering counters (no-op without a memory)."""
    if memory is None:
        return
    for attempt in attempts:
        memory.record_lane_outcome(
            attempt["name"],
            won=(winner is not None and attempt["name"] == winner),
            # interleaved audit rows carry an explicit feasible flag
            # (anytime lanes can hold a circuit without terminating
            # SOLVED — cancelled beam after a harvest or deadline flush);
            # sequential rows fall back to solved, where the two coincide
            feasible=bool(attempt.get("feasible",
                                      attempt.get("solved"))),
            timeout=bool(attempt.get("timeout")))


def run_portfolio(state: QState, search: SearchConfig | None = None,
                  specs: tuple[EngineSpec, ...] | None = None,
                  memory: SearchMemory | None = None) -> PortfolioOutcome:
    """Sequential portfolio with incumbent threading (see module docs)."""
    search = search or SearchConfig()
    specs = order_specs(specs or default_portfolio(), memory,
                        anytime_first=True)
    best: SearchResult | None = None
    winner: str | None = None
    attempts: list[dict] = []
    for spec in specs:
        incumbent = best if spec.engine == "astar" else None
        start = time.perf_counter()
        try:
            result = run_engine_spec(spec, state, search, memory=memory,
                                     incumbent=incumbent)
        except (SearchBudgetExceeded, SynthesisError) as exc:
            # SynthesisError: a topology-restricted beam lane has no
            # m-flow completion tail and may finish empty-handed — a
            # failed lane, not a failed portfolio
            attempts.append({
                "name": spec.name, "solved": False,
                "timeout": isinstance(exc, SearchBudgetExceeded),
                "lower_bound": getattr(exc, "lower_bound", 0),
                "seconds": round(time.perf_counter() - start, 6),
            })
            continue
        attempts.append({
            "name": spec.name, "solved": True,
            "cnot_cost": result.cnot_cost, "optimal": result.optimal,
            "nodes_expanded": result.stats.nodes_expanded,
            "seconds": round(time.perf_counter() - start, 6),
        })
        if _better(result, best):
            best, winner = result, spec.name
        if best is not None and best.optimal:
            break  # first-optimal-wins: later lanes cannot do better
    _record_lane_outcomes(memory, attempts, winner)
    return PortfolioOutcome(result=best, winner=winner, attempts=attempts)


# ----------------------------------------------------------------------
# Interleaved in-process scheduler (anytime, deadline-aware)
# ----------------------------------------------------------------------

@dataclass
class _Lane:
    spec: EngineSpec
    run: EngineRun
    budget: int = PORTFOLIO_SLICE_EXPANSIONS
    seconds: float = 0.0
    slices: int = 0


class LaneScheduler:
    """The lane/slice/incumbent/settle machinery behind the interleaved
    portfolio, reusable one round at a time.

    :func:`interleaved_portfolio` drives an instance to completion for
    the single-request path; the cross-request scheduler
    (:mod:`repro.service.scheduler`) instead interleaves ``run_round``
    calls across many instances — one per in-flight request — so a heavy
    request no longer blocks the others.  Both drivers get identical
    semantics because all policy lives here:

    * every active lane advances ``budget`` node expansions per round
      (per-lane budgets; uniform by default);
    * the best feasible cost across lanes (including beam's *anytime*
      intermediates) is injected into every other lane's
      branch-and-bound the moment it improves;
    * the first proven-optimal outcome — a lane solving with a proof, or
      a lane exhausting its space under the shared incumbent bound
      (:class:`~repro.core.engine.RunStatus` ``PROVEN``) — ends the
      schedule;
    * when the wall-clock deadline expires first, ``run_round`` returns
      ``False`` with ``deadline_expired`` set and :meth:`finish` returns
      the best feasible circuit found so far (after letting lanes with a
      cheap completion tail flush) instead of raising.

    The deadline stopwatch starts at construction and is *never*
    suspended — under the cross-request scheduler a session's deadline
    keeps running while other sessions hold the CPU, which is exactly
    what a caller-facing latency bound means.  Lane runs are stamped
    with ``tag`` (an opaque owner token) for per-session accounting, and
    ``expansions`` accumulates the true per-slice expansion counts for
    fair-share bookkeeping.
    """

    def __init__(self, state: QState, search: SearchConfig,
                 specs: tuple[EngineSpec, ...],
                 memory: SearchMemory | None = None,
                 deadline_ms: float | None = None,
                 slice_expansions: int = PORTFOLIO_SLICE_EXPANSIONS,
                 slice_budgets: dict[str, int] | None = None,
                 tag: object | None = None, obs=None,
                 pdb_tier: str = "admissible") -> None:
        self.memory = memory
        #: :class:`repro.obs.ServiceObs` or ``None`` — slice/incumbent/
        #: settle hooks only; never consulted in the expansion hot loop
        self.obs = obs
        # no deadline -> no Stopwatch at all, so step() keeps its
        # deadline-is-None fast path in the per-expansion hot loop
        self.deadline = None if deadline_ms is None \
            else Stopwatch(max(0.0, deadline_ms) / 1000.0)
        self.lanes = []
        for spec in specs:
            run = build_engine_run(spec, state, search, memory=memory,
                                   pdb_tier=pdb_tier)
            run.tag = tag
            budget = max(1, int((slice_budgets or {}).get(
                spec.name, slice_expansions)))
            self.lanes.append(_Lane(spec, run, budget=budget))
        self.active: list[_Lane] = list(self.lanes)
        self.best: SearchResult | None = None
        self.winner: str | None = None
        self.attempts: list[dict] = []
        self.proven = False
        self.deadline_expired = False
        self.expansions = 0
        self.tag = tag

    @property
    def done(self) -> bool:
        """No further round would advance anything."""
        return not self.active or self.proven or self.deadline_expired

    def _expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def _harvest(self, lane: _Lane) -> None:
        """Pull the lane's best feasible circuit; broadcast improvements."""
        feasible = lane.run.best_feasible()
        if feasible is not None and _better(feasible, self.best):
            self.best, self.winner = feasible, lane.spec.name
            injected = 0
            for other in self.lanes:
                if other is not lane and not other.run.status.terminal:
                    other.run.inject_incumbent(self.best.cnot_cost)
                    injected += 1
            if self.obs is not None and injected:
                self.obs.incumbent(self.tag, lane.spec.name,
                                   self.best.cnot_cost, injected=injected)

    def _settle(self, lane: _Lane, status: RunStatus) -> None:
        """Record one terminated (or cancelled) lane's audit row."""
        row: dict = {"name": lane.spec.name, "status": status.value,
                     "solved": False,
                     "feasible": lane.run.best_feasible() is not None,
                     "nodes_expanded": lane.run.stats.nodes_expanded,
                     "seconds": round(lane.seconds, 6),
                     "slices": lane.slices}
        if status is RunStatus.SOLVED:
            result = lane.run.result()
            row.update(solved=True, cnot_cost=result.cnot_cost,
                       optimal=result.optimal)
            if result.optimal:
                self.proven = True
        elif status is RunStatus.PROVEN:
            # the lane exhausted everything cheaper than the shared
            # incumbent: whoever holds that incumbent holds the optimum
            bound = lane.run.incumbent_bound
            row["lower_bound"] = bound
            if self.best is not None and bound is not None and \
                    self.best.cnot_cost <= bound:
                self.best = replace(self.best, optimal=True)
                self.proven = True
        elif status is RunStatus.EXHAUSTED:
            error = lane.run.error
            row["timeout"] = isinstance(error, SearchBudgetExceeded)
            row["lower_bound"] = getattr(error, "lower_bound", 0)
        self.attempts.append(row)
        if self.obs is not None:
            # engine profiling promotion: the lane's SearchStats (and its
            # profile phase timers, when enabled) become span attributes
            self.obs.lane_settled(self.tag, lane.spec.name, status.value,
                                  stats=lane.run.stats,
                                  feasible=row["feasible"])

    def run_round(self) -> bool:
        """Advance every active lane one slice; ``True`` while running.

        Returns ``False`` once the schedule is over — proven, every lane
        settled, or the deadline expired — after which the caller must
        call :meth:`finish` exactly once to collect the outcome.
        """
        if not self.active or self.proven:
            return False
        if self._expired():
            self.deadline_expired = True
            return False
        for lane in list(self.active):
            start = time.perf_counter()
            # the deadline rides into the slice so a heavy instance
            # overshoots the cutoff by one expansion, not a whole slice
            status = lane.run.step(lane.budget, deadline=self.deadline)
            lane.seconds += time.perf_counter() - start
            lane.slices += 1
            self.expansions += lane.run.last_slice_expansions
            if self.obs is not None:
                self.obs.lane_slice(self.tag, lane.spec.name,
                                    lane.run.last_slice_expansions,
                                    status.value)
            self._harvest(lane)
            if status is RunStatus.RUNNING:
                if self._expired():
                    self.deadline_expired = True
                    return False
                continue
            self.active.remove(lane)
            self._settle(lane, status)
            if self.proven or self._expired():
                self.deadline_expired = not self.proven
                return False
        return bool(self.active) and not self.proven

    def finish(self) -> PortfolioOutcome:
        """Cancel what is left, settle the audit trail, build the outcome.

        Idempotent by construction only if called once — drivers call it
        exactly once, after :meth:`run_round` returns ``False`` (or to
        cut a schedule short, e.g. the service's shutdown drain).
        """
        for lane in self.active:
            if lane.run.status.terminal:
                continue
            # a cancelled beam may still hold the best circuit
            self._harvest(lane)
            if self.deadline_expired and self.best is None:
                # anytime contract: before giving up empty-handed, let
                # lanes with a cheap completion (beam's m-flow tail)
                # finish their current frontier into a valid circuit
                flushed = lane.run.flush_feasible()
                if flushed is not None and _better(flushed, self.best):
                    self.best, self.winner = flushed, lane.spec.name
            lane.run.cancel()
            self._settle(lane, RunStatus.CANCELLED)
        self.active = []
        _record_lane_outcomes(self.memory, self.attempts, self.winner)
        if self.obs is not None and self.winner is not None:
            self.obs.lane_won(self.tag, self.winner,
                              None if self.best is None
                              else self.best.cnot_cost)
        return PortfolioOutcome(result=self.best, winner=self.winner,
                                attempts=self.attempts,
                                deadline_expired=self.deadline_expired)

    def abort(self) -> None:
        """Cancel every lane and discard the schedule (no outcome).

        The cross-request scheduler's per-request cancellation path
        (client gone): lanes are cancelled so their generators release
        search state, but nothing is flushed and *no lane statistics are
        recorded* — an abandoned request must not teach the adaptive
        ordering anything.
        """
        for lane in self.active:
            if not lane.run.status.terminal:
                lane.run.cancel()
        self.active = []
        self.proven = True  # mark done for any late run_round caller


def interleaved_portfolio(
        state: QState, search: SearchConfig | None = None,
        specs: tuple[EngineSpec, ...] | None = None,
        memory: SearchMemory | None = None,
        deadline_ms: float | None = None,
        slice_expansions: int = PORTFOLIO_SLICE_EXPANSIONS,
        pdb_tier: str = "admissible",
) -> PortfolioOutcome:
    """Round-robin time-sliced portfolio in one process (see module docs).

    A thin driver over :class:`LaneScheduler` — run rounds until the
    schedule is over, then settle.  All slicing/incumbent/deadline
    semantics live in the class (shared verbatim with the cross-request
    scheduler); the cost contract is unchanged: because lanes only
    exchange *incumbent costs* (sound pruning bounds) and cancellation,
    the returned cost equals the sequential portfolio's on the same
    budgets — asserted by ``benchmarks/bench_portfolio.py``.
    """
    scheduler = LaneScheduler(
        state, search or SearchConfig(),
        order_specs(specs or default_portfolio(), memory),
        memory=memory, deadline_ms=deadline_ms,
        slice_expansions=slice_expansions, pdb_tier=pdb_tier)
    while scheduler.run_round():
        pass
    return scheduler.finish()


def autotune_specs(specs: tuple[EngineSpec, ...],
                   memory: SearchMemory | None,
                   slice_expansions: int = PORTFOLIO_SLICE_EXPANSIONS,
                   ) -> tuple[tuple[EngineSpec, ...], dict[str, int]]:
    """Lane auto-tuning from persisted history → (specs, slice budgets).

    Derives the interleaved scheduler's per-lane slice budgets from the
    win/feasible/timeout counters in ``memory.lane_stats``: a lane's
    budget scales with its Laplace-smoothed ``(wins + 1) / (runs + 2)``
    win rate, normalized so the neutral never-run score of 0.5 maps to
    exactly ``slice_expansions`` and clamped to ``[LANE_TUNE_MIN,
    LANE_TUNE_MAX]`` multiples — historically winning lanes get more
    expansions per round, losing lanes fewer, and no lane is ever
    silenced by tuning alone.  A lane is *dropped* only when it is
    chronically useless: at least ``LANE_DROP_MIN_RUNS`` recorded runs
    with zero wins *and* zero feasible circuits (it has paid slices on
    every request and never contributed so much as an incumbent).  If
    the filter would drop every lane, the original set is kept.

    Determinism and order-independence: budgets are pure per-lane
    functions of the counters, lane order comes from :func:`order_specs`
    (stable, reproducible), and slice-budget changes never alter a
    lane's *result* — only its CPU share (asserted differentially by the
    portfolio bench across slice sizes).  The multi-request scheduler
    applies this tuning; the single-request paths deliberately do not,
    keeping their historical schedules bit-identical.
    """
    from repro.constants import (
        LANE_DROP_MIN_RUNS,
        LANE_TUNE_MAX,
        LANE_TUNE_MIN,
    )

    ordered = order_specs(specs, memory)
    if memory is None or not memory.lane_stats:
        return ordered, {s.name: slice_expansions for s in ordered}
    kept: list[EngineSpec] = []
    budgets: dict[str, int] = {}
    for spec in ordered:
        row = memory.lane_stats.get(spec.name) or {}
        runs = int(row.get("runs", 0))
        wins = int(row.get("wins", 0))
        feasible = int(row.get("feasible", 0))
        if runs >= LANE_DROP_MIN_RUNS and wins == 0 and feasible == 0:
            continue
        rate = (wins + 1.0) / (runs + 2.0)
        multiplier = min(LANE_TUNE_MAX, max(LANE_TUNE_MIN, 2.0 * rate))
        kept.append(spec)
        budgets[spec.name] = max(1, int(round(slice_expansions
                                              * multiplier)))
    if not kept:
        return ordered, {s.name: slice_expansions for s in ordered}
    return tuple(kept), budgets


# ----------------------------------------------------------------------
# Multi-process racing + batch sharding
# ----------------------------------------------------------------------

def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _load_worker_memory(snapshot_path) -> SearchMemory | None:
    if snapshot_path is None:
        return None
    from repro.service.persistence import load_memory_snapshot
    return load_memory_snapshot(snapshot_path)


def _race_worker(spec: EngineSpec, state_data: dict, search: SearchConfig,
                 snapshot_path, memory, queue) -> None:
    """Race-lane entry point (own process, own warm memory)."""
    start = time.perf_counter()
    payload: dict = {"name": spec.name, "solved": False}
    try:
        if memory is None:
            memory = _load_worker_memory(snapshot_path)
        result = run_engine_spec(spec, state_from_dict(state_data), search,
                                 memory=memory)
        payload.update(solved=True, cnot_cost=result.cnot_cost,
                       optimal=result.optimal,
                       nodes_expanded=result.stats.nodes_expanded,
                       circuit=circuit_to_dict(result.circuit))
    except SearchBudgetExceeded as exc:
        payload["lower_bound"] = exc.lower_bound
    except Exception as exc:  # pragma: no cover - defensive lane isolation
        payload["error"] = repr(exc)
    payload["seconds"] = round(time.perf_counter() - start, 6)
    queue.put(payload)


def race_portfolio(state: QState, search: SearchConfig | None = None,
                   specs: tuple[EngineSpec, ...] | None = None,
                   snapshot_path=None, memory: SearchMemory | None = None,
                   lane_timeout: float = 600.0) -> PortfolioOutcome:
    """Process-parallel portfolio with first-optimal-wins cancellation.

    One worker process per spec.  Under the ``fork`` start method a live
    ``memory`` is handed to the racers directly — each lane inherits a
    copy-on-write view of the parent's warm memory for free, instead of
    re-reading and re-keying the snapshot on every request; otherwise
    (or when no memory is given) each lane seeds itself from
    ``snapshot_path``.  The moment a lane reports a proven-optimal
    result, the remaining lanes are terminated — their partial work is
    discarded, the winning cost cannot be improved.  If no lane proves
    optimality the best feasible cost wins.  Worker results travel as
    serialized circuits, so no live search object crosses the process
    boundary.

    On a host with one CPU this mode only adds process overhead — prefer
    :func:`interleaved_portfolio`, which delivers the same cancellation
    semantics inside a single process.
    """
    search = search or SearchConfig()
    specs = specs or default_portfolio()
    ctx = _mp_context()
    queue = ctx.Queue()
    state_data = state_to_dict(state)
    lane_memory = memory if ctx.get_start_method() == "fork" else None
    procs = [ctx.Process(target=_race_worker,
                         args=(spec, state_data, search, snapshot_path,
                               lane_memory, queue),
                         daemon=True)
             for spec in specs]
    for proc in procs:
        proc.start()
    payloads: list[dict] = []
    try:
        for _ in range(len(procs)):
            try:
                payload = queue.get(timeout=lane_timeout)
            except Exception:  # queue.Empty: stragglers get terminated
                break
            payloads.append(payload)
            if payload.get("optimal"):
                break  # first-optimal-wins: cancel the remaining lanes
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
    best: SearchResult | None = None
    winner: str | None = None
    for payload in payloads:
        if not payload.get("solved"):
            continue
        candidate = SearchResult(
            circuit=circuit_from_dict(payload["circuit"]),
            cnot_cost=payload["cnot_cost"],
            optimal=payload["optimal"])
        if _better(candidate, best):
            best, winner = candidate, payload["name"]
    attempts = [{k: v for k, v in p.items() if k != "circuit"}
                for p in payloads]
    return PortfolioOutcome(result=best, winner=winner, attempts=attempts)


def run_mode_portfolio(state: QState, search: SearchConfig,
                       specs: tuple[EngineSpec, ...],
                       memory: SearchMemory | None, mode: str,
                       deadline_ms: float | None,
                       pdb_tier: str = "admissible") -> PortfolioOutcome:
    """Dispatch to the in-process scheduler a request asked for.

    The single policy point shared by the server's ``exact`` path and the
    batch workers, so serve and batch can never drift apart: a
    ``deadline_ms`` forces the interleaved scheduler — it is the only
    in-process mode that can honor a wall-clock cutoff with a best-so-far
    answer (the sequential line would have to interrupt a monolithic
    lane).
    """
    if mode == "interleaved" or deadline_ms is not None:
        return interleaved_portfolio(state, search, specs, memory=memory,
                                     deadline_ms=deadline_ms,
                                     pdb_tier=pdb_tier)
    return run_portfolio(state, search, specs, memory=memory)


def _synthesize_one(rid, state: QState, search: SearchConfig,
                    specs: tuple[EngineSpec, ...],
                    memory: SearchMemory | None,
                    with_circuit: bool, mode: str = "sequential",
                    deadline_ms: float | None = None) -> dict:
    start = time.perf_counter()
    outcome = run_mode_portfolio(state, search, specs, memory, mode,
                                 deadline_ms)
    row: dict = {"id": rid, "solved": outcome.solved,
                 "seconds": round(time.perf_counter() - start, 6)}
    if outcome.deadline_expired:
        row["deadline_expired"] = True
    if outcome.solved:
        assert outcome.result is not None
        row.update(cnot_cost=outcome.result.cnot_cost,
                   optimal=outcome.result.optimal, engine=outcome.winner)
        if with_circuit:
            row["circuit"] = circuit_to_dict(outcome.result.circuit)
    else:
        row["lower_bound"] = outcome.lower_bound
    return row


def _batch_worker(shard: list[tuple[object, dict, float | None]],
                  search: SearchConfig,
                  specs: tuple[EngineSpec, ...], snapshot_path,
                  with_circuit: bool, mode: str, queue) -> None:
    """Batch-shard entry point: warm memory in, results + delta out."""
    memory = _load_worker_memory(snapshot_path) or SearchMemory()
    # ship home only what this worker *learns* — the snapshot's own
    # entries are already in the parent, and re-serializing them would
    # make the exit delta scale with the snapshot instead of the shard
    baseline = memory_baseline(memory)
    rows = []
    for rid, state_data, row_deadline in shard:
        try:
            rows.append(_synthesize_one(rid, state_from_dict(state_data),
                                        search, specs, memory,
                                        with_circuit, mode, row_deadline))
        except Exception as exc:  # one bad row must not sink the shard
            rows.append({"id": rid, "solved": False, "error": repr(exc)})
    try:
        delta = memory_to_dict(memory, since=baseline)
    except Exception:  # unserializable regime: results still count
        delta = None
    queue.put({"rows": rows, "memory": delta})


def run_batch(requests: list[tuple[object, QState]],
              search: SearchConfig | None = None,
              specs: tuple[EngineSpec, ...] | None = None,
              snapshot_path=None, workers: int = 1,
              memory: SearchMemory | None = None,
              with_circuit: bool = False,
              shard_timeout: float = 3600.0,
              mode: str = "sequential",
              deadline_ms: float | None = None,
              deadline_by_id: dict | None = None) -> list[dict]:
    """Shard ``requests`` (id, state) across workers; one row dict each.

    ``workers <= 1`` runs in-process against ``memory`` (loaded from
    ``snapshot_path`` when not supplied).  With more workers, requests are
    sharded round-robin; every worker seeds its own memory from the
    snapshot and ships its learned entries back, which are merged into
    ``memory`` (when given) so the parent keeps everything the batch
    learned.  Rows come back in request order regardless of sharding.
    ``mode``/``deadline_ms`` select the in-process scheduler per request
    exactly as in :func:`run_mode_portfolio` (a deadline implies the
    interleaved scheduler); ``deadline_by_id`` overrides the batch-wide
    deadline per request id (a request *with* an entry there uses that
    deadline even when the batch-wide default is ``None``).
    """
    search = search or SearchConfig()
    specs = specs or default_portfolio()
    deadline_by_id = deadline_by_id or {}

    def row_deadline(rid) -> float | None:
        return deadline_by_id.get(rid, deadline_ms)

    if workers <= 1 or len(requests) <= 1:
        if memory is None:
            memory = _load_worker_memory(snapshot_path) or SearchMemory()
        return [_synthesize_one(rid, state, search, specs, memory,
                                with_circuit, mode, row_deadline(rid))
                for rid, state in requests]

    workers = min(workers, len(requests))
    shards: list[list[tuple[object, dict, float | None]]] = \
        [[] for _ in range(workers)]
    order: dict = {}
    for pos, (rid, state) in enumerate(requests):
        order[pos] = rid
        shards[pos % workers].append((pos, state_to_dict(state),
                                      row_deadline(rid)))
    ctx = _mp_context()
    queue = ctx.Queue()
    procs = [ctx.Process(target=_batch_worker,
                         args=(shard, search, specs, snapshot_path,
                               with_circuit, mode, queue),
                         daemon=True)
             for shard in shards if shard]
    for proc in procs:
        proc.start()
    by_pos: dict[int, dict] = {}
    try:
        for _ in range(len(procs)):
            try:
                payload = queue.get(timeout=shard_timeout)
            except Exception:
                break
            for row in payload["rows"]:
                by_pos[row["id"]] = row
            if memory is not None and payload.get("memory") is not None:
                memory_merge_dict(memory, payload["memory"])
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
    rows = []
    for pos, rid in order.items():
        row = by_pos.get(pos)
        if row is None:  # a shard died: fail its rows loudly, keep order
            row = {"id": pos, "solved": False,
                   "error": "batch worker did not report"}
        rows.append(dict(row, id=rid))
    return rows

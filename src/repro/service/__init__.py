"""Synthesis service layer: persistence, portfolio scheduling, caching.

Turns the search kernel + persistent :class:`~repro.core.memory.SearchMemory`
into a long-lived synthesis service:

* :mod:`repro.service.persistence` — versioned on-disk snapshots of a
  ``SearchMemory`` (warm-start files), gated by the regime fingerprint;
* :mod:`repro.service.portfolio` — engine portfolio per request
  (sequential incumbent-threading or multi-process first-optimal-wins
  racing) and the sharded batch runner;
* :mod:`repro.service.cache` — exact-hit request cache mapping target
  states to finished :class:`~repro.qsp.workflow.QSPResult` objects;
* :mod:`repro.service.scheduler` — the cross-request expansion
  scheduler: many in-flight requests fair-share slices in one process
  (earliest-deadline-first, round-robin for undeadlined requests);
* :mod:`repro.service.server` — the :class:`SynthesisService` facade
  behind ``repro-qsp serve`` (stdin/stdout JSONL) and ``repro-qsp batch``
  (file in / file out);
* :mod:`repro.service.asyncserver` — the asyncio socket front end
  (``serve --listen``): many concurrent clients, out-of-order responses
  matched by id, graceful drain + WAL compaction at shutdown.
"""

from repro.service.cache import RequestCache
from repro.service.persistence import MemoryWAL, load_memory_snapshot, \
    save_memory_snapshot
from repro.service.portfolio import (
    EngineSpec,
    LaneScheduler,
    PortfolioOutcome,
    autotune_specs,
    default_portfolio,
    run_engine_spec,
    run_portfolio,
)
from repro.service.scheduler import RequestScheduler, RequestSession
from repro.service.server import ServiceConfig, SynthesisService, serve_loop

__all__ = [
    "RequestCache",
    "MemoryWAL",
    "save_memory_snapshot",
    "load_memory_snapshot",
    "EngineSpec",
    "LaneScheduler",
    "PortfolioOutcome",
    "autotune_specs",
    "default_portfolio",
    "run_engine_spec",
    "run_portfolio",
    "RequestScheduler",
    "RequestSession",
    "ServiceConfig",
    "SynthesisService",
    "serve_loop",
]

"""Synthesis service layer: persistence, portfolio scheduling, caching.

Turns the search kernel + persistent :class:`~repro.core.memory.SearchMemory`
into a long-lived synthesis service:

* :mod:`repro.service.persistence` — versioned on-disk snapshots of a
  ``SearchMemory`` (warm-start files), gated by the regime fingerprint;
* :mod:`repro.service.portfolio` — engine portfolio per request
  (sequential incumbent-threading or multi-process first-optimal-wins
  racing) and the sharded batch runner;
* :mod:`repro.service.cache` — exact-hit request cache mapping target
  states to finished :class:`~repro.qsp.workflow.QSPResult` objects;
* :mod:`repro.service.server` — the :class:`SynthesisService` facade
  behind ``repro-qsp serve`` (stdin/stdout JSONL) and ``repro-qsp batch``
  (file in / file out).
"""

from repro.service.cache import RequestCache
from repro.service.persistence import load_memory_snapshot, \
    save_memory_snapshot
from repro.service.portfolio import (
    EngineSpec,
    PortfolioOutcome,
    default_portfolio,
    run_engine_spec,
    run_portfolio,
)
from repro.service.server import ServiceConfig, SynthesisService, serve_loop

__all__ = [
    "RequestCache",
    "save_memory_snapshot",
    "load_memory_snapshot",
    "EngineSpec",
    "PortfolioOutcome",
    "default_portfolio",
    "run_engine_spec",
    "run_portfolio",
    "ServiceConfig",
    "SynthesisService",
    "serve_loop",
]

"""Asyncio socket front end: ``repro-qsp serve --listen HOST:PORT``.

The wire protocol is the stdin protocol verbatim — newline-delimited
JSON requests, newline-delimited JSON responses — with one difference a
concurrent server forces: responses arrive *out of request order* (a
light request overtakes a heavy one already in flight), so clients must
match them by ``id``.

Concurrency model: one thread, one event loop, zero locks.  Client
handler coroutines parse lines and push requests through the service's
non-blocking admission path (:meth:`SynthesisService.submit`); a single
driver coroutine interleaves scheduler turns
(:meth:`~repro.service.scheduler.RequestScheduler.run_turn` — one lane
round of one session per turn) with ``await asyncio.sleep(0)`` yields,
so socket reads and writes stay live while searches run.  The shared
:class:`~repro.core.memory.SearchMemory` is only ever touched from the
loop, which is what makes lock-free sharing sound.

Lifecycle:

* a client disconnect cancels every session that client still has in
  flight (their lanes are aborted and freed; no statistics recorded);
* an ``op: shutdown`` request from any client — or SIGTERM/SIGINT —
  starts the graceful path: stop accepting, drain or deadline-flush the
  in-flight sessions (every pending caller still gets its best-so-far
  answer), compact the WAL into a final full snapshot, persist the
  request cache, exit 0.

With ``serve --metrics HOST:PORT`` (and an observability-enabled
service) a second listener on the same event loop serves the metrics
registry's Prometheus text exposition over minimal HTTP/1.0 — any GET
gets the full registry, ``curl http://HOST:PORT/metrics`` style.  It is
read-only, allocates nothing per scrape beyond the rendered text, and
shuts down with the main listener.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal

from repro.constants import SHUTDOWN_DRAIN_MS
from repro.service.server import SynthesisService, parse_request_line

__all__ = ["AsyncFrontEnd", "serve_listen"]


class AsyncFrontEnd:
    """One listening socket in front of a :class:`SynthesisService`."""

    def __init__(self, service: SynthesisService, host: str, port: int,
                 drain_ms: float = SHUTDOWN_DRAIN_MS,
                 metrics_host: str | None = None,
                 metrics_port: int | None = None) -> None:
        if metrics_host is not None and service.obs is None:
            raise ValueError(
                "--metrics requires an observability-enabled service "
                "(drop --no-obs)")
        self.service = service
        self.host = host
        self.port = port
        self.drain_ms = drain_ms
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        self.handled = 0
        self.connections = 0
        self.scrapes = 0
        self._work = asyncio.Event()
        self._closing = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- client side -----------------------------------------------------

    def _replier(self, writer: asyncio.StreamWriter):
        def reply(response: dict) -> None:
            if writer.is_closing():
                return  # client gone; the session was already theirs
            try:
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
            except Exception:
                pass
        return reply

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        token = object()  # this connection's cancellation identity
        reply = self._replier(writer)
        self._writers.add(writer)
        try:
            while not self._closing.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break  # EOF: client closed its end
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                self.handled += 1
                try:
                    request = parse_request_line(text)
                except ValueError as exc:
                    reply({"ok": False, "error": f"bad request line: {exc}"})
                    continue
                if request.get("op") == "shutdown":
                    reply({"id": request.get("id"), "ok": True,
                           "op": "shutdown"})
                    with contextlib.suppress(Exception):
                        await writer.drain()
                    self._begin_shutdown()
                    break
                try:
                    if self.service.submit(request, reply, client=token):
                        self._work.set()  # wake the driver
                except Exception as exc:  # same guard as the stdin loop
                    self.service.errors += 1
                    reply({"id": request.get("id"), "ok": False,
                           "error": f"{type(exc).__name__}: {exc}"})
                with contextlib.suppress(Exception):
                    await writer.drain()
        finally:
            self._writers.discard(writer)
            if not self._closing.is_set():
                # a vanished client must not keep burning expansion
                # slices; during shutdown, though, the sessions stay —
                # the drain is about to answer them through this writer
                self.service.scheduler.cancel_client(token)
                with contextlib.suppress(Exception):
                    writer.close()

    # -- metrics exposition ----------------------------------------------

    async def _handle_scrape(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Minimal HTTP/1.0: any complete GET gets the full exposition."""
        try:
            # read the request head (line + headers) up to the blank line
            with contextlib.suppress(asyncio.IncompleteReadError,
                                     asyncio.LimitOverrunError,
                                     ConnectionError):
                await reader.readuntil(b"\r\n\r\n")
            body = self.service.obs.render_prometheus(
                self.service).encode("utf-8")
            writer.write(b"HTTP/1.0 200 OK\r\n"
                         b"Content-Type: text/plain; version=0.0.4; "
                         b"charset=utf-8\r\n"
                         b"Content-Length: " + str(len(body)).encode()
                         + b"\r\n\r\n" + body)
            self.scrapes += 1
            with contextlib.suppress(Exception):
                await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    # -- scheduler side --------------------------------------------------

    async def _driver(self) -> None:
        """Interleave scheduler turns with event-loop I/O.

        Each iteration runs at most one turn (one lane round of one
        session) and then yields, so a turn's worth of expansions is the
        longest the loop ever goes without servicing sockets.
        """
        while not self._closing.is_set():
            if self.service.scheduler.pending:
                self.service.scheduler.run_turn()
                await asyncio.sleep(0)
            else:
                self._work.clear()
                waiter = asyncio.ensure_future(self._work.wait())
                closer = asyncio.ensure_future(self._closing.wait())
                done, pending = await asyncio.wait(
                    {waiter, closer},
                    return_when=asyncio.FIRST_COMPLETED)
                for task in pending:
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await task

    # -- lifecycle -------------------------------------------------------

    def _begin_shutdown(self) -> None:
        self._closing.set()
        self._work.set()

    async def run(self) -> dict:
        """Listen until shutdown; returns the shutdown summary dict."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port)
        if self.metrics_host is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_scrape, self.metrics_host, self.metrics_port)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, self._begin_shutdown)
        driver = asyncio.ensure_future(self._driver())
        try:
            await self._closing.wait()
        finally:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            if self._metrics_server is not None:
                self._metrics_server.close()
                with contextlib.suppress(Exception):
                    await self._metrics_server.wait_closed()
            self._begin_shutdown()
            with contextlib.suppress(asyncio.CancelledError):
                await driver
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.remove_signal_handler(sig)
        # drain replies still go to connected clients (their reply
        # closures write to live writers); then persist everything
        summary = self.service.shutdown(self.drain_ms)
        # flush the drained replies before the loop dies, then hang up
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                await writer.drain()
            with contextlib.suppress(Exception):
                writer.close()
        summary["handled"] = self.handled
        summary["connections"] = self.connections
        if self.metrics_host is not None:
            summary["metrics_scrapes"] = self.scrapes
        return summary

    @property
    def bound_port(self) -> int | None:
        """The actual port (useful when constructed with port 0)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def bound_metrics_port(self) -> int | None:
        """The metrics listener's actual port (port-0 friendly)."""
        if self._metrics_server is None or not self._metrics_server.sockets:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]


def serve_listen(service: SynthesisService, host: str, port: int,
                 drain_ms: float = SHUTDOWN_DRAIN_MS,
                 metrics_host: str | None = None,
                 metrics_port: int | None = None) -> dict:
    """Blocking entry point for ``serve --listen`` (runs the event loop)."""
    return asyncio.run(AsyncFrontEnd(service, host, port,
                                     drain_ms=drain_ms,
                                     metrics_host=metrics_host,
                                     metrics_port=metrics_port).run())

"""The long-lived synthesis service behind ``repro-qsp serve``/``batch``.

One :class:`SynthesisService` owns the cooperating parts of the service
layer and runs the request-level orchestration:

1. a process-lifetime :class:`~repro.core.memory.SearchMemory`, optionally
   warm-started from an on-disk snapshot (family runs produce these) or —
   with a WAL configured — from the WAL's compacted snapshot plus its
   replayed per-request delta records;
2. the engine portfolio (:mod:`repro.service.portfolio`) for exact
   synthesis requests — sequential incumbent-threading by default,
   multi-process first-optimal-wins racing when configured;
3. a :class:`~repro.service.cache.RequestCache` so repeated traffic for
   the same target returns the synthesized circuit without searching;
4. a :class:`~repro.service.scheduler.RequestScheduler` so *many*
   requests can be in flight at once (the concurrent serving model).

**Two request paths.**  :meth:`SynthesisService.handle` is the
synchronous one-request-at-a-time path (stdin serving, tests, batch
admission) — unchanged semantics, one response per call.
:meth:`SynthesisService.submit` is the non-blocking admission path the
concurrent front end (:mod:`repro.service.asyncserver`, ``serve
--listen``) drives: it parses and validates the request, answers cache
hits, control ops, and errors immediately through the reply callback,
and otherwise registers a :class:`~repro.service.scheduler
.RequestSession` — the portfolio lanes as stepwise
:class:`~repro.core.engine.EngineRun` s — with the global scheduler,
which fair-shares expansion slices across all lanes of all in-flight
requests (earliest-deadline-first, round-robin among undeadlined
requests, per-client cancellation).  Admission is bounded: beyond
``max_inflight`` searching sessions the service answers ``ok: false,
busy: true`` instead of queueing without limit.  Within one session the
lane schedule is identical to the single-request interleaved portfolio,
so concurrency never changes a request's cost.

Requests are JSON objects (one per line on the wire, stdin and socket
alike)::

    {"id": 1, "op": "prepare", "dicke": [4, 2]}
    {"id": 2, "op": "exact", "w": 4, "return_circuit": true}
    {"id": 3, "op": "exact", "w": 5, "topology": "heavy_hex"}
    {"id": 4, "op": "exact", "dicke": [6, 3], "deadline_ms": 250}
    {"id": 5, "op": "stats"}
    {"id": 6, "op": "snapshot", "path": "warm.qspmem.json"}
    {"id": 7, "op": "cache_snapshot", "path": "cache.qspreq.json"}
    {"id": 8, "op": "trace", "limit": 100}
    {"op": "shutdown"}

The target state may be given as a serialized state (``"state": {...}``
from :func:`repro.utils.serialization.state_to_dict`), as explicit terms
(``"terms": {"011": 0.5, ...}``), or by family shorthand (``dicke``,
``ghz``, ``w``).  ``op: prepare`` (the default) runs the paper's full
workflow — :func:`repro.qsp.workflow.prepare_state` wired through the
service memory — while ``op: exact`` runs the engine portfolio directly
on the (small) target.  Responses mirror the request ``id`` and carry
``ok``, ``cnot_cost``, optimality flags, ``cached``, ``seconds``, and the
circuit when ``return_circuit`` is set.  On the socket front end
responses arrive *out of request order* (a light request overtakes a
heavy one) — match them by ``id``.  ``prepare`` and ``exact`` both ride
the cross-request scheduler: a ``prepare`` session carries the whole
workflow as one stepwise :class:`~repro.qsp.workflow.WorkflowRun`
(wrapped in :class:`~repro.service.scheduler.WorkflowLanes`), so a dense
``prepare`` no longer blocks every caller at admission — it time-shares,
honors ``deadline_ms`` with a verified best-so-far flush (never cached),
and cancels on disconnect exactly like ``exact`` traffic.

``exact`` requests may carry a wall-clock budget ``deadline_ms`` (or the
service may set a default via ``serve --deadline-ms``): the interleaved
portfolio scheduler — which a deadline implies, and which ``serve
--portfolio interleaved`` selects for every request — time-slices all
engine lanes in this process, shares every feasible cost as a live
branch-and-bound incumbent, cancels everything at the first proven
optimum, and at the deadline returns the best feasible circuit found so
far (``deadline_expired: true``, never cached) instead of an error.
Under the concurrent front end a deadline also sets the request's EDF
priority, and keeps running while other sessions hold the CPU — it is a
caller-facing latency bound, not a CPU budget.

``op: fast`` is the latency-first tier over the same target shapes
(``{"op": "fast", "dicke": [6, 3]}``): it tries the ``fast`` and
``exact`` cache namespaces, then the *near-hit* path — the request
cache's signature index (:mod:`repro.core.pdb`) nominates cached donor
circuits whose targets share the state's entanglement signature, the
donor's backward move path is replayed on the new target with merge
angles re-derived from the target's own amplitudes, and a
deadline-bounded suffix search finishes from the most-promising
intermediate — and only then falls back to a full interleaved search
seeded with the pattern database's *learned* (inadmissible) bound tier.
Every circuit served by the near-hit or fallback path is verified
against the target with the simulator before the response leaves
(``verified: true``); a failed verification silently falls through to
the next tier.  ``fast`` results are never marked ``optimal`` unless a
*sound* bound certifies the cost, land in their own cache namespace
(never ``exact``), and deadline-truncated ones are never cached at all.

**Persistence.**  ``op: snapshot`` writes a full memory snapshot on
demand; ``serve --wal FILE`` keeps an incremental write-ahead log
instead (:class:`~repro.service.persistence.MemoryWAL`): each settled
request appends the delta the memory just learned, boot replays the log
on top of its compacted sidecar snapshot, and compaction (every
``--wal-compact-every`` records, and at shutdown) folds everything back
into a fresh full snapshot — so a crash costs at most the record being
written.  ``op: cache_snapshot`` (or ``serve --cache-snapshot`` at
shutdown) persists the exact-hit request cache the same way.  All of it
is gated by format-version + regime-fingerprint checks.

**Observability.**  With an enabled :class:`~repro.obs.ObsConfig`
(``ServiceConfig.obs`` — the serve CLI paths enable it by default,
``--no-obs`` opts out; library callers default to off), the service
instruments itself end to end: every request/turn/slice/settle lands in
a metrics registry and a ring-buffered JSONL tracer.  ``op: stats``
replies then grow a ``metrics`` section (the registry snapshot),
``op: trace`` returns the last ``limit`` trace records::

    {"id": 8, "op": "trace", "limit": 2}
    {"id": 8, "ok": true, "op": "trace", "emitted": 512, "records": [
      {"ts": 12.3459, "kind": "event", "name": "slice", "rid": 4,
       "lane": "beam", "expansions": 256, "status": "running"},
      {"ts": 12.4012, "kind": "end", "name": "request", "rid": 4,
       "outcome": "ok", "seconds": 0.055, "expansions": 1824}]}

``serve --trace FILE`` streams every record to a JSONL file (each
request reconstructs to a balanced admission → settle span via
:func:`repro.obs.trace.reconstruct_timelines`), and ``serve --metrics
HOST:PORT`` serves the Prometheus text exposition of the registry over
HTTP.  Observability *off* is the library default and is differentially
guaranteed free: costs, node counts, and expansion order are
bit-identical to an uninstrumented build (``tests/test_server_concurrent
.py``).

A service boots against at most one device topology
(``ServiceConfig.search.topology``, CLI ``--topology ...
--topology-size ...``): synthesis then runs topology-natively and the
memory, snapshots, WAL, and request cache are fingerprint-pinned to
that device.  A request may state its device (``"topology"``: a family
name sized by the request's register, or a canonical ``{size, edges}``
dict); a mismatch with the service device is answered with a loud
``MemoryCompatibilityError`` instead of entries computed for another
coupling map.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace

from repro.constants import (
    NEARHIT_DONOR_CANDIDATES,
    NEARHIT_SUFFIX_DEADLINE_MS,
    OBS_TRACE_DEFAULT_LIMIT,
    SERVICE_MAX_INFLIGHT,
    SERVICE_REQUEST_CACHE_CAP,
    SHUTDOWN_DRAIN_MS,
    WAL_COMPACT_INTERVAL,
)
from repro.obs import ObsConfig, build_obs
from repro.circuits.circuit import QCircuit
from repro.core.astar import SearchConfig, SearchResult
from repro.core.kernel import StatePool
from repro.core.memory import SearchMemory
from repro.core.pdb import entanglement_signature
from repro.exceptions import MemoryCompatibilityError
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import WorkflowRun
from repro.service.cache import RequestCache
from repro.service.persistence import MemoryWAL, load_memory_snapshot, \
    save_memory_snapshot
from repro.service.portfolio import (
    EngineSpec,
    LaneScheduler,
    autotune_specs,
    default_portfolio,
    interleaved_portfolio,
    order_specs,
    race_portfolio,
    run_batch,
    run_mode_portfolio,
)
from repro.service.scheduler import (
    RequestScheduler,
    RequestSession,
    WorkflowLanes,
)
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.utils.fingerprint import fingerprint_from_dict, \
    search_regime_dict
from repro.utils.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    state_from_dict,
)

__all__ = ["ServiceConfig", "SynthesisService", "serve_loop",
           "parse_request_line", "parse_request_state"]


def parse_request_state(request: dict) -> QState:
    """The request's target state; raises ``ValueError`` when absent.

    Module-level so the worker-pool router can parse (for
    signature-affinity routing) with exactly the service's semantics —
    a state the router accepts is a state every worker accepts.
    """
    if "state" in request:
        return state_from_dict(request["state"])
    if "dicke" in request:
        n, k = request["dicke"]
        return dicke_state(int(n), int(k))
    if "ghz" in request:
        return ghz_state(int(request["ghz"]))
    if "w" in request:
        return w_state(int(request["w"]))
    if "terms" in request:
        return QState.from_bitstring_weights(
            {bits: float(w) for bits, w in request["terms"].items()})
    raise ValueError(
        "request carries no target state (need one of: state, dicke, "
        "ghz, w, terms)")


@dataclass
class ServiceConfig:
    """Service-level knobs.

    ``search`` fixes the exact-engine regime *and* budgets for ``exact``
    requests; ``qsp`` configures the full workflow for ``prepare``
    requests (its exact stage shares the same default regime, which is
    what lets one memory serve both paths).  ``race_workers >= 2``
    switches ``exact`` requests from the sequential in-process portfolio
    to process racing, each racer seeded from ``snapshot_path``.
    """

    search: SearchConfig = field(default_factory=SearchConfig)
    specs: tuple[EngineSpec, ...] = field(default_factory=default_portfolio)
    qsp: QSPConfig = field(default_factory=QSPConfig)
    snapshot_path: str | None = None
    use_cache: bool = True
    cache_cap: int = SERVICE_REQUEST_CACHE_CAP
    race_workers: int = 0
    #: persist/restore the exact-hit request cache here (``serve
    #: --cache-snapshot``): loaded at boot when the file exists (gated by
    #: the same fingerprint + format-version checks as the memory
    #: snapshot), written back on shutdown
    cache_snapshot_path: str | None = None
    #: in-process scheduler for ``exact`` requests: ``"sequential"`` (the
    #: historical incumbent-threading line) or ``"interleaved"`` (one
    #: process time-slicing all lanes with live incumbent sharing and
    #: first-proven-optimal cancellation — race semantics without the
    #: per-lane processes).  ``race_workers >= 2`` still overrides both.
    portfolio_mode: str = "sequential"
    #: default wall-clock budget per ``exact`` request in milliseconds:
    #: when it expires the interleaved scheduler (which a deadline
    #: implies) returns the best feasible circuit found so far instead of
    #: an error; a request's own ``deadline_ms`` field overrides this
    deadline_ms: float | None = None
    #: incremental snapshot WAL (``serve --wal``): learned-memory deltas
    #: appended per settled request, replayed on boot, compacted on an
    #: interval and at shutdown.  The WAL's compacted sidecar snapshot
    #: wins over ``snapshot_path`` at boot (the latter only seeds the
    #: very first boot).
    wal_path: str | None = None
    wal_compact_interval: int = WAL_COMPACT_INTERVAL
    #: admission cap of the cross-request scheduler (``serve
    #: --max-inflight``): searching sessions in flight at once; requests
    #: beyond it are answered ``ok: false, busy: true``
    max_inflight: int = SERVICE_MAX_INFLIGHT
    #: derive the concurrent scheduler's per-lane slice budgets (and drop
    #: chronically losing lanes) from persisted ``lane_stats`` history
    #: (:func:`repro.service.portfolio.autotune_specs`).  Applies to
    #: scheduler sessions only — the single-request paths keep their
    #: historical schedules bit-identical.
    autotune_lanes: bool = True
    #: observability (:mod:`repro.obs`): ``None`` / disabled (the library
    #: default) keeps every hook a no-op and the serving path
    #: bit-identical to an uninstrumented build; the serve CLI paths pass
    #: an enabled config by default (``--no-obs`` opts out, ``--trace``
    #: adds the JSONL stream).
    obs: ObsConfig | None = None

    def __post_init__(self) -> None:
        if self.portfolio_mode not in ("sequential", "interleaved"):
            raise ValueError(
                f"unknown portfolio mode {self.portfolio_mode!r}; choose "
                f"'sequential' or 'interleaved'")


# ----------------------------------------------------------------------
# Near-hit adaptation (the fast op's middle tier)
# ----------------------------------------------------------------------

def _reangle_move(move, state: QState):
    """One donor move adapted to ``state``; returns ``(move, next_state)``.

    X and CX moves are amplitude-pattern-independent and replay as-is.  A
    :class:`~repro.core.moves.MergeMove`'s angle, however, was derived
    from the *donor's* amplitudes — on a perturbed near-neighbor the same
    rotation would only approximately merge.  So the angle is re-derived
    from the current state's own amplitude pair inside the move's control
    cube (both merge directions are tried, plus the donor's original
    angle), keeping whichever candidate shrinks the state most
    (cardinality, then entangled-qubit count).  The application itself is
    the exact sparse gate, so whatever angle wins, the state evolution —
    and hence the final verification — stays exact.
    """
    from repro.core.moves import MergeMove, merge_angle
    from repro.states.analysis import num_entangled_qubits
    from repro.utils.bits import bit_of

    if not isinstance(move, MergeMove):
        return move, move.apply(state)
    n = state.num_qubits
    target_bit = 1 << (n - 1 - move.target)
    thetas = [move.theta]
    for idx, _amp in state.items():
        if all(bit_of(idx, q, n) == p for q, p in move.controls):
            base = idx & ~target_bit
            a0 = state.amplitude(base)
            a1 = state.amplitude(base | target_bit)
            # one pair suffices: in the adaptable regime (a perturbed
            # sibling of the donor target) every selected pair shares
            # the ratio, exactly as the donor's own merge did
            thetas.append(merge_angle(a0, a1, 0))
            thetas.append(merge_angle(a0, a1, 1))
            break
    best = None
    for theta in thetas:
        candidate = replace(move, theta=theta)
        nxt = candidate.apply(state)
        if nxt.cardinality == 0:
            continue  # numerically annihilated — not a usable branch
        score = (nxt.cardinality, num_entangled_qubits(nxt))
        if best is None or score < best[0]:
            best = (score, candidate, nxt)
    if best is None:
        return move, move.apply(state)
    return best[1], best[2]


def _adapt_near_hit(state: QState, donor: SearchResult,
                    search: SearchConfig, specs: tuple[EngineSpec, ...],
                    memory: SearchMemory | None,
                    deadline_ms: float | None):
    """Adapt a donor's backward move path to a near-neighbor target.

    Replays the donor's moves on ``state`` (merge angles re-derived, see
    :func:`_reangle_move`), scores every intermediate by ``prefix cost +
    admissible remaining bound``, and runs a deadline-bounded suffix
    search from the most promising one.  Returns ``(result, truncated)``
    — the assembled circuit is *candidate* output only; the caller must
    simulator-verify it before serving — or ``None`` when the donor path
    does not lead anywhere a suffix search can finish from in time.
    """
    from repro.states.analysis import entanglement_lower_bound

    moves = list(getattr(donor, "moves", ()) or ())
    if not moves:
        return None
    prefix_states = [state]
    adapted: list = []
    costs = [0]
    current = state
    for move in moves:
        move, current = _reangle_move(move, current)
        adapted.append(move)
        prefix_states.append(current)
        costs.append(costs[-1] + move.cost)
    best_i, best_score = None, None
    for i in range(1, len(prefix_states)):
        score = costs[i] + entanglement_lower_bound(prefix_states[i])
        if best_score is None or score < best_score:
            best_score, best_i = score, i
    if best_i is None:
        return None
    outcome = interleaved_portfolio(prefix_states[best_i], search, specs,
                                    memory=memory, deadline_ms=deadline_ms)
    if not outcome.solved:
        return None
    suffix = outcome.result
    prefix = adapted[:best_i]
    # suffix.circuit prepares the intermediate from |0..0>; undoing the
    # prefix moves (their forward gates, newest first) then carries it on
    # to the requested target — the exact assembly rule of
    # :func:`repro.core.moves.moves_to_circuit`
    circuit = QCircuit(state.num_qubits, suffix.circuit.gates)
    for move in reversed(prefix):
        circuit.extend(move.forward_gates())
    full_moves = prefix + list(suffix.moves) if suffix.moves else []
    result = SearchResult(circuit=circuit,
                          cnot_cost=costs[best_i] + suffix.cnot_cost,
                          optimal=False, moves=full_moves,
                          stats=suffix.stats)
    return result, outcome.deadline_expired


class SynthesisService:
    """Request-level orchestration over memory + portfolio + cache."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        from repro.arch.topologies import native_topology
        # a full map means the unrestricted model: normalize at boot so
        # the request check, stats, and the engines all agree with the
        # regime fingerprint (which normalizes the same way); a
        # disconnected map fails here, not at the first request
        self.config.search.topology = \
            native_topology(self.config.search.topology)
        # obs first: WAL boot already wants to report replay/truncation
        self.obs = build_obs(self.config.obs)
        self.wal: MemoryWAL | None = None
        if self.config.wal_path is not None:
            # the WAL's compacted sidecar + replayed records win over the
            # plain snapshot, which only seeds the very first boot
            fallback = self.config.snapshot_path
            if fallback is not None and not os.path.exists(fallback):
                fallback = None
            self.memory, self.wal = MemoryWAL.boot(
                self.config.wal_path, fallback_snapshot=fallback,
                compact_interval=self.config.wal_compact_interval,
                obs=self.obs)
        elif self.config.snapshot_path is not None:
            self.memory = load_memory_snapshot(self.config.snapshot_path)
        else:
            self.memory = SearchMemory()
        regime = search_regime_dict(self.config.search)
        self.regime = regime
        # A snapshot recorded under a different regime must fail at boot,
        # not at the first unlucky request.
        self.memory.pin(fingerprint_from_dict(regime))
        self.cache = None
        if self.config.use_cache:
            cache_path = self.config.cache_snapshot_path
            if cache_path is not None and os.path.exists(cache_path):
                from repro.service.persistence import load_request_cache
                # regime (incl. topology) checked before any entry lands;
                # the configured cap wins over the snapshot's recorded one
                self.cache = load_request_cache(cache_path, regime,
                                                cap=self.config.cache_cap)
            else:
                self.cache = RequestCache(regime, self.config.cache_cap)
        self.scheduler = RequestScheduler(
            max_inflight=self.config.max_inflight, obs=self.obs)
        self.requests = 0
        self.cache_hits = 0
        self.errors = 0
        self.busy_rejections = 0
        #: near-hit path outcomes (``op: fast``), mirrored to obs when
        #: enabled: served / verify_failed / truncated / no_neighbor
        self.nearhits = {"served": 0, "verify_failed": 0,
                         "truncated": 0, "no_neighbor": 0}

    def save_cache_snapshot(self, path=None) -> str | None:
        """Persist the request cache (no-op without a cache or a path)."""
        path = path or self.config.cache_snapshot_path
        if self.cache is None or path is None:
            return None
        from repro.service.persistence import save_request_cache
        save_request_cache(self.cache, path)
        return str(path)

    # -- request plumbing ------------------------------------------------

    def _parse_state(self, request: dict) -> QState:
        return parse_request_state(request)

    def _request_deadline(self, request: dict) -> float | None:
        """Effective wall-clock budget of one request (ms or ``None``).

        The request's own ``deadline_ms`` overrides the service default;
        the single resolution point for both the serve and batch paths,
        so the same field can never mean different things between them.
        """
        deadline = request.get("deadline_ms", self.config.deadline_ms)
        return None if deadline is None else float(deadline)

    def _check_topology(self, request: dict, state: QState) -> None:
        """Reject requests whose device disagrees with the service regime.

        The memory and the request cache are pinned to one topology (part
        of the regime fingerprint), so a request for a different device
        must fail loudly instead of being served entries computed for
        another coupling map.  ``topology`` may be a family name (sized by
        the request's register) or a canonical ``{size, edges}`` dict.
        """
        spec = request.get("topology")
        if spec is None:
            return
        from repro.arch.topologies import CouplingMap, named_topology

        if isinstance(spec, str):
            requested = named_topology(spec, state.num_qubits)
        elif isinstance(spec, dict):
            requested = CouplingMap.from_canonical_dict(spec)
        else:
            raise ValueError(f"bad topology spec {spec!r}")
        service_topology = self.config.search.topology
        if requested.is_full() and service_topology is None:
            return  # all-to-all == the unrestricted service regime
        if service_topology is None or requested != service_topology:
            raise MemoryCompatibilityError(
                f"request topology {requested!r} does not match the "
                f"service topology {service_topology!r}; memory and cache "
                f"entries never mix across devices — boot a service with "
                f"--topology for this device")

    def handle(self, request: dict) -> dict:
        """One request dict in, one response dict out (never raises)."""
        rid = request.get("id")
        op = request.get("op", "prepare")
        self.requests += 1
        try:
            response = self._dispatch(rid, op, request)
        except Exception as exc:
            self.errors += 1
            response = {"id": rid, "ok": False,
                        "error": f"{type(exc).__name__}: {exc}"}
        if self.obs is not None:
            self.obs.request(op, _outcome_of(response))
        return response

    def _dispatch(self, rid, op: str, request: dict) -> dict:
        if op == "stats":
            return dict(self.stats(), id=rid, ok=True, op="stats")
        if op == "trace":
            if self.obs is None:
                raise ValueError(
                    "observability is disabled on this service; boot with "
                    "an enabled ObsConfig (serve does by default)")
            limit = request.get("limit", OBS_TRACE_DEFAULT_LIMIT)
            return {"id": rid, "ok": True, "op": "trace",
                    "emitted": self.obs.tracer.emitted,
                    "records": self.obs.trace_tail(int(limit))}
        if op == "snapshot":
            data = save_memory_snapshot(self.memory, request["path"])
            return {"id": rid, "ok": True, "op": "snapshot",
                    "path": request["path"],
                    "entries": len(data["canon_store"]) +
                    len(data["h_store"])}
        if op == "cache_snapshot":
            path = self.save_cache_snapshot(request.get("path"))
            return {"id": rid, "ok": path is not None,
                    "op": "cache_snapshot", "path": path,
                    "entries": 0 if self.cache is None
                    else len(self.cache)}
        state = self._parse_state(request)
        self._check_topology(request, state)
        if op == "prepare":
            return self._handle_prepare(rid, state, request)
        if op == "exact":
            return self._handle_exact(rid, state, request)
        if op == "fast":
            return self._handle_fast(rid, state, request)
        raise ValueError(f"unknown op {op!r}")

    # -- synthesis paths -------------------------------------------------

    def _handle_prepare(self, rid, state: QState, request: dict) -> dict:
        from repro.qsp.workflow import prepare_state

        start = time.perf_counter()
        result = None
        cached = False
        if self.cache is not None:
            result = self.cache.get("prepare", state)
            cached = result is not None
        if result is None:
            result = prepare_state(state, self.config.qsp,
                                   memory=self.memory,
                                   topology=self.config.search.topology)
            if self.cache is not None:
                self.cache.put("prepare", state, result)
            self._wal_record()
        else:
            self.cache_hits += 1
        response = {"id": rid, "ok": True, "op": "prepare",
                    "cnot_cost": result.cnot_cost,
                    "exact_optimal": result.exact_optimal,
                    "sparse_path": result.sparse_path, "cached": cached,
                    "seconds": round(time.perf_counter() - start, 6)}
        if request.get("trace"):
            response["trace"] = list(result.trace)
        if request.get("return_circuit"):
            response["circuit"] = circuit_to_dict(result.circuit)
        return response

    def _handle_exact(self, rid, state: QState, request: dict) -> dict:
        start = time.perf_counter()
        deadline_ms = self._request_deadline(request)
        if self.cache is not None:
            result = self.cache.get("exact", state)
            if result is not None:
                self.cache_hits += 1
                if self.obs is not None:
                    self.obs.cache_hit(rid, result.cnot_cost)
                return self._cached_exact_response(rid, request, result,
                                                   start)
        if self.config.race_workers >= 2 and deadline_ms is None:
            # racing cannot honor a wall-clock cutoff with a
            # best-so-far answer, so a request that carries a
            # deadline falls through to the interleaved scheduler
            # instead of silently losing its deadline
            outcome = race_portfolio(
                state, self.config.search, self.config.specs,
                snapshot_path=self.config.snapshot_path,
                memory=self.memory)
        else:
            outcome = run_mode_portfolio(
                state, self.config.search, self.config.specs,
                self.memory, self.config.portfolio_mode, deadline_ms)
        return self._finish_exact(rid, request, state, outcome, start)

    def _handle_fast(self, rid, state: QState, request: dict) -> dict:
        """Latency-first serving: cache → near-hit → learned-tier search.

        Tier 1 answers from the ``fast`` and ``exact`` cache namespaces.
        Tier 2 adapts a signature-indexed donor circuit
        (:func:`_adapt_near_hit`) and serves it only after the simulator
        confirms it prepares the requested state — a failed verification
        or an unusable donor silently falls through.  Tier 3 is a full
        interleaved search with the pattern database's learned
        (inadmissible) bound tier, also verified before serving.  Results
        land only in the ``fast`` namespace (they may be non-optimal, so
        they must never answer ``exact`` traffic), and deadline-truncated
        ones are never cached at all.
        """
        from repro.sim.verify import prepares_state

        start = time.perf_counter()
        deadline_ms = self._request_deadline(request)
        signature = entanglement_signature(state)
        if self.cache is not None:
            for namespace in ("fast", "exact"):
                result = self.cache.get(namespace, state)
                if result is not None:
                    self.cache_hits += 1
                    if self.obs is not None:
                        self.obs.cache_hit(rid, result.cnot_cost)
                    response = self._cached_exact_response(
                        rid, request, result, start)
                    response["op"] = "fast"
                    return response
            suffix_ms = NEARHIT_SUFFIX_DEADLINE_MS \
                if deadline_ms is None else deadline_ms
            donors = (self.cache.near("exact", signature)
                      + self.cache.near("fast", signature))
            for _payload, donor in donors[:NEARHIT_DONOR_CANDIDATES]:
                adapted = _adapt_near_hit(
                    state, donor, self.config.search, self.config.specs,
                    self.memory, suffix_ms)
                if adapted is None:
                    continue
                result, truncated = adapted
                if not prepares_state(result.circuit, state):
                    self._note_nearhit("verify_failed")
                    continue
                if result.cnot_cost <= \
                        self.memory.pdb.admissible_bound(signature):
                    # a sound structural bound certifies the adapted cost
                    result = replace(result, optimal=True)
                self._note_nearhit("truncated" if truncated else "served")
                self.memory.pdb.observe(signature,
                                        solved_cost=result.cnot_cost,
                                        optimal=result.optimal)
                if not truncated:
                    self.cache.put("fast", state, result,
                                   signature=signature)
                self._wal_record()
                response = {"id": rid, "ok": True, "op": "fast",
                            "cnot_cost": result.cnot_cost,
                            "optimal": result.optimal,
                            "engine": "nearhit", "cached": False,
                            "near_hit": True, "verified": True,
                            "seconds": round(
                                time.perf_counter() - start, 6)}
                if truncated:
                    response["deadline_expired"] = True
                if request.get("return_circuit"):
                    response["circuit"] = circuit_to_dict(result.circuit)
                return response
            if not donors:
                self._note_nearhit("no_neighbor")
        outcome = run_mode_portfolio(
            state, self.config.search, self.config.specs, self.memory,
            "interleaved", deadline_ms, pdb_tier="learned")
        if outcome.solved and \
                not prepares_state(outcome.result.circuit, state):
            # never expected (move replay is exact); refuse to serve an
            # unverified fast-mode circuit rather than trust it
            raise RuntimeError(
                "fast-mode search result failed simulator verification")
        response = self._finish_exact(rid, request, state, outcome, start,
                                      mode="fast")
        if outcome.solved:
            response["verified"] = True
        return response

    def _note_nearhit(self, outcome: str) -> None:
        self.nearhits[outcome] += 1
        if self.obs is not None:
            self.obs.near_hit(outcome)

    def _cached_prepare_response(self, rid, request: dict, result,
                                 start: float) -> dict:
        """Cache-hit response for a ``prepare`` request (QSPResult)."""
        response = {"id": rid, "ok": True, "op": "prepare",
                    "cnot_cost": result.cnot_cost,
                    "exact_optimal": result.exact_optimal,
                    "sparse_path": result.sparse_path, "cached": True,
                    "seconds": round(time.perf_counter() - start, 6)}
        if request.get("trace"):
            response["trace"] = list(result.trace)
        if request.get("return_circuit"):
            response["circuit"] = circuit_to_dict(result.circuit)
        return response

    def _cached_exact_response(self, rid, request: dict,
                               result: SearchResult, start: float) -> dict:
        response = {"id": rid, "ok": True, "op": "exact",
                    "cnot_cost": result.cnot_cost,
                    "optimal": result.optimal, "engine": "cache",
                    "cached": True,
                    "seconds": round(time.perf_counter() - start, 6)}
        if request.get("return_circuit"):
            response["circuit"] = circuit_to_dict(result.circuit)
        return response

    def _finish_exact(self, rid, request: dict, state: QState,
                      outcome, start: float, mode: str = "exact") -> dict:
        """Portfolio outcome → response: the settle path shared by the
        synchronous exact/fast handlers and the cross-request scheduler
        (cache put, WAL append, PDB evidence distillation, response shape
        all live here, so the paths can never drift apart).  ``mode`` is
        both the response op and the cache namespace — fast-mode results
        may be non-optimal and must never land under ``exact``."""
        deadline_expired = outcome.deadline_expired
        signature = entanglement_signature(state)
        if not outcome.solved:
            if outcome.lower_bound and not deadline_expired:
                # an exhausted search's bound is member evidence for the
                # signature's learned tier (never the admissible one)
                self.memory.pdb.observe(signature,
                                        lower_bound=outcome.lower_bound)
            self._wal_record()
            response = {"id": rid, "ok": False, "op": mode,
                        "lower_bound": outcome.lower_bound,
                        "error": "no portfolio lane produced a "
                                 "circuit within budget"}
            if deadline_expired:
                response["deadline_expired"] = True
            return response
        result = outcome.result
        self.memory.pdb.observe(signature, solved_cost=result.cnot_cost,
                                optimal=result.optimal)
        if self.cache is not None and not deadline_expired:
            # a deadline-truncated answer reflects a wall-clock
            # cutoff, not the request's search budgets — caching it
            # would serve the truncation to later, unhurried requests
            self.cache.put(mode, state, result, signature=signature)
        self._wal_record()
        response = {"id": rid, "ok": True, "op": mode,
                    "cnot_cost": result.cnot_cost,
                    "optimal": result.optimal, "engine": outcome.winner,
                    "cached": False,
                    "seconds": round(time.perf_counter() - start, 6)}
        if deadline_expired:
            response["deadline_expired"] = True
        if request.get("return_circuit"):
            response["circuit"] = circuit_to_dict(result.circuit)
        return response

    def _wal_record(self) -> None:
        """Append what the memory just learned to the WAL (if configured)."""
        if self.wal is not None:
            self.wal.record_learned()

    # -- concurrent admission path ---------------------------------------

    def submit(self, request: dict, reply, client: object = None) -> bool:
        """Non-blocking admission for the concurrent front end.

        Control ops, parse/validation errors, and cache hits are answered
        immediately through ``reply`` and the method returns ``False``.
        An ``exact`` or ``prepare`` cache miss registers a
        :class:`RequestSession` with the scheduler and returns ``True`` —
        the reply arrives later, when the scheduler settles the session.
        A ``prepare`` session wraps the whole workflow in a stepwise
        :class:`~repro.qsp.workflow.WorkflowRun`, so a dense preparation
        time-shares with light ``exact`` traffic instead of blocking the
        admission loop.  Beyond the admission cap the request is answered
        ``ok: false, busy: true`` right away.
        """
        rid = request.get("id")
        op = request.get("op", "prepare")
        if op not in ("exact", "prepare"):
            reply(self.handle(request))
            return False
        if self.obs is not None:
            # count every admission outcome, immediate or settled,
            # through the one reply funnel
            inner_reply = reply

            def reply(response, _inner=inner_reply, _op=op):
                self.obs.request(_op, _outcome_of(response))
                _inner(response)
        self.requests += 1
        start = time.perf_counter()
        try:
            state = self._parse_state(request)
            self._check_topology(request, state)
            deadline_ms = self._request_deadline(request)
        except Exception as exc:
            self.errors += 1
            reply({"id": rid, "ok": False,
                   "error": f"{type(exc).__name__}: {exc}"})
            return False
        if self.cache is not None:
            result = self.cache.get(op, state)
            if result is not None:
                self.cache_hits += 1
                if self.obs is not None:
                    self.obs.cache_hit(rid, result.cnot_cost)
                if op == "prepare":
                    reply(self._cached_prepare_response(rid, request,
                                                        result, start))
                else:
                    reply(self._cached_exact_response(rid, request, result,
                                                      start))
                return False
        if self.scheduler.full:
            self.busy_rejections += 1
            if self.obs is not None:
                self.obs.busy_rejected(rid)
            reply({"id": rid, "ok": False, "busy": True, "op": op,
                   "error": f"service at max in-flight requests "
                            f"({self.scheduler.max_inflight})"})
            return False
        if self.obs is not None:
            self.obs.admission(rid, op, deadline_ms,
                               len(self.scheduler.sessions))
        if op == "prepare":
            run = WorkflowRun(state, self.config.qsp, memory=self.memory,
                              topology=self.config.search.topology)
            lanes = WorkflowLanes(run, deadline_ms=deadline_ms, tag=rid,
                                  obs=self.obs)
            on_settle = self._settle_prepare
        else:
            if self.config.autotune_lanes:
                specs, budgets = autotune_specs(self.config.specs,
                                                self.memory)
            else:
                specs = order_specs(self.config.specs, self.memory)
                budgets = None
            lanes = LaneScheduler(state, self.config.search, specs,
                                  memory=self.memory,
                                  deadline_ms=deadline_ms,
                                  slice_budgets=budgets, tag=rid,
                                  obs=self.obs)
            on_settle = self._settle_session
        session = RequestSession(rid=rid, request=request, state=state,
                                 lanes=lanes, reply=reply,
                                 on_settle=on_settle,
                                 client=client, start=start)
        self.scheduler.submit(session)
        return True

    def _settle_session(self, session: RequestSession, outcome) -> dict:
        """Scheduler settle hook: same finish path as the sync handler."""
        return self._finish_exact(session.rid, session.request,
                                  session.state, outcome, session.start)

    def _settle_prepare(self, session: RequestSession, outcome) -> dict:
        """Settle hook for scheduler-admitted ``prepare`` sessions.

        Mirrors :meth:`_handle_prepare`'s response shape; a
        deadline-flushed best-so-far answer is marked
        ``deadline_expired`` and never enters the request cache (it
        reflects the wall-clock cutoff, not the configured budgets)."""
        rid, request, state = session.rid, session.request, session.state
        deadline_expired = outcome.deadline_expired
        self._wal_record()
        if not outcome.solved:
            error = next((row.get("error") for row in outcome.attempts
                          if row.get("error")),
                         "the workflow produced no circuit within the "
                         "deadline")
            response = {"id": rid, "ok": False, "op": "prepare",
                        "error": error}
            if deadline_expired:
                response["deadline_expired"] = True
            return response
        result = outcome.result
        if self.cache is not None and not deadline_expired:
            self.cache.put("prepare", state, result)
        response = {"id": rid, "ok": True, "op": "prepare",
                    "cnot_cost": result.cnot_cost,
                    "exact_optimal": result.exact_optimal,
                    "sparse_path": result.sparse_path, "cached": False,
                    "seconds": round(
                        time.perf_counter() - session.start, 6)}
        if deadline_expired:
            response["deadline_expired"] = True
        if request.get("trace"):
            response["trace"] = list(result.trace)
        if request.get("return_circuit"):
            response["circuit"] = circuit_to_dict(result.circuit)
        return response

    def shutdown(self, drain_ms: float = SHUTDOWN_DRAIN_MS) -> dict:
        """Graceful shutdown: drain sessions, compact the WAL, persist.

        In-flight sessions get ``drain_ms`` of wall clock to finish
        normally; whatever remains is deadline-flushed (every pending
        caller still receives its best-so-far answer).  The WAL is then
        compacted into a final full snapshot and closed, and the request
        cache persisted — a warm boot starts exactly where this process
        stopped.
        """
        flushed = self.scheduler.drain(drain_ms)
        if self.wal is not None:
            self.wal.close()  # compacts into the sidecar snapshot
        cache_path = self.save_cache_snapshot()
        if self.obs is not None:
            self.obs.tracer.event("shutdown", drained=flushed)
            self.obs.close()
        return {"drained": flushed, "cache_snapshot": cache_path,
                "wal_snapshot": None if self.wal is None
                else str(self.wal.snapshot_path)}

    def stats(self) -> dict:
        """Service counters (also served as the ``stats`` op)."""
        topology = self.config.search.topology
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "busy_rejections": self.busy_rejections,
            "topology": None if topology is None
            else topology.to_canonical_dict(),
            "nearhit": dict(self.nearhits),
            "cache": None if self.cache is None else self.cache.snapshot(),
            "signature_index": None if self.cache is None
            else self.cache.signature_occupancy(),
            "memory": self.memory.snapshot(),
            "scheduler": self.scheduler.snapshot(),
            "wal": None if self.wal is None else self.wal.snapshot(),
            "metrics": None if self.obs is None
            else self.obs.metrics_snapshot(self),
        }

    # -- batch mode ------------------------------------------------------

    def run_batch_file(self, in_path, out_path, workers: int = 1,
                       with_circuit: bool = False) -> dict:
        """File in / file out: one JSONL request per line, one response.

        Requests are treated as ``exact`` portfolio synthesis (the batch
        workload of the ROADMAP: many small cores, one warm memory).
        Cache hits are answered in the parent; the misses are sharded
        across ``workers`` processes, each seeded from the service's
        snapshot, and their memory deltas merge back into the service
        memory — a second batch over similar traffic starts warmer.
        """
        requests: list[tuple[int, dict]] = []
        rows: dict[int, dict] = {}
        with open(in_path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError(
                            f"request must be a JSON object, got "
                            f"{type(request).__name__}")
                    requests.append((lineno, request))
                except ValueError as exc:
                    rows[lineno] = {"id": None, "ok": False,
                                    "error": f"bad request line: {exc}"}
        misses: list[tuple[int, QState]] = []
        states: dict[int, QState] = {}
        deadlines: dict[int, float | None] = {}
        for pos, request in requests:
            rid = request.get("id", pos)
            try:
                state = self._parse_state(request)
                self._check_topology(request, state)
                deadline = self._request_deadline(request)
            except Exception as exc:
                rows[pos] = {"id": rid, "ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                continue
            states[pos] = state
            deadlines[pos] = deadline
            cached = self.cache.get("exact", state) \
                if self.cache is not None else None
            if cached is not None:
                self.cache_hits += 1
                rows[pos] = self._batch_row(rid, cached, cached=True,
                                            with_circuit=with_circuit)
            else:
                misses.append((pos, state))
        self.requests += len(requests)
        request_by_pos = dict(requests)
        # Dedupe identical targets within the file: repeated traffic is
        # the expected batch shape, and without grouping the duplicates
        # would each run a full search (possibly in different workers,
        # blind to each other).  One representative searches; the result
        # fans out to every duplicate line.  The group key includes the
        # request's effective deadline, so a deadline-truncated answer
        # never fans out to a duplicate that asked for a full search.
        groups: dict[tuple, list[int]] = {}
        representatives: list[tuple[int, QState]] = []
        group_of: dict[int, tuple] = {}
        pool = StatePool()
        for pos, state in misses:
            key = (pool.from_qstate(state).payload, deadlines[pos])
            group_of[pos] = key
            members = groups.get(key)
            if members is None:
                groups[key] = [pos]
                representatives.append((pos, state))
            else:
                members.append(pos)
        if representatives:
            for row in run_batch(
                    representatives, self.config.search, self.config.specs,
                    snapshot_path=self.config.snapshot_path,
                    workers=workers, memory=self.memory,
                    with_circuit=True, mode=self.config.portfolio_mode,
                    deadline_ms=self.config.deadline_ms,
                    deadline_by_id={pos: deadlines[pos]
                                    for pos, _ in representatives}):
                rep_pos = row["id"]
                if row.get("solved") and self.cache is not None \
                        and not row.get("deadline_expired"):
                    self.cache.put(
                        "exact", states[rep_pos],
                        SearchResult(
                            circuit=circuit_from_dict(row["circuit"]),
                            cnot_cost=row["cnot_cost"],
                            optimal=row["optimal"]))
                for pos in groups[group_of[rep_pos]]:
                    rid = request_by_pos[pos].get("id", pos)
                    out = {"id": rid, "ok": bool(row.get("solved")),
                           "cached": pos != rep_pos}
                    for key in ("cnot_cost", "optimal", "engine",
                                "seconds", "lower_bound", "error",
                                "deadline_expired"):
                        if key in row:
                            out[key] = row[key]
                    if with_circuit and "circuit" in row:
                        out["circuit"] = row["circuit"]
                    rows[pos] = out
        self._wal_record()  # worker deltas just merged into the memory
        solved = sum(1 for row in rows.values() if row.get("ok"))
        with open(out_path, "w", encoding="utf-8") as handle:
            for pos in sorted(rows):
                handle.write(json.dumps(rows[pos]) + "\n")
        return {"requests": len(requests), "solved": solved,
                "cache_hits": sum(1 for r in rows.values()
                                  if r.get("cached")),
                "workers": workers}

    def _batch_row(self, rid, result: SearchResult, cached: bool,
                   with_circuit: bool) -> dict:
        row = {"id": rid, "ok": True, "cnot_cost": result.cnot_cost,
               "optimal": result.optimal, "cached": cached}
        if with_circuit:
            row["circuit"] = circuit_to_dict(result.circuit)
        return row


def _outcome_of(response: dict) -> str:
    """Classify a response for the ``qsp_requests_total`` counter."""
    if response.get("busy"):
        return "busy"
    if not response.get("ok"):
        return "error"
    if response.get("deadline_expired"):
        return "deadline_flush"
    if response.get("cached"):
        return "cached"
    return "ok"


def parse_request_line(line: str) -> dict:
    """One wire line → request dict; raises ``ValueError`` on bad input.

    Shared by the stdin loop and the socket front end so the two
    protocols reject exactly the same garbage with the same message.
    """
    request = json.loads(line)
    if not isinstance(request, dict):
        raise ValueError(f"request must be a JSON object, got "
                         f"{type(request).__name__}")
    return request


def serve_loop(service: SynthesisService, in_stream, out_stream) -> int:
    """The ``repro-qsp serve`` request loop: JSONL in, JSONL out.

    Runs until the input stream ends or a ``shutdown`` op arrives; every
    input line produces exactly one output line, errors included, so a
    pipelined client can match responses by position as well as by id.
    Nothing a client sends can take the loop down: malformed JSON, an
    unknown ``op``, and even an unexpected exception escaping the
    handler all turn into an ``ok: false`` response (echoing the request
    ``id`` when one was parsed) and the loop reads on.
    Returns the number of requests handled.
    """
    handled = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = parse_request_line(line)
        except ValueError as exc:
            response: dict = {"ok": False,
                              "error": f"bad request line: {exc}"}
            request = None
        else:
            if request.get("op") == "shutdown":
                out_stream.write(json.dumps(
                    {"id": request.get("id"), "ok": True,
                     "op": "shutdown"}) + "\n")
                out_stream.flush()
                handled += 1
                break
            try:
                response = service.handle(request)
            except Exception as exc:
                # handle() already converts request-level failures; this
                # is the last-resort guard for handler bugs — the server
                # must outlive any single request
                service.errors += 1
                response = {"id": request.get("id"), "ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
        handled += 1
        out_stream.write(json.dumps(response) + "\n")
        out_stream.flush()
    return handled

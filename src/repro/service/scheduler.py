"""Cross-request expansion scheduler: many requests, one search process.

The single-request service finishes one synthesis before reading the
next, so a heavy request blocks every caller behind it.  This module is
the other half of the PR-5 stepwise-engine bargain: because every lane
is a pausable :class:`~repro.core.engine.EngineRun`, one process can
fair-share expansion slices across *all lanes of all in-flight
requests* instead of dedicating itself to one.

Two pieces:

* :class:`RequestSession` — one admitted request: its
  :class:`~repro.service.portfolio.LaneScheduler` (the portfolio lanes
  as stepwise runs), its reply callback, its client token, and its
  absolute deadline.
* :class:`RequestScheduler` — the global turn-taking policy.  Each
  ``run_turn`` picks one session and advances *all its active lanes by
  one slice* (``LaneScheduler.run_round``), so a session's internal
  schedule — lane order, incumbent broadcasts, proof cancellation — is
  exactly the single-request interleaved portfolio's, which is what
  keeps concurrent costs identical to serial runs.  Across sessions the
  pick is earliest-deadline-first with a fairness stride: every
  ``fairness_stride``-th turn goes to the round-robin queue of
  undeadlined sessions, so deadlined traffic can never starve a request
  that asked for a full search.

Admission control is the caller's responsibility via :attr:`full` /
:meth:`submit` (the service answers ``ok: false, busy: true`` beyond
the cap); per-client cancellation (:meth:`cancel_client`) aborts every
session a disconnected client still has in flight without recording
lane statistics for them; :meth:`drain` is the graceful-shutdown path —
run the backlog down within a wall-clock budget, then deadline-flush
whatever is left so every pending caller still gets its best-so-far
answer.

The scheduler is deliberately synchronous and single-threaded: the
asyncio front end (:mod:`repro.service.asyncserver`) interleaves
``run_turn`` calls with socket I/O on one event loop, and the engine
memory is only ever touched from that loop — no locks, no data races,
and every run stays attached to the one shared
:class:`~repro.core.memory.SearchMemory`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.constants import (
    PORTFOLIO_SLICE_EXPANSIONS,
    SCHEDULER_FAIRNESS_STRIDE,
    SERVICE_MAX_INFLIGHT,
    SHUTDOWN_DRAIN_MS,
)
from repro.core.engine import RunStatus, StepwiseRun
from repro.exceptions import SearchBudgetExceeded
from repro.service.portfolio import LaneScheduler, PortfolioOutcome
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["RequestSession", "RequestScheduler", "WorkflowLanes"]


class WorkflowLanes:
    """A single stepwise run dressed in the :class:`LaneScheduler` surface.

    ``prepare`` sessions carry one
    :class:`~repro.qsp.workflow.WorkflowRun` instead of a portfolio of
    engine lanes, but the cross-request scheduler only ever talks to the
    lane surface — ``deadline`` / ``run_round`` / ``expansions`` /
    ``finish`` / ``abort`` / ``deadline_expired`` — so this adapter is
    all it takes for workflow traffic to time-share, honor deadlines,
    and cancel on disconnect exactly like ``exact`` traffic.  The
    settled :class:`~repro.service.portfolio.PortfolioOutcome` carries
    the run's :class:`~repro.qsp.workflow.QSPResult` (the one lane is
    named ``"workflow"`` in the audit row); at deadline expiry or drain,
    :meth:`finish` flushes the run's verified best-so-far circuit.
    """

    def __init__(self, run: StepwiseRun, deadline_ms: float | None = None,
                 slice_expansions: int = PORTFOLIO_SLICE_EXPANSIONS,
                 tag: object | None = None, obs=None) -> None:
        self.run = run
        run.tag = tag
        self.tag = tag
        self.obs = obs
        # no deadline -> no Stopwatch at all, keeping step()'s
        # deadline-is-None fast path (same contract as LaneScheduler)
        self.deadline = None if deadline_ms is None \
            else Stopwatch(max(0.0, deadline_ms) / 1000.0)
        self.slice_expansions = max(1, int(slice_expansions))
        self.deadline_expired = False
        self.expansions = 0
        self._seconds = 0.0

    @property
    def done(self) -> bool:
        return self.run.status.terminal or self.deadline_expired

    def _expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def run_round(self) -> bool:
        """Advance the run one slice; ``True`` while it is still going."""
        if self.run.status.terminal:
            return False
        if self._expired():
            self.deadline_expired = True
            return False
        start = time.perf_counter()
        status = self.run.step(self.slice_expansions,
                               deadline=self.deadline)
        self._seconds += time.perf_counter() - start
        self.expansions += self.run.last_slice_expansions
        if self.obs is not None:
            self.obs.lane_slice(self.tag, "workflow",
                                self.run.last_slice_expansions,
                                status.value)
        if status is RunStatus.RUNNING and self._expired():
            self.deadline_expired = True
            return False
        return not status.terminal

    def finish(self) -> PortfolioOutcome:
        """Collect the outcome; flush best-so-far on deadline/drain."""
        run = self.run
        result = None
        status = run.status
        if not status.terminal:
            # deadline expiry or shutdown drain cut the workflow short:
            # hand over the verified best-so-far circuit, then cancel
            self.deadline_expired = True
            result = run.flush_feasible()
            run.cancel()
            status = RunStatus.CANCELLED
        elif status is RunStatus.SOLVED:
            result = run.result()
        row: dict = {"name": "workflow", "status": status.value,
                     "solved": status is RunStatus.SOLVED,
                     "feasible": result is not None,
                     "nodes_expanded": run.stats.nodes_expanded,
                     "seconds": round(self._seconds, 6)}
        if status is RunStatus.EXHAUSTED:
            error = run.error
            row["timeout"] = isinstance(error, SearchBudgetExceeded)
            row["error"] = f"{type(error).__name__}: {error}"
        if self.obs is not None:
            self.obs.lane_settled(self.tag, "workflow", status.value,
                                  stats=run.stats,
                                  feasible=result is not None)
            if result is not None:
                self.obs.lane_won(self.tag, "workflow", result.cnot_cost)
        return PortfolioOutcome(
            result=result,
            winner="workflow" if result is not None else None,
            attempts=[row], deadline_expired=self.deadline_expired)

    def abort(self) -> None:
        """Client gone: cancel the run, record nothing."""
        if not self.run.status.terminal:
            self.run.cancel()


@dataclass
class RequestSession:
    """One admitted ``exact``/``prepare`` request riding the scheduler."""

    rid: object
    request: dict
    state: QState
    lanes: "LaneScheduler | WorkflowLanes"
    #: called with the final response dict (exactly once, unless the
    #: session is aborted by client cancellation first)
    reply: Callable[[dict], None]
    #: service hook ``(session, outcome) -> response`` run at settlement
    #: (cache put, WAL append, response building live in the service)
    on_settle: Callable[["RequestSession", PortfolioOutcome], dict]
    #: opaque connection token for per-client cancellation
    client: object | None = None
    #: admission wall-clock start (``seconds`` in the response)
    start: float = field(default_factory=time.perf_counter)
    #: admission order (set by the scheduler; EDF tie-break + RR order)
    seq: int = 0
    #: absolute monotonic deadline (set by the scheduler; EDF key)
    deadline_at: float | None = None
    #: turns this session has been picked for (fairness accounting)
    turns: int = 0


class RequestScheduler:
    """Fair-share turn-taking across all in-flight request sessions."""

    def __init__(self, max_inflight: int = SERVICE_MAX_INFLIGHT,
                 fairness_stride: int = SCHEDULER_FAIRNESS_STRIDE,
                 obs=None) -> None:
        self.max_inflight = max(1, int(max_inflight))
        self.fairness_stride = max(2, int(fairness_stride))
        #: :class:`repro.obs.ServiceObs` or ``None`` (the no-op state) —
        #: hooks fire at turn/settle granularity and never alter the
        #: pick policy or lane schedules
        self.obs = obs
        self.sessions: list[RequestSession] = []
        self.turns = 0
        self.settled = 0
        self.cancelled = 0
        self.peak_inflight = 0
        self._seq = 0
        self._rr = 0
        self._last_policy = "edf"

    def __len__(self) -> int:
        return len(self.sessions)

    @property
    def pending(self) -> bool:
        return bool(self.sessions)

    @property
    def full(self) -> bool:
        """At the admission cap — the next submit must be rejected."""
        return len(self.sessions) >= self.max_inflight

    def submit(self, session: RequestSession) -> bool:
        """Register a session; ``False`` (untouched) beyond the cap."""
        if self.full:
            return False
        self._seq += 1
        session.seq = self._seq
        if session.lanes.deadline is not None:
            session.deadline_at = time.monotonic() + \
                session.lanes.deadline.limit_seconds
        self.sessions.append(session)
        self.peak_inflight = max(self.peak_inflight, len(self.sessions))
        if self.obs is not None:
            self.obs.inflight_now(len(self.sessions))
        return True

    def cancel_client(self, client: object) -> int:
        """Abort every in-flight session of one client (disconnect)."""
        mine = [s for s in self.sessions if s.client is client]
        for session in mine:
            self.sessions.remove(session)
            session.lanes.abort()
            self.cancelled += 1
            if self.obs is not None:
                self.obs.session_cancelled(session.rid, "client_disconnect",
                                           session.lanes.expansions)
        if mine and self.obs is not None:
            self.obs.inflight_now(len(self.sessions))
        return len(mine)

    # -- turn taking -----------------------------------------------------

    def _pick(self) -> RequestSession | None:
        """EDF among deadlined sessions, strided RR among the rest.

        Deterministic given the admission sequence: the EDF tie-break is
        admission order, the RR cursor advances only when the stride
        turn actually lands on an undeadlined session, and both queues
        preserve admission order — two runs over the same request trace
        schedule identically.
        """
        if not self.sessions:
            return None
        deadlined = [s for s in self.sessions if s.deadline_at is not None]
        undeadlined = [s for s in self.sessions if s.deadline_at is None]
        self.turns += 1
        if undeadlined and (not deadlined or
                            self.turns % self.fairness_stride == 0):
            session = undeadlined[self._rr % len(undeadlined)]
            self._rr += 1
            self._last_policy = "fairness" if deadlined else "rr"
            return session
        if deadlined:
            self._last_policy = "edf"
            return min(deadlined, key=lambda s: (s.deadline_at, s.seq))
        return None

    def run_turn(self) -> bool:
        """Advance one session by one lane round; ``True`` if work ran.

        A session whose schedule ends this turn (proved, exhausted, or
        deadline-expired) is settled immediately: outcome collected,
        service settle hook run, reply delivered.  A settle-hook or
        reply failure is converted into an error reply / swallowed
        rather than taking the scheduler (and every other session) down.
        """
        session = self._pick()
        if session is None:
            return False
        session.turns += 1
        obs = self.obs
        if obs is not None:
            obs.turn(session.rid, self._last_policy)
            obs.queue_depth_now(len(self.sessions))
            if session.turns == 1:
                obs.first_turn(session.rid,
                               time.perf_counter() - session.start)
        before = session.lanes.expansions if obs is not None else 0
        more = session.lanes.run_round()
        if obs is not None:
            obs.turn_done(session.rid, session.lanes.expansions - before)
        if not more:
            self._settle(session)
        return True

    def _settle(self, session: RequestSession) -> None:
        self.sessions.remove(session)
        self.settled += 1
        outcome = session.lanes.finish()
        try:
            response = session.on_settle(session, outcome)
        except Exception as exc:  # the hook must not sink other sessions
            response = {"id": session.rid, "ok": False,
                        "error": f"{type(exc).__name__}: {exc}"}
        if self.obs is not None:
            slack = None
            if session.deadline_at is not None:
                slack = session.deadline_at - time.monotonic()
            label = ("deadline_flush" if response.get("deadline_expired")
                     else "ok" if response.get("ok") else "error")
            self.obs.settle(session.rid, label,
                            time.perf_counter() - session.start,
                            session.lanes.expansions, slack_seconds=slack,
                            turns=session.turns, winner=outcome.winner)
            self.obs.inflight_now(len(self.sessions))
        try:
            session.reply(response)
        except Exception:  # client gone mid-settle: nothing left to tell
            pass

    def drain(self, deadline_ms: float = SHUTDOWN_DRAIN_MS) -> int:
        """Graceful shutdown: finish the backlog, flush what will not.

        Runs normal turns for up to ``deadline_ms`` of wall clock, then
        force-expires the remaining sessions — each settles through the
        anytime path (best feasible circuit so far, beam completion
        tails flushed, response marked ``deadline_expired``) so every
        pending caller is answered before the process exits.  Returns
        the number of sessions that had to be force-flushed.
        """
        budget = Stopwatch(max(0.0, deadline_ms) / 1000.0)
        while self.sessions and not budget.expired():
            if not self.run_turn():
                break
        flushed = 0
        for session in list(self.sessions):
            session.lanes.deadline_expired = True
            self._settle(session)
            flushed += 1
        return flushed

    def snapshot(self) -> dict:
        """Scheduler counters for the ``stats`` op / bench reports."""
        return {
            "inflight": len(self.sessions),
            "peak_inflight": self.peak_inflight,
            "turns": self.turns,
            "settled": self.settled,
            "cancelled": self.cancelled,
            "max_inflight": self.max_inflight,
            "fairness_stride": self.fairness_stride,
        }

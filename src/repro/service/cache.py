"""Request cache: canonical target fingerprint → finished ``QSPResult``.

Repeated traffic is the service's whole reason to exist: the same GHZ/W/
Dicke targets arrive over and over, and after the first synthesis the
correct response is a lookup, not a search.  The cache keys requests by
the target state's *structural identity* — the quantized packed payload,
looked up through the 64-bit structural hash with payload verification
(the same exact-hit discipline as the persistent
:class:`~repro.core.memory.HashStore`, and in fact implemented on it), so
two textually different requests for the same state hit the same entry
while a genuine 64-bit hash collision can never serve the wrong circuit.

Entries additionally depend on how the service synthesizes — the search
regime and the request mode (full workflow vs exact-core portfolio) — so
the cache is *pinned* to one portable regime fingerprint at construction
(:func:`repro.utils.fingerprint.search_regime_dict` form) and keeps one
store per mode.  Mixing regimes raises
:class:`~repro.exceptions.MemoryCompatibilityError`, mirroring
``SearchMemory.attach``.  The regime dict includes the device topology,
so a cache filled on one coupling map can never answer requests for
another.

The cache persists to disk (``serve --cache-snapshot``) through
:func:`request_cache_to_dict` / :func:`request_cache_from_dict` — same
discipline as the memory snapshot: payload-keyed entries re-keyed by the
loading process, format version + regime fingerprint checked up front,
any mismatch or corruption raising
:class:`~repro.exceptions.MemoryCompatibilityError` before a single
entry is served.
"""

from __future__ import annotations

from repro.constants import (
    REQUEST_CACHE_SNAPSHOT_VERSION,
    SERVICE_REQUEST_CACHE_CAP,
    SIGNATURE_INDEX_CAP,
)
from repro.core.kernel import StatePool
from repro.core.memory import HashStore
from repro.core.pdb import (
    coarse_signature,
    signature_from_list,
    signature_to_list,
)
from repro.exceptions import MemoryCompatibilityError
from repro.states.qstate import QState

__all__ = ["RequestCache", "request_cache_to_dict",
           "request_cache_from_dict"]

#: Interned request states before the keying pool is rotated (requests
#: are tiny compared to search frontiers, so a small pool suffices).
_POOL_ROTATE_CAP = 1 << 16


class RequestCache:
    """Exact-hit result cache over target states, pinned to one regime.

    On top of the exact tier, a *signature index* groups cached entries
    by their entanglement signature (:mod:`repro.core.pdb`) so the
    server's near-hit path can nominate donor circuits for targets that
    miss exactly but share structure with something already solved.  The
    index only ever *nominates*: an adapted circuit is simulator-verified
    before serving, so a wrong neighbor costs time, never correctness.
    Donor move lists live in-process only (results loaded from a snapshot
    travel without moves and count toward occupancy, not adaptation).
    """

    __slots__ = ("cap", "regime", "_stores", "_pool",
                 "_sig_index", "_coarse_index", "_donors", "sig_entries")

    def __init__(self, regime: dict | None = None,
                 cap: int = SERVICE_REQUEST_CACHE_CAP):
        self.cap = max(1, int(cap))
        self.regime = regime
        self._stores: dict[str, HashStore] = {}
        self._pool = StatePool()
        #: mode -> full signature -> payloads of cached member states
        self._sig_index: dict[str, dict[tuple, list[bytes]]] = {}
        #: mode -> coarse key (signature minus rank profile) -> payloads
        self._coarse_index: dict[str, dict[tuple, list[bytes]]] = {}
        #: (mode, payload) -> in-process result still carrying its move
        #: list — the only entries the near-hit path can actually adapt
        self._donors: dict[tuple[str, bytes], object] = {}
        self.sig_entries = 0

    def pin(self, regime: dict) -> None:
        """Pin (or re-check) the regime the cached results were made under."""
        if self.regime is None:
            self.regime = regime
        elif regime != self.regime:
            raise MemoryCompatibilityError(
                f"RequestCache holds results for regime {self.regime!r} "
                f"and cannot serve regime {regime!r}")

    def _key(self, state: QState):
        if len(self._pool) > _POOL_ROTATE_CAP:
            self._pool = StatePool()
        return self._pool.from_qstate(state)

    def _store(self, mode: str) -> HashStore:
        store = self._stores.get(mode)
        if store is None:
            store = self._stores[mode] = HashStore(self.cap)
        return store

    def get(self, mode: str, state: QState):
        """Cached result for ``state`` under ``mode``, or ``None``."""
        return self._store(mode).get(self._key(state))

    def put(self, mode: str, state: QState, result,
            signature: tuple | None = None) -> None:
        key = self._key(state)
        self._store(mode).put(key, result)
        if signature is not None:
            self._register(mode, bytes(key.payload), signature, result)

    def _register(self, mode: str, payload: bytes, signature: tuple,
                  result=None) -> None:
        """Index one cached payload under its entanglement signature."""
        if self.sig_entries >= SIGNATURE_INDEX_CAP:
            return
        rows = self._sig_index.setdefault(mode, {}) \
            .setdefault(signature, [])
        if payload in rows:
            return
        rows.append(payload)
        self._coarse_index.setdefault(mode, {}) \
            .setdefault(coarse_signature(signature), []).append(payload)
        self.sig_entries += 1
        if result is not None and getattr(result, "moves", None):
            self._donors[(mode, payload)] = result

    def near(self, mode: str, signature: tuple) -> list[tuple[bytes, object]]:
        """Adaptable donors near ``signature``: ``(payload, result)`` rows.

        Exact-signature members first, then coarse-key neighbors (same
        register size, entangled support, and MI-cluster shape — the rank
        profile is the one component that shifts under small amplitude
        perturbations, so it is dropped for the fallback).  Only donors
        whose in-process results still carry move lists are returned;
        callers must adapt *and verify* before serving.
        """
        rows: list[tuple[bytes, object]] = []
        seen: set[bytes] = set()
        exact = self._sig_index.get(mode, {}).get(signature, ())
        coarse = self._coarse_index.get(mode, {}).get(
            coarse_signature(signature), ())
        for payload in (*exact, *coarse):
            if payload in seen:
                continue
            seen.add(payload)
            donor = self._donors.get((mode, payload))
            if donor is not None:
                rows.append((payload, donor))
        return rows

    def signature_occupancy(self) -> dict:
        """Signature-index counters for ``op: stats`` (flywheel fill)."""
        return {
            "entries": self.sig_entries,
            "signatures": sum(len(index)
                              for index in self._sig_index.values()),
            "coarse_keys": sum(len(index)
                               for index in self._coarse_index.values()),
            "donors": len(self._donors),
            "cap": SIGNATURE_INDEX_CAP,
        }

    def items(self):
        """Iterate ``(mode, payload, result)`` over every cached entry.

        The offline distiller (``repro-qsp distill``) walks this to turn
        solved results into pattern-database evidence without reaching
        into per-mode stores.
        """
        for mode, store in sorted(self._stores.items()):
            for payload, result in store.items_payload():
                yield mode, bytes(payload), result

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores.values())

    def snapshot(self) -> dict:
        """JSON-safe counters per mode (for stats responses and benches)."""
        return {mode: store.snapshot()
                for mode, store in sorted(self._stores.items())}

    def totals(self) -> dict:
        """Hit/miss/eviction/occupancy totals across all modes.

        The observability layer lifts these into gauges at snapshot time
        (pull-based) instead of double-counting in the lookup path — the
        per-mode :class:`HashStore` s already count every get/put.
        """
        totals = {"entries": 0, "hits": 0, "misses": 0, "evictions": 0}
        for store in self._stores.values():
            row = store.snapshot()
            for key in totals:
                totals[key] += row.get(key, 0)
        return totals


# ----------------------------------------------------------------------
# Disk persistence (serve --cache-snapshot)
# ----------------------------------------------------------------------

def _result_enc(result) -> dict:
    from repro.qsp.workflow import QSPResult
    from repro.utils.serialization import (
        qsp_result_to_dict,
        search_result_to_dict,
    )

    if isinstance(result, QSPResult):
        return qsp_result_to_dict(result)
    return search_result_to_dict(result)


def _result_dec(data: dict):
    from repro.utils.serialization import (
        qsp_result_from_dict,
        search_result_from_dict,
    )

    kind = data.get("kind") if isinstance(data, dict) else None
    if kind == "qsp_result":
        return qsp_result_from_dict(data)
    if kind == "search_result":
        return search_result_from_dict(data)
    raise MemoryCompatibilityError(
        f"unknown cached-result kind {kind!r} in request-cache snapshot")


def request_cache_to_dict(cache: RequestCache) -> dict:
    """Portable snapshot of a request cache (entries by payload)."""
    import base64

    entries: dict[str, list] = {}
    for mode, store in sorted(cache._stores.items()):
        entries[mode] = [
            [base64.b64encode(payload).decode("ascii"), _result_enc(value)]
            for payload, value in store.items_payload()]
    signatures: dict[str, list] = {}
    for mode, index in sorted(cache._sig_index.items()):
        signatures[mode] = [
            [signature_to_list(signature),
             [base64.b64encode(payload).decode("ascii")
              for payload in payloads]]
            for signature, payloads in index.items()]
    return {
        "kind": "request_cache",
        "version": REQUEST_CACHE_SNAPSHOT_VERSION,
        "regime": cache.regime,
        "cap": cache.cap,
        "entries": entries,
        # additive section: the signature index (near-hit nomination).
        # Loaded entries come back without move lists, so they count
        # toward occupancy but cannot be adapted until re-solved.
        "signatures": signatures,
    }


def request_cache_from_dict(data: dict,
                            regime: dict | None = None,
                            cap: int | None = None) -> RequestCache:
    """Rebuild a request cache from a snapshot, re-keyed for this process.

    ``regime`` (the loading service's portable regime dict) is checked
    against the snapshot's before any entry is poured in — a cache filled
    under another regime (different budgets' results would differ, a
    different *topology* would serve circuits that do not even fit the
    device) raises :class:`MemoryCompatibilityError` at boot.  ``cap``
    (the loading service's configured cache cap) takes precedence over
    the snapshot's recorded cap, so a warm boot never exceeds the
    operator's memory bound.
    """
    import base64
    import binascii

    if not isinstance(data, dict) or data.get("kind") != "request_cache":
        raise MemoryCompatibilityError(
            f"not a serialized request cache: "
            f"{data.get('kind') if isinstance(data, dict) else type(data)!r}")
    version = data.get("version")
    if version != REQUEST_CACHE_SNAPSHOT_VERSION:
        raise MemoryCompatibilityError(
            f"request-cache snapshot version {version!r} is not the "
            f"supported version {REQUEST_CACHE_SNAPSHOT_VERSION}; "
            f"regenerate the snapshot with this build")
    if cap is None:
        cap = int(data.get("cap", SERVICE_REQUEST_CACHE_CAP))
    snap_regime = data.get("regime")
    if not isinstance(snap_regime, dict):
        # a regime-less snapshot would silently adopt whatever regime the
        # loading service pins, defeating the cross-device/-budget gate
        raise MemoryCompatibilityError(
            "request-cache snapshot carries no regime fingerprint; "
            "refusing to serve unattributed cached results")
    cache = RequestCache(snap_regime, cap)
    if regime is not None:
        cache.pin(regime)  # raises on mismatch before any entry lands
    try:
        for mode, rows in data["entries"].items():
            store = cache._store(str(mode))
            for payload_b64, result_enc in rows:
                payload = base64.b64decode(payload_b64.encode("ascii"),
                                           validate=True)
                store.put_payload(payload, _result_dec(result_enc))
        # additive: snapshots from before the signature index simply
        # lack the section and load with an empty index
        for mode, rows in (data.get("signatures") or {}).items():
            for sig_enc, payloads_b64 in rows:
                signature = signature_from_list(sig_enc)
                for payload_b64 in payloads_b64:
                    payload = base64.b64decode(
                        payload_b64.encode("ascii"), validate=True)
                    cache._register(str(mode), payload, signature)
    except (KeyError, ValueError, TypeError, AttributeError,
            binascii.Error) as exc:
        raise MemoryCompatibilityError(
            f"corrupted request-cache snapshot: {exc!r}") from exc
    return cache

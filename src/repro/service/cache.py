"""Request cache: canonical target fingerprint → finished ``QSPResult``.

Repeated traffic is the service's whole reason to exist: the same GHZ/W/
Dicke targets arrive over and over, and after the first synthesis the
correct response is a lookup, not a search.  The cache keys requests by
the target state's *structural identity* — the quantized packed payload,
looked up through the 64-bit structural hash with payload verification
(the same exact-hit discipline as the persistent
:class:`~repro.core.memory.HashStore`, and in fact implemented on it), so
two textually different requests for the same state hit the same entry
while a genuine 64-bit hash collision can never serve the wrong circuit.

Entries additionally depend on how the service synthesizes — the search
regime and the request mode (full workflow vs exact-core portfolio) — so
the cache is *pinned* to one portable regime fingerprint at construction
(:func:`repro.utils.fingerprint.search_regime_dict` form) and keeps one
store per mode.  Mixing regimes raises
:class:`~repro.exceptions.MemoryCompatibilityError`, mirroring
``SearchMemory.attach``.
"""

from __future__ import annotations

from repro.constants import SERVICE_REQUEST_CACHE_CAP
from repro.core.kernel import StatePool
from repro.core.memory import HashStore
from repro.exceptions import MemoryCompatibilityError
from repro.states.qstate import QState

__all__ = ["RequestCache"]

#: Interned request states before the keying pool is rotated (requests
#: are tiny compared to search frontiers, so a small pool suffices).
_POOL_ROTATE_CAP = 1 << 16


class RequestCache:
    """Exact-hit result cache over target states, pinned to one regime."""

    __slots__ = ("cap", "regime", "_stores", "_pool")

    def __init__(self, regime: dict | None = None,
                 cap: int = SERVICE_REQUEST_CACHE_CAP):
        self.cap = max(1, int(cap))
        self.regime = regime
        self._stores: dict[str, HashStore] = {}
        self._pool = StatePool()

    def pin(self, regime: dict) -> None:
        """Pin (or re-check) the regime the cached results were made under."""
        if self.regime is None:
            self.regime = regime
        elif regime != self.regime:
            raise MemoryCompatibilityError(
                f"RequestCache holds results for regime {self.regime!r} "
                f"and cannot serve regime {regime!r}")

    def _key(self, state: QState):
        if len(self._pool) > _POOL_ROTATE_CAP:
            self._pool = StatePool()
        return self._pool.from_qstate(state)

    def _store(self, mode: str) -> HashStore:
        store = self._stores.get(mode)
        if store is None:
            store = self._stores[mode] = HashStore(self.cap)
        return store

    def get(self, mode: str, state: QState):
        """Cached result for ``state`` under ``mode``, or ``None``."""
        return self._store(mode).get(self._key(state))

    def put(self, mode: str, state: QState, result) -> None:
        self._store(mode).put(self._key(state), result)

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores.values())

    def snapshot(self) -> dict:
        """JSON-safe counters per mode (for stats responses and benches)."""
        return {mode: store.snapshot()
                for mode, store in sorted(self._stores.items())}

"""Disk persistence of :class:`~repro.core.memory.SearchMemory`.

Warm-start files: a family run (``repro-qsp family --snapshot-out``)
serializes its memory once, and every later service boot — or every batch
worker process — loads it and starts with the family's canonical keys,
heuristic values, and IDA* exhaustion proofs already in place.

The format is the versioned JSON codec of
:mod:`repro.utils.serialization` (``memory_to_dict``/``memory_from_dict``),
optionally gzip-compressed when the path ends in ``.gz``.  All failure
modes — unreadable JSON, wrong ``kind``, wrong format version, corrupted
entries, or a regime fingerprint that does not match the search about to
use it — raise :class:`~repro.exceptions.MemoryCompatibilityError`; a
snapshot is never half-loaded.
"""

from __future__ import annotations

import gzip
import json
import os
import pathlib

from repro.constants import WAL_COMPACT_INTERVAL
from repro.core.memory import SearchMemory
from repro.exceptions import MemoryCompatibilityError
from repro.utils.serialization import (
    memory_baseline,
    memory_from_dict,
    memory_merge_dict,
    memory_to_dict,
    wal_header_check,
    wal_header_to_dict,
    wal_record_from_dict,
    wal_record_to_dict,
)

__all__ = [
    "save_memory_snapshot",
    "load_memory_snapshot",
    "merge_memory_snapshot",
    "merge_wal_delta",
    "save_request_cache",
    "load_request_cache",
    "MemoryWAL",
]


def _opener(path: str | os.PathLike):
    return gzip.open if str(path).endswith(".gz") else open


def save_memory_snapshot(memory: SearchMemory,
                         path: str | os.PathLike) -> dict:
    """Write ``memory`` to ``path`` (atomically) and return the snapshot.

    The write goes through a temporary sibling file + rename, so a reader
    never observes a torn snapshot even if the writer dies mid-dump.

    A full save is the transposition table's *aging epoch boundary*: the
    snapshot captures every entry stamped with its current generation,
    then the live table's generation counter advances, so entries the
    next workload never touches grow stale and drain out first under the
    age-weighted eviction sweeps.
    """
    data = memory_to_dict(memory)
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    # compression is decided by the *final* name (the tmp suffix would
    # otherwise silently disable it and break the later gzip read)
    with _opener(path)(tmp, "wt", encoding="utf-8") as handle:
        json.dump(data, handle)
    tmp.replace(path)
    memory.transposition.bump_generation()
    return data


def _read_snapshot_dict(path: str | os.PathLike) -> dict:
    try:
        with _opener(path)(path, "rt", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, EOFError, ValueError, UnicodeDecodeError) as exc:
        raise MemoryCompatibilityError(
            f"unreadable SearchMemory snapshot {path}: {exc}") from exc


def load_memory_snapshot(path: str | os.PathLike) -> SearchMemory:
    """Load a snapshot into a fresh :class:`SearchMemory`.

    The restored memory is pinned to the snapshot's regime, so the first
    incompatible search attach fails loudly rather than mixing entries.
    """
    return memory_from_dict(_read_snapshot_dict(path))


def merge_memory_snapshot(memory: SearchMemory,
                          path: str | os.PathLike) -> None:
    """Merge a snapshot file's entries into an existing memory."""
    memory_merge_dict(memory, _read_snapshot_dict(path))


def merge_wal_delta(memory: SearchMemory, record: dict) -> int:
    """Merge one WAL-shaped delta record into a live memory; returns seq.

    ``record`` is the wire shape of :func:`repro.utils.serialization
    .wal_record_to_dict` — the same envelope :class:`MemoryWAL` appends
    to disk, here traveling between processes instead.  The worker-pool
    tier uses this for cross-merge: each worker periodically ships what
    it learned since its last pull (``memory_to_dict(memory, since=...)``
    wrapped in a record), and every *other* worker folds it in here.
    Merges are improve-only and idempotent (the same guarantees the WAL
    boot replay relies on), so records may be re-shipped, arrive in any
    order, or cross with a worker's own learning without ever regressing
    an entry.  Malformed records raise
    :class:`MemoryCompatibilityError`/:class:`ValueError` before
    anything is merged.
    """
    seq, delta = wal_record_from_dict(record)
    memory_merge_dict(memory, delta)
    return seq


def save_request_cache(cache, path: str | os.PathLike) -> dict:
    """Write a request-cache snapshot next to the memory snapshot.

    Same atomic tmp-file + rename discipline (and ``.gz`` compression
    rule) as :func:`save_memory_snapshot`.
    """
    from repro.service.cache import request_cache_to_dict

    data = request_cache_to_dict(cache)
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with _opener(path)(tmp, "wt", encoding="utf-8") as handle:
        json.dump(data, handle)
    tmp.replace(path)
    return data


def load_request_cache(path: str | os.PathLike, regime: dict | None = None,
                       cap: int | None = None):
    """Load a request-cache snapshot, gated by version + regime checks.

    ``cap`` overrides the snapshot's recorded cap (the loading service's
    configured bound wins).
    """
    from repro.service.cache import request_cache_from_dict

    return request_cache_from_dict(_read_snapshot_dict(path), regime, cap)


# ----------------------------------------------------------------------
# Incremental snapshot WAL (concurrent service persistence)
# ----------------------------------------------------------------------

class MemoryWAL:
    """Write-ahead log of learned memory deltas, with compaction.

    A full snapshot re-serializes the whole memory — too heavy to run
    per request on a serving host.  The WAL instead appends one small
    JSONL record per settled request (the delta since the previous
    record: new canon/heuristic entries, new *and improved* transposition
    entries, lane-stat increments) to ``<path>``, and keeps the last full
    snapshot in the sidecar file ``<path>.snapshot``.  Booting replays
    the records on top of the sidecar, which reproduces the live memory
    exactly — delta merges are improve-only and idempotent, and
    in-place transposition improvements ride along via the table's
    improvement logs (see :func:`repro.utils.serialization
    .memory_to_dict`) — so a crash loses at most the record being
    written when the process died.

    Compaction (every ``compact_interval`` appended records, at
    :meth:`close`, or on demand) writes a fresh full snapshot *first*
    and only then truncates the log back to its header: a crash between
    the two steps leaves old records that replay onto the new snapshot
    as harmless no-ops.  The replay path tolerates a torn final line
    (the mid-append crash signature) by truncating it away; any other
    malformed content is likewise dropped from the first bad line on.
    Version and regime-fingerprint gates mirror the snapshot codec's:
    a log written by an incompatible build or for a different device
    raises :class:`MemoryCompatibilityError` before a single record is
    replayed.

    The log is plain JSONL (no ``.gz`` — compression would break
    appending); the sidecar snapshot follows the normal snapshot rules.
    """

    def __init__(self, path: str | os.PathLike, memory: SearchMemory,
                 compact_interval: int = WAL_COMPACT_INTERVAL,
                 obs=None) -> None:
        if str(path).endswith(".gz"):
            raise ValueError(
                "the memory WAL is append-only JSONL and cannot be "
                "gzip-compressed; drop the .gz suffix (the sidecar "
                "snapshot may still be compressed separately)")
        self._path = pathlib.Path(path)
        self.snapshot_path = self._path.with_name(
            self._path.name + ".snapshot")
        self.memory = memory
        self.compact_interval = max(0, int(compact_interval))
        #: :class:`repro.obs.ServiceObs` or ``None`` — boot replays and
        #: torn-tail truncations become structured warning events, and
        #: appends/compactions feed the metrics registry
        self.obs = obs
        self.seq = 0
        #: records in the live log (replayed + appended since compaction)
        self.records = 0
        self.compactions = 0
        #: boot-time crash-recovery visibility (also surfaced via obs):
        #: records replayed on top of the sidecar, and torn/corrupt tail
        #: truncations by reason
        self.replayed = 0
        self.truncations: dict = {}
        self.bytes_appended = 0
        self._handle = None
        self._header_written = False
        self._baseline = memory_baseline(memory)

    @classmethod
    def boot(cls, path: str | os.PathLike,
             fallback_snapshot: str | os.PathLike | None = None,
             compact_interval: int = WAL_COMPACT_INTERVAL,
             obs=None) -> tuple[SearchMemory, "MemoryWAL"]:
        """Boot a memory from the WAL: sidecar snapshot + replayed records.

        The compacted sidecar wins when it exists; otherwise
        ``fallback_snapshot`` (the service's ``--snapshot``, seeding the
        very first boot) is loaded; otherwise the memory starts empty.
        Records in the log are then replayed on top, and the log is
        opened for appending.  Returns ``(memory, wal)``.
        """
        wal_path = pathlib.Path(path)
        sidecar = wal_path.with_name(wal_path.name + ".snapshot")
        if sidecar.exists():
            memory = load_memory_snapshot(sidecar)
        elif fallback_snapshot is not None:
            memory = load_memory_snapshot(fallback_snapshot)
        else:
            memory = SearchMemory()
        wal = cls(path, memory, compact_interval=compact_interval, obs=obs)
        wal._replay_and_open()
        if obs is not None:
            obs.wal_boot(wal.replayed, path)
        return memory, wal

    # -- boot path -------------------------------------------------------

    def _replay_and_open(self) -> None:
        if self._path.parent and not self._path.parent.exists():
            self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists() and self._path.stat().st_size > 0:
            with open(self._path, "r+", encoding="utf-8") as handle:
                self._replay(handle)
        self._handle = open(self._path, "a", encoding="utf-8")

    def _truncated(self, reason: str, dropped_bytes: int) -> None:
        """Record one boot-time tail truncation (crash signature)."""
        self.truncations[reason] = self.truncations.get(reason, 0) + 1
        if self.obs is not None:
            self.obs.wal_truncated(reason, dropped_bytes, self._path)

    def _replay(self, handle) -> None:
        header_line = handle.readline()
        if not header_line.endswith("\n"):
            # the log died inside its very first line: nothing replayable
            handle.seek(0)
            handle.truncate(0)
            if header_line:
                self._truncated("torn_header",
                                len(header_line.encode("utf-8")))
            return
        try:
            header = json.loads(header_line)
        except ValueError as exc:
            raise MemoryCompatibilityError(
                f"unreadable memory WAL header in {self._path}: "
                f"{exc}") from exc
        fp = wal_header_check(header)
        if fp is not None:
            # raises on mismatch with the sidecar/fallback fingerprint
            self.memory.pin(fp)
        self._header_written = True
        good = handle.tell()
        reason = None
        while True:
            line = handle.readline()
            if not line:
                break  # clean EOF
            if not line.endswith("\n"):
                reason = "torn_final_line"  # mid-append crash signature
                break
            stripped = line.strip()
            if not stripped:
                good = handle.tell()
                continue
            try:
                seq, delta = wal_record_from_dict(json.loads(stripped))
                memory_merge_dict(self.memory, delta)
            except (ValueError, MemoryCompatibilityError):
                reason = "corrupt_tail"  # drop it and everything after
                break
            self.seq = max(self.seq, seq)
            self.records += 1
            good = handle.tell()
        end = handle.seek(0, os.SEEK_END)
        if end > good:
            handle.truncate(good)
            self._truncated(reason or "corrupt_tail", end - good)
        self.replayed = self.records
        self._baseline = memory_baseline(self.memory)

    # -- append path -----------------------------------------------------

    def _ensure_header(self) -> None:
        if not self._header_written:
            self._handle.write(json.dumps(
                wal_header_to_dict(self.memory.fingerprint)) + "\n")
            self._header_written = True

    def append(self, delta: dict) -> int:
        """Append one delta record (and maybe auto-compact); returns seq."""
        self.seq += 1
        self._ensure_header()
        payload = json.dumps(wal_record_to_dict(self.seq, delta)) + "\n"
        self._handle.write(payload)
        self._handle.flush()
        self.records += 1
        self.bytes_appended += len(payload)
        if self.obs is not None:
            self.obs.wal_append(len(payload))
        if self.compact_interval and self.records >= self.compact_interval:
            self.compact()
        return self.seq

    def record_learned(self) -> int | None:
        """Append what the memory learned since the last record.

        The delta is computed against the WAL's own rolling baseline;
        when nothing was learned (cache hits, failed parses) no record
        is written and ``None`` is returned.  A closed WAL (post
        shutdown-compaction) is a no-op, not an error.
        """
        if self._handle is None:
            return None
        delta = memory_to_dict(self.memory, since=self._baseline)
        table = delta["transposition"]
        if not (delta["canon_store"] or delta["h_store"] or table["data"]
                or table["cond"] or delta["lane_stats"]
                or delta["pdb"]["entries"]):
            return None
        seq = self.append(delta)
        self._baseline = memory_baseline(self.memory)
        return seq

    def compact(self) -> str:
        """Fold the log into a fresh full snapshot; truncate to header."""
        if self.obs is not None:
            self.obs.wal_compacted(self.records)
        save_memory_snapshot(self.memory, self.snapshot_path)
        # snapshot lands first (atomically): a crash before the truncate
        # below leaves old records that replay as idempotent no-ops
        self._handle.close()
        tmp = self._path.with_name(self._path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                wal_header_to_dict(self.memory.fingerprint)) + "\n")
        tmp.replace(self._path)
        self._handle = open(self._path, "a", encoding="utf-8")
        self._header_written = True
        self.records = 0
        self.compactions += 1
        self._baseline = memory_baseline(self.memory)
        return str(self.snapshot_path)

    def close(self, compact: bool = True) -> None:
        """Flush and close (idempotent); compacts by default."""
        if self._handle is None:
            return
        if compact:
            self.compact()
        self._handle.close()
        self._handle = None

    def snapshot(self) -> dict:
        """WAL counters for the ``stats`` op."""
        return {"path": str(self._path), "seq": self.seq,
                "records": self.records, "compactions": self.compactions,
                "compact_interval": self.compact_interval,
                "replayed": self.replayed,
                "bytes_appended": self.bytes_appended,
                "truncations": dict(self.truncations)}

"""Disk persistence of :class:`~repro.core.memory.SearchMemory`.

Warm-start files: a family run (``repro-qsp family --snapshot-out``)
serializes its memory once, and every later service boot — or every batch
worker process — loads it and starts with the family's canonical keys,
heuristic values, and IDA* exhaustion proofs already in place.

The format is the versioned JSON codec of
:mod:`repro.utils.serialization` (``memory_to_dict``/``memory_from_dict``),
optionally gzip-compressed when the path ends in ``.gz``.  All failure
modes — unreadable JSON, wrong ``kind``, wrong format version, corrupted
entries, or a regime fingerprint that does not match the search about to
use it — raise :class:`~repro.exceptions.MemoryCompatibilityError`; a
snapshot is never half-loaded.
"""

from __future__ import annotations

import gzip
import json
import os
import pathlib

from repro.core.memory import SearchMemory
from repro.exceptions import MemoryCompatibilityError
from repro.utils.serialization import (
    memory_from_dict,
    memory_merge_dict,
    memory_to_dict,
)

__all__ = [
    "save_memory_snapshot",
    "load_memory_snapshot",
    "merge_memory_snapshot",
    "save_request_cache",
    "load_request_cache",
]


def _opener(path: str | os.PathLike):
    return gzip.open if str(path).endswith(".gz") else open


def save_memory_snapshot(memory: SearchMemory,
                         path: str | os.PathLike) -> dict:
    """Write ``memory`` to ``path`` (atomically) and return the snapshot.

    The write goes through a temporary sibling file + rename, so a reader
    never observes a torn snapshot even if the writer dies mid-dump.

    A full save is the transposition table's *aging epoch boundary*: the
    snapshot captures every entry stamped with its current generation,
    then the live table's generation counter advances, so entries the
    next workload never touches grow stale and drain out first under the
    age-weighted eviction sweeps.
    """
    data = memory_to_dict(memory)
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    # compression is decided by the *final* name (the tmp suffix would
    # otherwise silently disable it and break the later gzip read)
    with _opener(path)(tmp, "wt", encoding="utf-8") as handle:
        json.dump(data, handle)
    tmp.replace(path)
    memory.transposition.bump_generation()
    return data


def _read_snapshot_dict(path: str | os.PathLike) -> dict:
    try:
        with _opener(path)(path, "rt", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, EOFError, ValueError, UnicodeDecodeError) as exc:
        raise MemoryCompatibilityError(
            f"unreadable SearchMemory snapshot {path}: {exc}") from exc


def load_memory_snapshot(path: str | os.PathLike) -> SearchMemory:
    """Load a snapshot into a fresh :class:`SearchMemory`.

    The restored memory is pinned to the snapshot's regime, so the first
    incompatible search attach fails loudly rather than mixing entries.
    """
    return memory_from_dict(_read_snapshot_dict(path))


def merge_memory_snapshot(memory: SearchMemory,
                          path: str | os.PathLike) -> None:
    """Merge a snapshot file's entries into an existing memory."""
    memory_merge_dict(memory, _read_snapshot_dict(path))


def save_request_cache(cache, path: str | os.PathLike) -> dict:
    """Write a request-cache snapshot next to the memory snapshot.

    Same atomic tmp-file + rename discipline (and ``.gz`` compression
    rule) as :func:`save_memory_snapshot`.
    """
    from repro.service.cache import request_cache_to_dict

    data = request_cache_to_dict(cache)
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with _opener(path)(tmp, "wt", encoding="utf-8") as handle:
        json.dump(data, handle)
    tmp.replace(path)
    return data


def load_request_cache(path: str | os.PathLike, regime: dict | None = None,
                       cap: int | None = None):
    """Load a request-cache snapshot, gated by version + regime checks.

    ``cap`` overrides the snapshot's recorded cap (the loading service's
    configured bound wins).
    """
    from repro.service.cache import request_cache_from_dict

    return request_cache_from_dict(_read_snapshot_dict(path), regime, cap)

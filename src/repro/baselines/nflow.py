"""Qubit-reduction baseline — the paper's "n-flow" [13].

The n-flow prepares an arbitrary real state one qubit at a time: qubit
``d`` receives a rotation multiplexor controlled by qubits ``0..d-1`` whose
angles reproduce the conditional amplitude distribution.  Without pruning,
the CNOT count is exactly ``sum_{d=1}^{n-1} 2^d = 2**n - 2`` for every
state, which is precisely the n-flow column of Tables IV and V.

The angle tree: level ``d`` holds one nonnegative value per length-``d``
prefix, ``L[d][p] = sqrt(sum of amp^2 under p)``; leaves keep their sign.
``Ry`` angles are ``2*atan2(right, left)``, which reproduces all leaf signs
exactly (real states are Ry-preparable up to global sign — here even the
global sign is exact because internal values are nonnegative).

:func:`qubit_reduction_prefix` exposes the partial flow used by our
workflow's dense path: reduce qubits ``keep..n-1`` with *pruned*
multiplexors, hand the ``keep``-qubit core to the exact engine.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.circuit import QCircuit
from repro.circuits.decompose import multiplexed_rotation_gates
from repro.exceptions import SynthesisError
from repro.states.qstate import QState

__all__ = [
    "angle_tree_levels",
    "multiplexor_angles_for_level",
    "nflow_synthesize",
    "nflow_cnot_count",
    "qubit_reduction_prefix",
]


def angle_tree_levels(state: QState) -> list[np.ndarray]:
    """Prefix-norm levels ``L[0..n]``; ``L[n]`` is the signed amplitude
    vector, ``L[d][p] = sqrt(L[d+1][2p]^2 + L[d+1][2p+1]^2)``."""
    levels: list[np.ndarray] = [None] * (state.num_qubits + 1)  # type: ignore
    levels[state.num_qubits] = state.to_vector()
    for d in range(state.num_qubits - 1, -1, -1):
        child = levels[d + 1]
        levels[d] = np.sqrt(child[0::2] ** 2 + child[1::2] ** 2)
    return levels


def multiplexor_angles_for_level(levels: list[np.ndarray], depth: int
                                 ) -> np.ndarray:
    """Ry angles of the multiplexor preparing qubit ``depth``.

    ``alphas[p] = 2 * atan2(L[depth+1][2p+1], L[depth+1][2p])``; zero
    branches produce zero angles.
    """
    child = levels[depth + 1]
    left = child[0::2]
    right = child[1::2]
    return 2.0 * np.arctan2(right, left)


def nflow_synthesize(state: QState, prune: bool = False) -> QCircuit:
    """Prepare ``state`` with the qubit-reduction flow.

    ``prune=False`` reproduces the baseline cost ``2**n - 2`` exactly;
    ``prune=True`` drops zero rotations and parity-merges CNOTs (our
    workflow's improved variant).
    """
    n = state.num_qubits
    levels = angle_tree_levels(state)
    circuit = QCircuit(n)
    for d in range(n):
        alphas = multiplexor_angles_for_level(levels, d)
        gates = multiplexed_rotation_gates(list(range(d)), d, alphas,
                                           prune=prune)
        circuit.extend(gates)
    return circuit


def nflow_cnot_count(num_qubits: int) -> int:
    """Closed-form baseline cost: ``2**n - 2``."""
    if num_qubits < 1:
        raise SynthesisError("need at least one qubit")
    return (1 << num_qubits) - 2


def qubit_reduction_prefix(state: QState, keep: int
                           ) -> tuple[QState, QCircuit]:
    """Reduce qubits ``keep..n-1``, returning the core and suffix circuit.

    The returned ``core`` is a ``keep``-qubit state (the prefix-norm level
    ``L[keep]``, all amplitudes nonnegative); ``suffix`` holds the pruned
    multiplexors for qubits ``keep..n-1`` on the full register.  Preparing
    ``core`` on qubits ``0..keep-1`` and then running ``suffix`` prepares
    ``state`` exactly.
    """
    n = state.num_qubits
    if not 1 <= keep <= n:
        raise SynthesisError(f"keep={keep} out of range for {n} qubits")
    levels = angle_tree_levels(state)
    suffix = QCircuit(n)
    for d in range(keep, n):
        alphas = multiplexor_angles_for_level(levels, d)
        suffix.extend(multiplexed_rotation_gates(list(range(d)), d, alphas,
                                                 prune=True))
    core_vec = levels[keep]
    norm = math.sqrt(float(np.sum(core_vec ** 2)))
    core = QState.from_vector(core_vec / norm)
    return core, suffix

"""One-ancilla hybrid baseline (substitute for Mozafari et al., PRA 2022).

The cited hybrid method walks a decision diagram of the target state using
one ancilla qubit.  Its exact gate sequence is intricate; what the paper
uses it for is a baseline column with (a) one ancilla and (b) costs between
the n-flow and the m-flow on dense states and above the m-flow on sparse
ones.  We substitute a *path-accumulation* method in the same spirit —
documented in DESIGN.md/EXPERIMENTS.md:

Invariant after step ``i`` (register ``|x>|a>``, ancilla last)::

    sum_{j<=i} c_j |x_j>|0>  +  r_i |x_i>|1>,   r_i = sqrt(1 - sum c_j^2)

Step ``i+1``:

1. **Walk** — CNOTs from the ancilla move the ``a=1`` component from
   ``x_i`` to ``x_{i+1}`` (one CX per differing bit).
2. **Split** — a multi-controlled ``Ry`` on the ancilla, controlled on a
   literal cube containing ``x_{i+1}`` but excluding every already-prepared
   ``x_j`` (greedy cover), peels amplitude ``c_{i+1}`` off into ``a=0``.
   The final step rotates by ``pi``, emptying the ancilla exactly.

Every circuit it returns is verified by simulation against
``|target> (x) |0>_ancilla``.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, MCRYGate, CRYGate, XGate
from repro.exceptions import SynthesisError
from repro.states.qstate import QState
from repro.utils.bits import bit_of

__all__ = ["hybrid_synthesize", "hybrid_cnot_count", "isolating_cube"]


def isolating_cube(target_index: int, excluded: list[int], num_qubits: int
                   ) -> list[tuple[int, int]]:
    """Greedy minimal literal cube containing ``target_index`` and excluding
    every index in ``excluded``.

    Each literal fixes one qubit to the target's bit value; literals are
    chosen to knock out as many remaining excluded indices as possible.
    """
    remaining = [e for e in excluded if e != target_index]
    literals: list[tuple[int, int]] = []
    while remaining:
        best_q = -1
        best_kill: list[int] = []
        for q in range(num_qubits):
            value = bit_of(target_index, q, num_qubits)
            kill = [e for e in remaining if bit_of(e, q, num_qubits) != value]
            if len(kill) > len(best_kill):
                best_q, best_kill = q, kill
        if best_q < 0:
            raise SynthesisError(
                "excluded index equals the target index; no cube exists")
        literals.append((best_q, bit_of(target_index, best_q, num_qubits)))
        remaining = [e for e in remaining if e not in set(best_kill)]
    return literals


def hybrid_synthesize(state: QState) -> QCircuit:
    """Prepare ``state (x) |0>_ancilla`` on ``n + 1`` qubits.

    The ancilla is wire ``n`` and returns to ``|0>`` exactly.
    """
    n = state.num_qubits
    ancilla = n
    circuit = QCircuit(n + 1)
    order = sorted(state.index_set)
    amps = {i: state.amplitude(i) for i in order}

    circuit.append(XGate(target=ancilla))
    pattern = 0
    remaining_sq = 1.0
    for step, x in enumerate(order):
        # Walk the a=1 component from ``pattern`` to ``x``.
        diff = pattern ^ x
        for q in range(n):
            if (diff >> (n - 1 - q)) & 1:
                circuit.append(CXGate.make(ancilla, q))
        pattern = x
        # Split off amplitude c_x (last step transfers everything).
        c = amps[x]
        remaining = math.sqrt(max(remaining_sq, 0.0))
        if step == len(order) - 1:
            half = -math.copysign(math.pi / 2.0, c) if remaining > 0 else 0.0
        else:
            ratio = max(-1.0, min(1.0, c / remaining)) if remaining > 0 else 0.0
            half = -math.asin(ratio)
        theta = 2.0 * half
        cube = isolating_cube(x, order[:step], n)
        controls = tuple(cube)
        if not controls:
            # Only possible on the first step (nothing to exclude yet): a
            # bare Ry is safe because the ancilla carries all amplitude.
            circuit.ry(ancilla, theta)
        elif len(controls) == 1:
            (q, v), = controls
            circuit.append(CRYGate.make(q, ancilla, theta, phase=v))
        else:
            circuit.append(MCRYGate(target=ancilla, controls=controls,
                                    theta=theta))
        remaining_sq -= c * c
    return circuit


def hybrid_cnot_count(state: QState) -> int:
    """CNOT cost of the hybrid circuit under the Table-I model."""
    return hybrid_synthesize(state).cnot_cost()

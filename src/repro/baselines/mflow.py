"""Cardinality-reduction baseline — the paper's "m-flow" [15].

Reimplements the sparse state-preparation algorithm of Gleinig & Hoefler
(DAC 2021).  Working backward from the target, each step merges two basis
states until one remains (which free X/Ry gates map to ``|0...0>``):

1. ``dif_qubits`` — greedily pick literals ``(qubit, value)`` that restrict
   the index set until exactly two basis states ``b'``, ``b''`` remain.
   The literal cube then isolates the pair within the whole index set.
2. Align — pick a differing position ``p`` (never a cube qubit, since the
   pair agrees on those); for every other differing position ``r``, a CNOT
   ``CX(p -> r)`` makes the pair agree on ``r``.  These CNOTs touch only
   non-cube qubits, so the cube keeps isolating the (transformed) pair.
3. Merge — one multi-controlled ``Ry`` on ``p``, controlled on the cube
   literals, folds the pair into one index (cost ``2**k`` for ``k``
   literals, Table I).

The implementation emits :class:`~repro.core.moves.Move` objects, so circuit
reconstruction and verification reuse the exact-synthesis machinery.
"""

from __future__ import annotations

from repro.circuits.circuit import QCircuit
from repro.core.moves import CXMove, MergeMove, Move, merge_angle, moves_to_circuit
from repro.exceptions import SynthesisError
from repro.states.qstate import QState
from repro.utils.bits import bit_of

__all__ = [
    "dif_qubits",
    "mflow_reduction_moves",
    "mflow_synthesize",
    "mflow_cnot_count",
]


def dif_qubits(indices: list[int], num_qubits: int,
               minimize_literals: bool = False
               ) -> tuple[list[tuple[int, int]], list[int]]:
    """Greedy literal selection isolating two indices (GH Algorithm 1).

    Returns ``(literals, pair)`` where successively intersecting the index
    set with each ``(qubit, value)`` literal leaves exactly ``pair``.
    Prefers the smallest restriction that keeps at least two candidates, so
    literal counts stay near ``log2(m)``.

    ``minimize_literals`` adds a redundant-literal dropping pass that the
    original algorithm does not have; the faithful baseline leaves it off,
    while our improved reduction (:mod:`repro.qsp.reduction`) turns it on.
    """
    if len(indices) < 2:
        raise SynthesisError("need at least two indices to isolate a pair")
    literals: list[tuple[int, int]] = []
    bucket = list(indices)
    while len(bucket) > 2:
        best: tuple[int, int, int] | None = None  # (count, qubit, value)
        fallback: tuple[int, int, int] | None = None
        for q in range(num_qubits):
            ones = sum(bit_of(i, q, num_qubits) for i in bucket)
            zeros = len(bucket) - ones
            for value, count in ((0, zeros), (1, ones)):
                if count == len(bucket) or count == 0:
                    continue  # constant column / empty side
                if count >= 2:
                    if best is None or count < best[0]:
                        best = (count, q, value)
                else:  # count == 1: only usable through the other side
                    other = len(bucket) - 1
                    if fallback is None or other < fallback[0]:
                        fallback = (other, q, 1 - value)
        chosen = best if best is not None else fallback
        if chosen is None:
            raise SynthesisError("identical indices in the bucket")
        _, q, value = chosen
        literals.append((q, value))
        bucket = [i for i in bucket if bit_of(i, q, num_qubits) == value]
    if not minimize_literals:
        return literals, sorted(bucket)
    # Improvement over GH: drop literals that are no longer needed (each
    # dropped literal halves the merge rotation's cost).
    pair = set(bucket)
    kept: list[tuple[int, int]] = []
    for pos, lit in enumerate(literals):
        trial = kept + literals[pos + 1:]
        selected = {i for i in indices
                    if all(bit_of(i, q, num_qubits) == v for q, v in trial)}
        if selected != pair:
            kept.append(lit)
    return kept, sorted(bucket)


def _merge_step(state: QState, minimize_literals: bool = False
                ) -> tuple[list[Move], QState]:
    """One GH merge: isolate a pair, align it, fold it.  Returns the moves
    applied (backward direction) and the new state."""
    n = state.num_qubits
    indices = sorted(state.index_set)
    literals, (b1, b2) = dif_qubits(indices, n, minimize_literals)
    moves: list[Move] = []
    current = state

    diff = b1 ^ b2
    positions = [q for q in range(n) if (diff >> (n - 1 - q)) & 1]
    # Cube qubits agree on the pair, so differing positions avoid the cube.
    p = positions[0]
    for r in positions[1:]:
        move = CXMove(control=p, phase=1, target=r)
        moves.append(move)
        current = move.apply(current)
        mask = 1 << (n - 1 - r)
        if bit_of(b1, p, n) == 1:
            b1 ^= mask
        else:
            b2 ^= mask

    lo, hi = (b1, b2) if bit_of(b1, p, n) == 0 else (b2, b1)
    a0 = current.amplitude(lo)
    a1 = current.amplitude(hi)
    theta = merge_angle(a0, a1, direction=0)
    merge = MergeMove(target=p, theta=theta, controls=tuple(literals))
    moves.append(merge)
    current = merge.apply(current)
    return moves, current


def mflow_reduction_moves(state: QState,
                          stop_cardinality: int = 1,
                          minimize_literals: bool = False
                          ) -> tuple[list[Move], QState]:
    """Run merge steps until the cardinality reaches ``stop_cardinality``.

    ``stop_cardinality=1`` is the full baseline; larger values give the
    partial reduction used by the workflow's sparse path, which also turns
    on ``minimize_literals`` (our refinement over the faithful baseline).
    """
    if stop_cardinality < 1:
        raise SynthesisError("stop_cardinality must be >= 1")
    moves: list[Move] = []
    current = state
    while current.cardinality > stop_cardinality:
        step_moves, current = _merge_step(current, minimize_literals)
        moves.extend(step_moves)
    return moves, current


def mflow_synthesize(state: QState) -> QCircuit:
    """Prepare ``state`` with the full cardinality-reduction flow."""
    moves, final_state = mflow_reduction_moves(state)
    return moves_to_circuit(moves, final_state, state.num_qubits)


def mflow_cnot_count(state: QState) -> int:
    """CNOT cost of the m-flow circuit for ``state`` (without building the
    full gate-level circuit)."""
    moves, _ = mflow_reduction_moves(state)
    return sum(m.cost for m in moves)

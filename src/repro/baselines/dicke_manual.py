"""Manual (human-derived) Dicke state designs — Table IV's reference column.

Two artifacts:

* :func:`manual_cnot_count` — the best published manual CNOT count the
  paper compares against: ``5nk - 5k^2 - 2n`` (Mukherjee et al., IEEE TQE
  2020), which specializes to ``3n - 5`` for W states (``k = 1``).
* Concrete, simulation-verified circuits: :func:`w_state_circuit` achieves
  exactly ``3n - 5`` CNOTs; :func:`dicke_circuit` is the deterministic
  Bärtschi–Eidenbenz construction (FCT 2019) for general ``k``, whose cost
  is slightly above the Mukherjee count (their paper optimizes it further;
  we report the formula in the table and use this circuit for functional
  verification).
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CRYGate, CXGate, MCRYGate, RYGate, XGate
from repro.exceptions import SynthesisError

__all__ = ["manual_cnot_count", "w_state_circuit", "dicke_circuit"]


def manual_cnot_count(num_qubits: int, weight: int) -> int:
    """Best published manual CNOT count for ``|D^k_n>`` [Mukherjee et al.]:
    ``5nk - 5k^2 - 2n`` (``3n - 5`` at ``k = 1``)."""
    n, k = num_qubits, weight
    if not 1 <= k < n:
        raise SynthesisError(f"Dicke manual design needs 1 <= k < n, "
                             f"got n={n}, k={k}")
    return 5 * n * k - 5 * k * k - 2 * n


def w_state_circuit(num_qubits: int) -> QCircuit:
    """W state ``|D^1_n>`` with exactly ``3n - 5`` CNOTs (``n >= 2``).

    Cascade construction: hold the unassigned amplitude on qubit 0; each
    stage splits off ``1/sqrt(n)`` onto the next qubit with a CRy (a bare
    Ry on the first stage, where the control is deterministically ``|1>``)
    and moves the excitation with a CNOT.
    """
    n = num_qubits
    if n < 2:
        raise SynthesisError("W state needs at least 2 qubits")
    circuit = QCircuit(n)
    circuit.append(XGate(target=0))
    remaining = float(n)
    for i in range(1, n):
        # Split 1 unit of probability (out of ``remaining``) onto qubit i.
        theta = 2.0 * math.asin(math.sqrt(1.0 / remaining))
        if i == 1:
            circuit.append(RYGate(target=i, theta=theta))
        else:
            circuit.append(CRYGate.make(0, i, theta))
        circuit.append(CXGate.make(i, 0))
        remaining -= 1.0
    return circuit


def _scs_block(circuit: QCircuit, m: int, ell: int) -> None:
    """Split & cyclic shift ``SCS_{m, ell}`` on qubits ``0..m-1``.

    Gate (i): a two-qubit split between qubits ``m-2`` and ``m-1``;
    gates (ii): three-qubit splits controlled by the next one-run position.
    Follows Bärtschi–Eidenbenz, Definition 3 (qubit 0 here is their q1).
    """
    # Two-qubit split: amplitude sqrt(1/m).
    circuit.append(CXGate.make(m - 2, m - 1))
    theta = 2.0 * math.acos(math.sqrt(1.0 / m))
    circuit.append(CRYGate.make(m - 1, m - 2, theta))
    circuit.append(CXGate.make(m - 2, m - 1))
    # Three-qubit splits: amplitudes sqrt(i/m), i = 2..ell.
    for i in range(2, ell + 1):
        circuit.append(CXGate.make(m - i - 1, m - 1))
        theta = 2.0 * math.acos(math.sqrt(i / m))
        circuit.append(MCRYGate(target=m - i - 1,
                                controls=((m - 1, 1), (m - i, 1)),
                                theta=theta))
        circuit.append(CXGate.make(m - i - 1, m - 1))
    return None


def dicke_circuit(num_qubits: int, weight: int) -> QCircuit:
    """Deterministic Bärtschi–Eidenbenz Dicke preparation, verified by
    simulation in the test suite.

    Starts from ``|0...0 1^k>`` (ones on the last ``k`` wires) and applies
    the recursive split-&-cyclic-shift unitaries.
    """
    n, k = num_qubits, weight
    if not 0 <= k <= n:
        raise SynthesisError(f"invalid Dicke parameters n={n}, k={k}")
    circuit = QCircuit(n)
    for i in range(k):
        circuit.append(XGate(target=n - 1 - i))
    if k == 0 or k == n:
        return circuit
    for m in range(n, k, -1):
        _scs_block(circuit, m, min(k, m - 1))
    for m in range(k, 1, -1):
        _scs_block(circuit, m, m - 1)
    return circuit

"""Baseline synthesis methods the paper compares against."""

from repro.baselines.dicke_manual import (
    dicke_circuit,
    manual_cnot_count,
    w_state_circuit,
)
from repro.baselines.hybrid import hybrid_cnot_count, hybrid_synthesize, isolating_cube
from repro.baselines.mflow import (
    dif_qubits,
    mflow_cnot_count,
    mflow_reduction_moves,
    mflow_synthesize,
)
from repro.baselines.nflow import (
    angle_tree_levels,
    multiplexor_angles_for_level,
    nflow_cnot_count,
    nflow_synthesize,
    qubit_reduction_prefix,
)

__all__ = [
    "dicke_circuit",
    "manual_cnot_count",
    "w_state_circuit",
    "hybrid_synthesize",
    "hybrid_cnot_count",
    "isolating_cube",
    "dif_qubits",
    "mflow_synthesize",
    "mflow_cnot_count",
    "mflow_reduction_moves",
    "nflow_synthesize",
    "nflow_cnot_count",
    "angle_tree_levels",
    "multiplexor_angles_for_level",
    "qubit_reduction_prefix",
]

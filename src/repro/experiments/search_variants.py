"""Search-engine ablation: A* variants on identical instances.

Compares the paper's A* (entanglement heuristic, PU(2) canonicalization)
against the extension engines on the same instances:

* Dijkstra (zero heuristic) — how much the admissible bound prunes;
* A* with the Schmidt-cut / combined heuristic — a tighter bound;
* IDA* — same optimum, memory-light;
* beam search — the anytime fallback's optimality gap.

All optimal engines must agree on the CNOT cost (asserted); the table
reports nodes expanded and wall time per engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.astar import SearchConfig, astar_search
from repro.core.beam import BeamConfig, beam_search
from repro.core.heuristic import (
    combined_heuristic,
    entanglement_heuristic,
    zero_heuristic,
)
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.exceptions import SearchBudgetExceeded
from repro.experiments.report import ExperimentTable
from repro.states.qstate import QState

__all__ = ["VariantRow", "search_variant_rows", "search_variants_experiment"]


@dataclass
class VariantRow:
    """One engine's outcome on one instance."""

    instance: str
    engine: str
    cnot_cost: int | None
    optimal: bool
    nodes_expanded: int
    seconds: float


def _engines(budget: SearchConfig):
    yield "dijkstra", lambda s: astar_search(s, budget,
                                             heuristic=zero_heuristic)
    yield "astar(paper)", lambda s: astar_search(
        s, budget, heuristic=entanglement_heuristic)
    yield "astar(combined)", lambda s: astar_search(
        s, budget, heuristic=combined_heuristic)
    yield "idastar", lambda s: idastar_search(
        s, IDAStarConfig(search=budget))
    yield "beam", lambda s: beam_search(s, BeamConfig(width=64))


def search_variant_rows(instances: list[tuple[str, QState]],
                        budget: SearchConfig | None = None
                        ) -> list[VariantRow]:
    """Run every engine on every instance; optimal engines must agree."""
    budget = budget or SearchConfig(max_nodes=150_000, time_limit=60.0)
    rows: list[VariantRow] = []
    for label, state in instances:
        optimal_costs: set[int] = set()
        for engine_name, engine in _engines(budget):
            start = time.perf_counter()
            try:
                result = engine(state)
                cost: int | None = result.cnot_cost
                optimal = result.optimal
                expanded = result.stats.nodes_expanded
            except SearchBudgetExceeded:
                cost, optimal, expanded = None, False, budget.max_nodes
            elapsed = time.perf_counter() - start
            if optimal and cost is not None:
                optimal_costs.add(cost)
            rows.append(VariantRow(instance=label, engine=engine_name,
                                   cnot_cost=cost, optimal=optimal,
                                   nodes_expanded=expanded,
                                   seconds=elapsed))
        if len(optimal_costs) > 1:
            raise AssertionError(
                f"optimal engines disagree on {label}: {optimal_costs}")
    return rows


def search_variants_experiment(instances: list[tuple[str, QState]],
                               budget: SearchConfig | None = None
                               ) -> ExperimentTable:
    """Render the engine comparison as an experiment table."""
    table = ExperimentTable(
        experiment_id="EX3",
        title="search-engine ablation on identical instances",
        headers=["instance", "engine", "CNOTs", "optimal", "expansions",
                 "seconds"],
        paper_reference="Sec. V (algorithm design choices)",
        notes=["all engines share the move library and canonicalization",
               "beam is anytime: its cost may exceed the optimum"])
    for row in search_variant_rows(instances, budget):
        table.add_row(row.instance, row.engine,
                      "-" if row.cnot_cost is None else row.cnot_cost,
                      row.optimal, row.nodes_expanded,
                      f"{row.seconds:.3f}")
    return table

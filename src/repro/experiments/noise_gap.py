"""Fidelity-gap experiment: CNOT savings expressed as preparation fidelity.

The paper argues that fewer CNOTs mean less noise (Sec. I); the tables
report CNOT counts only.  This experiment closes the loop: for each
benchmark state it synthesizes a circuit with every method, then evaluates
the preparation fidelity under a depolarizing :class:`NoiseModel` — the
number an experimentalist actually cares about.

Baselines are evaluated through their *CNOT-count cost model* (analytic
bound) because their constructions are count-exact; our circuit is also
simulated exactly through the density-matrix channel when the register is
small enough.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.experiments.report import ExperimentTable
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.sim.noise import (
    NoiseModel,
    analytic_fidelity_bound,
    density_matrix_fidelity,
)
from repro.states.qstate import QState

__all__ = ["NoiseGapRow", "noise_gap_experiment"]

_DENSITY_LIMIT = 7


@dataclass
class NoiseGapRow:
    """Per-state fidelity comparison."""

    label: str
    num_qubits: int
    ours_cnots: int
    mflow_cnots: int
    nflow_cnots: int
    ours_bound: float
    mflow_bound: float
    nflow_bound: float
    ours_exact: float | None = None


def noise_gap_experiment(states: list[tuple[str, QState]],
                         noise: NoiseModel | None = None,
                         config: QSPConfig | None = None) -> ExperimentTable:
    """Run the fidelity-gap comparison over labeled states."""
    noise = noise or NoiseModel()
    table = ExperimentTable(
        experiment_id="EX1",
        title="noise motivation: CNOT counts as preparation fidelity",
        headers=["state", "n", "ours CX", "m-flow CX", "n-flow CX",
                 "ours F>=", "m-flow F>=", "n-flow F>=", "ours F (exact)"],
        paper_reference="Sec. I motivation",
        notes=[f"depolarizing noise p_cx={noise.p_cx}, p_1q={noise.p_1q}",
               "F>= is the analytic no-fault lower bound; exact column "
               "is the density-matrix fidelity of our circuit"])
    for row in noise_gap_rows(states, noise, config):
        table.add_row(
            row.label, row.num_qubits, row.ours_cnots, row.mflow_cnots,
            row.nflow_cnots, f"{row.ours_bound:.4f}",
            f"{row.mflow_bound:.4f}", f"{row.nflow_bound:.4f}",
            "-" if row.ours_exact is None else f"{row.ours_exact:.4f}")
    return table


def noise_gap_rows(states: list[tuple[str, QState]],
                   noise: NoiseModel,
                   config: QSPConfig | None = None) -> list[NoiseGapRow]:
    """Structured results (one row per labeled state)."""
    rows = []
    for label, state in states:
        ours = prepare_state(state, config).circuit
        mflow = mflow_synthesize(state)
        nflow = nflow_synthesize(state)
        exact = None
        if state.num_qubits <= _DENSITY_LIMIT:
            exact = density_matrix_fidelity(ours, state, noise)
        rows.append(NoiseGapRow(
            label=label,
            num_qubits=state.num_qubits,
            ours_cnots=ours.cnot_cost(),
            mflow_cnots=mflow.cnot_cost(),
            nflow_cnots=nflow.cnot_cost(),
            ours_bound=analytic_fidelity_bound(ours, noise),
            mflow_bound=analytic_fidelity_bound(mflow, noise),
            nflow_bound=analytic_fidelity_bound(nflow, noise),
            ours_exact=exact))
    return rows

"""Topology-tax experiment: routed CNOT cost across device topologies.

The paper's CNOT counts assume all-to-all coupling.  This experiment
prepares each benchmark state on restricted topologies (line, ring, grid,
heavy-hex) with the :mod:`repro.arch` pipeline and reports the routing
overhead per placement strategy — quantifying how much of the synthesis
win survives deployment.

``include_native=True`` additionally runs the topology-native pipeline
(``prepare_on_device(mode="native")``) per row: the native cost is the
restricted-move-set search result, never worse than necessary by SWAP
structure, and the differential suite asserts it never exceeds the
routed cost on this sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.flow import prepare_on_device
from repro.arch.topologies import CouplingMap
from repro.exceptions import SearchBudgetExceeded, SynthesisError
from repro.experiments.report import ExperimentTable
from repro.qsp.config import QSPConfig
from repro.states.qstate import QState

__all__ = ["TopologyTaxRow", "topology_tax_experiment", "standard_devices"]


@dataclass
class TopologyTaxRow:
    """Routed cost of one (state, topology, placement) combination.

    ``native_cnots`` is filled only when the sweep ran with
    ``include_native`` (``None`` otherwise).
    """

    label: str
    topology: str
    placement: str
    logical_cnots: int
    physical_cnots: int
    swaps: int
    verified: bool | None
    native_cnots: int | None = None
    native_verified: bool | None = None

    @property
    def overhead_percent(self) -> float:
        if self.logical_cnots == 0:
            return 0.0
        return 100.0 * (self.physical_cnots - self.logical_cnots) \
            / self.logical_cnots


def standard_devices(num_qubits: int) -> list[CouplingMap]:
    """The topology sweep used by the benchmark: full (paper model),
    line, ring, and the smallest grid that fits."""
    devices = [CouplingMap.full(num_qubits), CouplingMap.line(num_qubits)]
    if num_qubits >= 3:
        devices.append(CouplingMap.ring(num_qubits))
    rows = 2
    cols = (num_qubits + rows - 1) // rows
    if rows * cols >= num_qubits and cols >= 2:
        devices.append(CouplingMap.grid(rows, cols))
    return devices


def topology_tax_rows(states: list[tuple[str, QState]],
                      placements: tuple[str, ...] = ("trivial", "greedy"),
                      config: QSPConfig | None = None,
                      include_native: bool = False
                      ) -> list[TopologyTaxRow]:
    """Structured sweep results.

    With ``include_native``, each ``(state, device)`` pair also runs the
    topology-native pipeline once (it has no placement knob — the search
    itself chooses where CNOTs land) and its cost is attached to every
    placement row of that pair.
    """
    rows = []
    for label, state in states:
        for device in standard_devices(state.num_qubits):
            native_cnots = native_verified = None
            if include_native:
                try:
                    native = prepare_on_device(state, device, config=config,
                                               mode="native")
                except (SearchBudgetExceeded, SynthesisError):
                    # a starved native search (no m-flow completion under
                    # a topology) loses its row, not the whole sweep
                    pass
                else:
                    native_cnots = native.physical_cnots
                    native_verified = native.verified
            for placement in placements:
                result = prepare_on_device(state, device, config=config,
                                           placement=placement)
                rows.append(TopologyTaxRow(
                    label=label, topology=device.name, placement=placement,
                    logical_cnots=result.logical_cnots,
                    physical_cnots=result.physical_cnots,
                    swaps=result.routed.swap_count,
                    verified=result.verified,
                    native_cnots=native_cnots,
                    native_verified=native_verified))
    return rows


def topology_tax_experiment(states: list[tuple[str, QState]],
                            placements: tuple[str, ...] = ("trivial",
                                                           "greedy"),
                            config: QSPConfig | None = None,
                            include_native: bool = False
                            ) -> ExperimentTable:
    """Render the topology sweep as an experiment table."""
    headers = ["state", "topology", "placement", "logical CX",
               "physical CX", "SWAPs", "overhead %", "verified"]
    notes = ["overhead = (physical - logical) / logical",
             "all routed circuits are simulator-verified up to the "
             "final layout permutation"]
    if include_native:
        headers.append("native CX")
        notes.append("native CX = topology-native search on the "
                     "restricted move set (no SWAPs by construction)")
    table = ExperimentTable(
        experiment_id="EX2",
        title="topology tax: routed CNOT cost on restricted devices",
        headers=headers,
        paper_reference="Sec. I coupling-constraint motivation",
        notes=notes)
    for row in topology_tax_rows(states, placements, config,
                                 include_native=include_native):
        cells = [row.label, row.topology, row.placement,
                 row.logical_cnots, row.physical_cnots, row.swaps,
                 f"{row.overhead_percent:.0f}%",
                 "-" if row.verified is None else row.verified]
        if include_native:
            cells.append("-" if row.native_cnots is None
                         else row.native_cnots)
        table.add_row(*cells)
    return table

"""Batched family synthesis in one process with warm search memory.

The paper's tables sweep whole state families (every Dicke row, every
random sample of a size class); the seed code synthesized each member with
a cold engine.  This runner threads one
:class:`~repro.core.memory.SearchMemory` through the batch, so canonical
keys, heuristic values, interned states, and (for IDA*) sound
transposition entries carry over from row to row — the cross-search
reuse that ``benchmarks/bench_memory.py`` measures.

Warm and cold runs return identical costs on every row (memory only
deduplicates recomputation); the equivalence tests assert it and
:func:`run_family` re-asserts it per row when given a baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.core.astar import SearchConfig, astar_search
from repro.core.beam import BeamConfig, beam_search
from repro.core.heuristic import HeuristicFn
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.core.memory import SearchMemory
from repro.exceptions import SearchBudgetExceeded, SynthesisError
from repro.states.families import dicke_state
from repro.states.qstate import QState

__all__ = [
    "FamilyRunConfig",
    "FamilyRow",
    "FamilyReport",
    "dicke_family_targets",
    "run_family",
]

_ENGINES = ("astar", "idastar", "beam")


@dataclass
class FamilyRunConfig:
    """One batch = one engine + its budgets + one shared memory regime."""

    engine: str = "astar"
    search: SearchConfig = field(default_factory=SearchConfig)
    beam: BeamConfig = field(default_factory=BeamConfig)
    #: share one ``SearchMemory`` across the batch (False = cold baseline)
    warm: bool = True
    #: named device family (``line``/``ring``/``grid``/...): every row is
    #: then synthesized topology-natively on a map of its own register
    #: size.  A concrete topology only fits one size, so a topology run
    #: keeps one ``SearchMemory`` *per register size* — entries from two
    #: device sizes never share lookups anyway (state payloads embed
    #: ``n``), and the per-size memories keep the cross-device
    #: fingerprint guarantee intact.
    topology: str | None = None

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"choose from {_ENGINES}")


@dataclass
class FamilyRow:
    """One target's outcome within the batch."""

    label: str
    solved: bool
    cnot_cost: int | None
    optimal: bool
    lower_bound: int | None
    nodes_expanded: int
    seconds: float


@dataclass
class FamilyReport:
    """Batch outcome plus the memory counters that explain the speed."""

    engine: str
    warm: bool
    rows: list[FamilyRow]
    total_seconds: float
    memory: dict | None

    @property
    def solved_costs(self) -> dict[str, int]:
        return {row.label: row.cnot_cost for row in self.rows
                if row.solved and row.cnot_cost is not None}


def dicke_family_targets(max_n: int,
                         min_n: int = 3) -> list[tuple[str, QState]]:
    """The Dicke benchmark rows ``|D^k_n>`` for ``k <= n // 2``."""
    targets = []
    for n in range(min_n, max_n + 1):
        for k in range(1, n // 2 + 1):
            targets.append((f"D({n},{k})", dicke_state(n, k)))
    return targets


def run_family(targets: list[tuple[str, QState]],
               config: FamilyRunConfig | None = None,
               memory: SearchMemory | None = None,
               heuristic: HeuristicFn | None = None,
               memory_pool: dict[int, SearchMemory] | None = None
               ) -> FamilyReport:
    """Synthesize every target in one process, sharing search memory.

    A budget-exhausted row is reported with its proven lower bound and the
    batch continues — one hard row must not starve the rest of the family.
    When ``memory`` is omitted and ``config.warm`` is set, a fresh
    :class:`SearchMemory` is created for the batch; passing an existing
    memory keeps it warm across multiple batches (the re-run case the
    memory benchmark measures).

    Topology family runs use one memory per register size instead of
    ``memory`` (see :class:`FamilyRunConfig`); pass (and keep) a
    ``memory_pool`` dict to stay warm across repeated batches exactly as
    a shared ``memory`` does for unrestricted runs.
    """
    config = config or FamilyRunConfig()
    if config.topology is not None and memory is not None:
        raise ValueError(
            "a topology family run manages one SearchMemory per register "
            "size; pass memory=None (and optionally a memory_pool dict)")
    if memory is None and config.warm and config.topology is None:
        memory = SearchMemory()
    if not config.warm:
        memory = None
    #: topology runs: one memory per register size (see FamilyRunConfig)
    memory_by_size: dict[int, SearchMemory] = \
        memory_pool if memory_pool is not None else {}

    def synthesize(state: QState):
        search = config.search
        beam = config.beam
        row_memory = memory
        if config.topology is not None:
            from repro.arch.topologies import named_topology

            cmap = named_topology(config.topology, state.num_qubits)
            search = replace(search, topology=cmap)
            beam = replace(beam, topology=cmap)
            if config.warm:
                row_memory = memory_by_size.get(state.num_qubits)
                if row_memory is None:
                    row_memory = SearchMemory()
                    memory_by_size[state.num_qubits] = row_memory
        if config.engine == "astar":
            return astar_search(state, search, heuristic=heuristic,
                                memory=row_memory)
        if config.engine == "idastar":
            return idastar_search(state, IDAStarConfig(search=search),
                                  heuristic=heuristic, memory=row_memory)
        return beam_search(state, beam, heuristic=heuristic,
                           memory=row_memory)

    rows: list[FamilyRow] = []
    batch_start = time.perf_counter()
    for label, state in targets:
        start = time.perf_counter()
        try:
            result = synthesize(state)
            row = FamilyRow(label=label, solved=True,
                            cnot_cost=result.cnot_cost,
                            optimal=result.optimal, lower_bound=None,
                            nodes_expanded=result.stats.nodes_expanded,
                            seconds=time.perf_counter() - start)
        except (SearchBudgetExceeded, SynthesisError) as exc:
            # SynthesisError: a topology-native beam row can finish with
            # no feasible circuit (no m-flow tail) — report it unsolved
            # like a budget miss instead of sinking the whole batch
            stats = getattr(exc, "stats", None)
            row = FamilyRow(label=label, solved=False, cnot_cost=None,
                            optimal=False,
                            lower_bound=getattr(exc, "lower_bound", None),
                            nodes_expanded=stats.nodes_expanded
                            if stats else 0,
                            seconds=time.perf_counter() - start)
        rows.append(row)
    total = time.perf_counter() - batch_start
    if memory is not None:
        mem_snapshot = memory.snapshot()
    elif config.warm and memory_by_size:
        mem_snapshot = _merge_counter_dicts(
            [m.snapshot() for m in memory_by_size.values()])
    else:
        mem_snapshot = None
    return FamilyReport(engine=config.engine,
                        warm=mem_snapshot is not None,
                        rows=rows, total_seconds=total,
                        memory=mem_snapshot)


def _merge_counter_dicts(snapshots: list[dict]) -> dict:
    """Aggregate per-size memory snapshots into one counter dict (same
    shape as a single snapshot, so reports and the CLI print one view)."""
    merged: dict = {}
    for snap in snapshots:
        for key, value in snap.items():
            if isinstance(value, dict):
                inner = merged.setdefault(key, {})
                for k2, v2 in value.items():
                    inner[k2] = inner.get(k2, 0) + v2
            else:
                merged[key] = merged.get(key, 0) + value
    return merged

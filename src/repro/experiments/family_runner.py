"""Batched family synthesis in one process with warm search memory.

The paper's tables sweep whole state families (every Dicke row, every
random sample of a size class); the seed code synthesized each member with
a cold engine.  This runner threads one
:class:`~repro.core.memory.SearchMemory` through the batch, so canonical
keys, heuristic values, interned states, and (for IDA*) sound
transposition entries carry over from row to row — the cross-search
reuse that ``benchmarks/bench_memory.py`` measures.

Warm and cold runs return identical costs on every row (memory only
deduplicates recomputation); the equivalence tests assert it and
:func:`run_family` re-asserts it per row when given a baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.astar import SearchConfig, astar_search
from repro.core.beam import BeamConfig, beam_search
from repro.core.heuristic import HeuristicFn
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.core.memory import SearchMemory
from repro.exceptions import SearchBudgetExceeded
from repro.states.families import dicke_state
from repro.states.qstate import QState

__all__ = [
    "FamilyRunConfig",
    "FamilyRow",
    "FamilyReport",
    "dicke_family_targets",
    "run_family",
]

_ENGINES = ("astar", "idastar", "beam")


@dataclass
class FamilyRunConfig:
    """One batch = one engine + its budgets + one shared memory regime."""

    engine: str = "astar"
    search: SearchConfig = field(default_factory=SearchConfig)
    beam: BeamConfig = field(default_factory=BeamConfig)
    #: share one ``SearchMemory`` across the batch (False = cold baseline)
    warm: bool = True

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"choose from {_ENGINES}")


@dataclass
class FamilyRow:
    """One target's outcome within the batch."""

    label: str
    solved: bool
    cnot_cost: int | None
    optimal: bool
    lower_bound: int | None
    nodes_expanded: int
    seconds: float


@dataclass
class FamilyReport:
    """Batch outcome plus the memory counters that explain the speed."""

    engine: str
    warm: bool
    rows: list[FamilyRow]
    total_seconds: float
    memory: dict | None

    @property
    def solved_costs(self) -> dict[str, int]:
        return {row.label: row.cnot_cost for row in self.rows
                if row.solved and row.cnot_cost is not None}


def dicke_family_targets(max_n: int,
                         min_n: int = 3) -> list[tuple[str, QState]]:
    """The Dicke benchmark rows ``|D^k_n>`` for ``k <= n // 2``."""
    targets = []
    for n in range(min_n, max_n + 1):
        for k in range(1, n // 2 + 1):
            targets.append((f"D({n},{k})", dicke_state(n, k)))
    return targets


def run_family(targets: list[tuple[str, QState]],
               config: FamilyRunConfig | None = None,
               memory: SearchMemory | None = None,
               heuristic: HeuristicFn | None = None) -> FamilyReport:
    """Synthesize every target in one process, sharing search memory.

    A budget-exhausted row is reported with its proven lower bound and the
    batch continues — one hard row must not starve the rest of the family.
    When ``memory`` is omitted and ``config.warm`` is set, a fresh
    :class:`SearchMemory` is created for the batch; passing an existing
    memory keeps it warm across multiple batches (the re-run case the
    memory benchmark measures).
    """
    config = config or FamilyRunConfig()
    if memory is None and config.warm:
        memory = SearchMemory()
    if not config.warm:
        memory = None

    def synthesize(state: QState):
        if config.engine == "astar":
            return astar_search(state, config.search, heuristic=heuristic,
                                memory=memory)
        if config.engine == "idastar":
            return idastar_search(state, IDAStarConfig(search=config.search),
                                  heuristic=heuristic, memory=memory)
        return beam_search(state, config.beam, heuristic=heuristic,
                           memory=memory)

    rows: list[FamilyRow] = []
    batch_start = time.perf_counter()
    for label, state in targets:
        start = time.perf_counter()
        try:
            result = synthesize(state)
            row = FamilyRow(label=label, solved=True,
                            cnot_cost=result.cnot_cost,
                            optimal=result.optimal, lower_bound=None,
                            nodes_expanded=result.stats.nodes_expanded,
                            seconds=time.perf_counter() - start)
        except SearchBudgetExceeded as exc:
            expanded = exc.stats.nodes_expanded if exc.stats else 0
            row = FamilyRow(label=label, solved=False, cnot_cost=None,
                            optimal=False, lower_bound=exc.lower_bound,
                            nodes_expanded=expanded,
                            seconds=time.perf_counter() - start)
        rows.append(row)
    total = time.perf_counter() - batch_start
    return FamilyReport(engine=config.engine, warm=memory is not None,
                        rows=rows, total_seconds=total,
                        memory=memory.snapshot() if memory else None)

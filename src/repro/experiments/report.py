"""Structured experiment results and renderers.

Experiment runners return an :class:`ExperimentTable` — experiment id,
headers, rows, and free-form notes — that renders to the fixed-width text
used by the benchmark harness and to Markdown for EXPERIMENTS.md.
Keeping the result structured (instead of pre-formatted strings) lets the
CLI, the benchmarks, and the documentation pipeline share one source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import format_table

__all__ = ["ExperimentTable"]


@dataclass
class ExperimentTable:
    """One experiment's outcome as a renderable table.

    Attributes
    ----------
    experiment_id:
        Short id matching DESIGN.md's experiment index (e.g. ``"E4"``).
    title:
        Human-readable headline.
    headers / rows:
        Tabular payload; cells may be any ``str()``-able value.
    notes:
        Bullet points appended under the table (assumptions, budgets).
    paper_reference:
        Where in the paper the artifact lives (e.g. ``"Table IV"``).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_reference: str = ""

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row width {len(cells)} != header width {len(self.headers)}")
        self.rows.append(list(cells))

    def to_text(self) -> str:
        """Fixed-width rendering (benchmark results artifact format)."""
        title = f"{self.experiment_id} - {self.title}"
        if self.paper_reference:
            title += f" [{self.paper_reference}]"
        text = format_table(self.headers, self.rows, title=title)
        for note in self.notes:
            text += f"\n  note: {note}"
        return text

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering (EXPERIMENTS.md format)."""
        lines = [f"### {self.experiment_id} — {self.title}", ""]
        if self.paper_reference:
            lines.append(f"*Paper artifact: {self.paper_reference}*")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)

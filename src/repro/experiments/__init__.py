"""Programmatic experiment runners (extension).

Structured runners behind the benchmark harness for the experiments that
go beyond the paper's tables: the noise-motivation fidelity gap, the
device-topology tax, and the search-engine ablation.  Each returns an
:class:`~repro.experiments.report.ExperimentTable` renderable as text
(benchmark artifacts) or Markdown (EXPERIMENTS.md).
"""

from repro.experiments.family_runner import (
    FamilyReport,
    FamilyRow,
    FamilyRunConfig,
    dicke_family_targets,
    run_family,
)
from repro.experiments.noise_gap import (
    NoiseGapRow,
    noise_gap_experiment,
    noise_gap_rows,
)
from repro.experiments.report import ExperimentTable
from repro.experiments.search_variants import (
    VariantRow,
    search_variant_rows,
    search_variants_experiment,
)
from repro.experiments.topology_tax import (
    TopologyTaxRow,
    standard_devices,
    topology_tax_experiment,
    topology_tax_rows,
)

__all__ = [
    "ExperimentTable",
    "FamilyReport",
    "FamilyRow",
    "FamilyRunConfig",
    "dicke_family_targets",
    "run_family",
    "NoiseGapRow",
    "noise_gap_experiment",
    "noise_gap_rows",
    "TopologyTaxRow",
    "topology_tax_experiment",
    "topology_tax_rows",
    "standard_devices",
    "VariantRow",
    "search_variants_experiment",
    "search_variant_rows",
]

"""Improved cardinality reduction — the workflow's sparse-path engine.

The baseline m-flow merges exactly one basis-state pair per step.  Our
reduction keeps the same backward-move vocabulary but chooses, at every
step, the move with the best *cost per merged pair* among:

* every valid AP merge the exact engine knows about (``Ry`` merges are
  free and can fold many pairs at once; ``CRy``/``MCRy`` merges fold all
  consistent pairs inside a cube), and
* the Gleinig-Hoefler pair merge (CNOT alignment + cube rotation) as the
  guaranteed-progress fallback.

On the uniform-amplitude benchmark states, amplitude ratios are frequently
consistent across many pairs, so multi-pair merges fire often — this is
where the workflow's sparse-state advantage over the m-flow baseline comes
from (Sec. VI-C reports 32% on average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.mflow import _merge_step
from repro.core.moves import Move
from repro.core.transitions import enumerate_merges
from repro.exceptions import SynthesisError
from repro.states.qstate import QState

__all__ = ["ReductionConfig", "reduce_cardinality"]


@dataclass
class ReductionConfig:
    """Knobs of the improved reduction.

    ``max_merge_controls`` bounds the cube size considered for multi-pair
    merges (``2**k`` cost grows quickly, and the GH fallback usually beats
    large cubes).  A candidate multi-pair merge is taken only when its
    cost-per-merged-pair beats ``gh_cost_estimate`` (the typical cost of
    one GH step).
    """

    max_merge_controls: int = 2
    prefer_free_merges: bool = True


def _cardinality_drop(state: QState, move: Move) -> int:
    return state.cardinality - move.apply(state).cardinality


def _best_multi_merge(state: QState, config: ReductionConfig
                      ) -> tuple[Move, int] | None:
    """Cheapest-per-pair AP merge currently available, if any."""
    best: tuple[float, int, Move] | None = None
    for target in range(state.num_qubits):
        for move in enumerate_merges(state, target,
                                     max_controls=config.max_merge_controls):
            drop = _cardinality_drop(state, move)
            if drop < 1:
                continue
            score = move.cost / drop
            if best is None or score < best[0] or \
                    (score == best[0] and drop > best[1]):
                best = (score, drop, move)
    if best is None:
        return None
    return best[2], best[1]


def reduce_cardinality(state: QState, stop_cardinality: int = 1,
                       stop_entangled: int | None = None,
                       config: ReductionConfig | None = None
                       ) -> tuple[list[Move], QState]:
    """Apply backward moves until the state is small enough.

    Stops when ``cardinality <= stop_cardinality`` and (when given) the
    number of entangled qubits is ``<= stop_entangled``.  Returns the moves
    applied and the final state.
    """
    from repro.states.analysis import num_entangled_qubits

    if stop_cardinality < 1:
        raise SynthesisError("stop_cardinality must be >= 1")
    config = config or ReductionConfig()

    def done(current: QState) -> bool:
        if current.cardinality > stop_cardinality:
            return False
        if stop_entangled is not None and \
                num_entangled_qubits(current) > stop_entangled:
            return False
        return True

    def greedy() -> tuple[list[Move], QState]:
        moves: list[Move] = []
        current = state
        while not done(current):
            if current.cardinality == 1:
                break  # a basis state; only free gates remain
            choice = _best_multi_merge(current, config)
            if choice is not None:
                move, drop = choice
                # Peek at what one GH step would cost here; take the
                # multi-merge only when it is at least as cost-effective.
                gh_moves, _ = _merge_step(current, minimize_literals=True)
                gh_cost = sum(m.cost for m in gh_moves)
                if move.cost == 0 or \
                        move.cost * 1 <= max(gh_cost, 1) * drop:
                    moves.append(move)
                    current = move.apply(current)
                    continue
            step_moves, current = _merge_step(current,
                                              minimize_literals=True)
            moves.extend(step_moves)
        return moves, current

    def plain_gh() -> tuple[list[Move], QState]:
        moves: list[Move] = []
        current = state
        while not done(current) and current.cardinality > 1:
            step_moves, current = _merge_step(current,
                                              minimize_literals=True)
            moves.extend(step_moves)
        return moves, current

    # Greedy multi-merging is usually cheaper but can lose to the GH order
    # on adversarial instances; returning the better of the two makes the
    # improved reduction dominate the baseline by construction.
    greedy_result = greedy()
    gh_result = plain_gh()
    greedy_cost = sum(m.cost for m in greedy_result[0])
    gh_cost = sum(m.cost for m in gh_result[0])
    return greedy_result if greedy_cost <= gh_cost else gh_result
